"""A :class:`~repro.core.model_store.ModelArchive` wired for serving.

:class:`ServedModel` is the bridge between the deployable artifact (a
compressed archive) and the request path: raw layers and non-weight
state install into the model skeleton once at load time, while
compressed layers stay *compressed* — each forward pass resolves them
through the :class:`~repro.serve.cache.DecodedWeightCache` into the
fused streamed-weight forward
(:meth:`repro.nn.graph.Model.forward_streamed`), so decoded arrays
live in one bounded, shared, evictable place instead of being baked
into every model instance.

Batch forwards run **per sample**: each request's output is produced by
exactly the computation a lone request would get, so batched and serial
serving are bit-identical by construction (BLAS kernels are *not*
batch-invariant — a stacked GEMM changes the answer in the last ulp —
so sample isolation is the only way to keep the service's batching an
invisible latency optimization).  What the batch amortizes is
everything around the MACs: cache lookups and provider resolution
happen once per batch, and the executor/event-loop round trip is paid
once per batch rather than once per request.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from .. import obs
from ..core.codec import decode as wire_decode
from ..core.codecs import CompressedBlob, get_codec
from ..core.errors import CodecError, IntegrityError
from ..core.model_store import ModelArchive
from ..nn.graph import Model
from ..runtime.keys import fingerprint_bytes, result_key
from .cache import DecodedWeightCache

__all__ = ["ServedModel", "decoded_weight_key", "ON_FAULT_POLICIES"]

#: degradation policies accepted by :class:`ServedModel` — the same
#: contract as :meth:`repro.core.model_store.ModelArchive.apply`
ON_FAULT_POLICIES = ("raise", "zero", "raw")


def decoded_weight_key(payload: bytes, spec: dict | None, shape: tuple) -> str:
    """Content address of one layer's decoded weights.

    The same scheme the sweep runtime uses (:func:`repro.runtime.keys.
    result_key`): payload fingerprint + codec spec + shape.  Legacy
    archives with no codec record hash under the wire-format sentinel.
    """
    codec = (
        {"name": spec["name"], "params": spec.get("params")}
        if spec is not None
        else {"name": "__linefit-wire__", "params": None}
    )
    return result_key(
        "decoded-weights",
        payload=fingerprint_bytes(payload),
        codec=codec,
        shape=[int(s) for s in shape],
    )


class _CompressedLayer:
    """One compressed archive layer: its blob, key, and decode recipe."""

    __slots__ = ("name", "payload", "spec", "shape", "key")

    def __init__(self, name: str, payload: bytes, spec: dict | None, shape: tuple):
        self.name = name
        self.payload = payload
        self.spec = spec
        self.shape = tuple(int(s) for s in shape)
        self.key = decoded_weight_key(payload, spec, self.shape)

    def decode(self) -> np.ndarray:
        """Full decode of the layer's weight stream (cache-miss path)."""
        if self.spec is None:
            return wire_decode(self.payload).decompress().ravel()
        codec = get_codec(self.spec["name"], **self.spec.get("params", {}))
        blob = CompressedBlob.rebuild(self.spec, self.payload)
        blob.verify(context=f"layer {self.name!r}")
        return np.asarray(codec.decode(blob)).ravel()


class ServedModel:
    """An archive-backed model exposing the serving forward contract.

    The contract the service consumes is just
    ``forward_batch(list_of_samples) -> list_of_outputs`` (plus an
    optional ``input_shape`` for admission-time validation), so tests
    and exotic backends can substitute any duck-typed model.

    Parameters
    ----------
    model:
        Skeleton whose topology matches the archive (e.g. the zoo
        proxy the archive was compressed from).  Raw layers and state
        are installed into it immediately; compressed layers are left
        untouched (their stored weights are never read on the serving
        path).
    archive:
        The compressed container to serve.
    cache:
        Decoded-weight cache; a private default-budget cache is created
        when not given, but sharing one cache across served models is
        the intended deployment shape.
    input_shape:
        Per-sample input shape for request validation (``None`` skips
        validation).
    on_fault:
        Per-layer degradation policy when a compressed payload fails
        integrity verification or decoding on the serving path — the
        same contract as :meth:`ModelArchive.apply`:

        * ``"raise"`` (default) — propagate the :class:`CodecError`;
          the forward fails and the service answers ``Failed``;
        * ``"zero"`` — salvage the undamaged line-fit segments and
          zero-fill the rest (whole-layer zeros for other codecs);
        * ``"raw"`` — restore the archive's uncompressed fallback copy
          (requires ``compress_model(..., raw_fallback=True)``).

        A degraded layer is recorded in :attr:`damage` (layer ->
        report, including the structured
        :class:`~repro.resilience.degrade.DamageReport` fields when the
        zero policy salvaged a line-fit payload), counted once under
        ``serve.degraded.layers``, and surfaced in every subsequent
        ``Ok`` reply's ``degraded`` metadata — a replica holding a
        damaged archive keeps serving instead of dying.
    """

    def __init__(
        self,
        model: Model,
        archive: ModelArchive,
        cache: DecodedWeightCache | None = None,
        input_shape: tuple[int, ...] | None = None,
        on_fault: str = "raise",
    ) -> None:
        if on_fault not in ON_FAULT_POLICIES:
            raise ValueError(
                f"unknown degradation policy {on_fault!r}; use {ON_FAULT_POLICIES}"
            )
        self.model = model
        self.archive = archive
        self.cache = cache if cache is not None else DecodedWeightCache()
        self.input_shape = tuple(input_shape) if input_shape is not None else None
        self.on_fault = on_fault
        #: layer -> degradation report; empty while weights are pristine
        self.damage: dict[str, dict] = {}
        # raw layers + non-weight state install once; compressed layers
        # resolve per forward through the cache
        for name, arr in archive.raw.items():
            if name not in model:
                raise ValueError(f"archive layer {name!r} unknown to model")
            model.set_weights(name, arr)
        if archive.state:
            current = model.state_dict()
            for key, arr in archive.state.items():
                if key not in current:
                    raise ValueError(f"archive state key {key!r} unknown to model")
                current[key] = arr
            model.load_state_dict(current)
        self._compressed = []
        for name, (payload, shape) in archive.compressed.items():
            if name not in model:
                raise ValueError(f"archive layer {name!r} unknown to model")
            self._compressed.append(
                _CompressedLayer(name, payload, archive.codecs.get(name), shape)
            )

    @property
    def compressed_layers(self) -> list[str]:
        return [c.name for c in self._compressed]

    # -- degraded-mode decode ----------------------------------------------
    def _degrade(self, c: _CompressedLayer, exc: CodecError) -> tuple[np.ndarray, dict]:
        """Salvage one damaged layer under :attr:`on_fault` (not "raise")."""
        num_weights = int(np.prod(c.shape, dtype=np.int64))
        if self.on_fault == "raw":
            fb = self.archive.fallback.get(c.name)
            if fb is None:
                raise IntegrityError(
                    f"layer {c.name!r} is damaged and the archive stores no "
                    f"raw fallback copy (build with compress_model(raw_fallback=True))"
                ) from exc
            arr = np.ascontiguousarray(fb, dtype=np.float32).ravel()
            return arr, {"action": "raw-fallback", "error": str(exc)}
        # "zero": salvage undamaged line-fit frames, zero everything else
        terminal = (c.spec["name"].rsplit("|", 1)[-1] if c.spec else "linefit").strip()
        if terminal == "linefit" and (c.spec is None or c.spec["name"] == "linefit"):
            from ..resilience.degrade import decode_degraded  # late: avoid cycle

            try:
                stream, report = decode_degraded(c.payload, num_weights)
                return stream.ravel(), {
                    "action": "zero-fill (salvaged segments)",
                    "error": str(exc),
                    **asdict(report),
                }
            except CodecError:
                pass  # structurally unsalvageable: fall through to full zero
        return (
            np.zeros(num_weights, dtype=np.float32),
            {"action": "zero-fill (whole layer)", "error": str(exc)},
        )

    def _resolve(self, c: _CompressedLayer) -> np.ndarray:
        """Cache-miss decode honouring the degradation policy."""
        try:
            return c.decode()
        except CodecError as exc:
            if self.on_fault == "raise":
                raise
            arr, report = self._degrade(c, exc)
            if c.name not in self.damage:
                self.damage[c.name] = report
                obs.current().count("serve.degraded.layers")
            return arr

    def providers(self) -> dict[str, object]:
        """Resolve every compressed layer through the cache (hot path).

        Called once per *batch*: the returned providers are zero-copy
        views over cached decoded arrays, reused by every sample in the
        batch — this is where serving amortizes the decode.
        """
        return {
            c.name: self.cache.provider(c.key, lambda c=c: self._resolve(c))
            for c in self._compressed
        }

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Single-sample forward (adds/strips the batch dimension)."""
        return self.forward_batch([x])[0]

    def forward_batch(self, samples: list[np.ndarray]) -> list[np.ndarray]:
        """Per-sample forwards sharing one provider resolution.

        Outputs are bit-identical to serial single-request execution by
        construction — see the module docstring for why the samples are
        *not* stacked into one GEMM.
        """
        providers = self.providers()
        return [
            self.model.forward_streamed(np.asarray(x)[None, ...], providers)[0]
            for x in samples
        ]
