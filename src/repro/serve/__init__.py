"""Async batched inference service over compressed model archives.

The serving story completes the compression pipeline: the paper's
archives are the *deployable* artifact, and this package answers "what
does inference against one look like under concurrent load?"  The
pieces, in request order:

* :class:`~repro.serve.service.InferenceService` — asyncio front door:
  bounded admission, micro-batching, per-request deadlines, typed
  degraded replies (:mod:`~repro.serve.replies`);
* :class:`~repro.serve.model.ServedModel` — a
  :class:`~repro.core.model_store.ModelArchive` wired onto the fused
  streamed-decode forward path;
* :class:`~repro.serve.cache.DecodedWeightCache` — bounded LRU of
  decoded weight arrays, content-addressed and shared across requests;
* :mod:`~repro.serve.server` — a JSON-lines TCP transport for the demo
  (``python -m repro.serve``);
* :class:`~repro.serve.fleet.ReplicaFleet` — N supervised worker
  processes behind one typed ``submit``: health probes, crash/hang
  detection, capped-jittered-backoff restarts
  (:mod:`~repro.serve.supervisor`), and retry/hedge routing with
  per-replica circuit breakers (:mod:`~repro.serve.router`).

Guarantees worth naming: every request gets exactly one typed reply
(shed and expired requests get errors, never silence), batched outputs
are bit-identical to serial execution of the same requests, and a
replica crash, hang, or damaged archive degrades the fleet instead of
taking the endpoint down (a damaged archive serves under an
``on_fault`` policy with its damage report attached to every ``Ok``).
"""

from .cache import DecodedWeightCache
from .fleet import FleetConfig, ReplicaFleet, ReplicaSpec
from .model import ServedModel, decoded_weight_key
from .replies import DeadlineExceeded, Failed, Ok, Overloaded, Reply
from .router import CircuitBreaker, FleetRouter, ReplicaClient
from .service import InferenceService, ServeConfig
from .supervisor import ReplicaSupervisor

__all__ = [
    "DecodedWeightCache",
    "ServedModel",
    "decoded_weight_key",
    "Reply",
    "Ok",
    "Overloaded",
    "DeadlineExceeded",
    "Failed",
    "InferenceService",
    "ServeConfig",
    "ReplicaSpec",
    "FleetConfig",
    "ReplicaFleet",
    "ReplicaSupervisor",
    "FleetRouter",
    "ReplicaClient",
    "CircuitBreaker",
]
