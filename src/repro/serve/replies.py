"""Typed replies of the inference service.

Every submitted request gets exactly one reply object — there are no
silent drops and no exceptions-as-flow-control on the serving path.  A
degraded outcome (shed under load, missed deadline, failed forward) is
a *first-class typed value* the client can branch on, mirroring how the
sweep runtime surfaces salvaged/failed grid points instead of raising
mid-sweep.

``Ok`` carries the model output plus the request's measured latency and
the size of the batch it rode in; the error replies carry enough to
diagnose the degradation (queue depth at shed time, how long an expired
request waited against which deadline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Reply", "Ok", "Overloaded", "DeadlineExceeded", "Failed"]


@dataclass(frozen=True)
class Reply:
    """Base of the closed reply union; ``ok`` discriminates success."""

    status = "reply"

    @property
    def ok(self) -> bool:
        return isinstance(self, Ok)


@dataclass(frozen=True)
class Ok(Reply):
    """Successful inference within the deadline.

    ``degraded`` is ``None`` on the healthy path; a model serving
    salvaged weights (a damaged archive applied under an ``on_fault``
    policy) attaches its damage report — layer name -> what the
    degradation did — so a client can tell a pristine answer from a
    best-effort one without the reply ceasing to be ``Ok``.
    """

    output: np.ndarray
    #: submit-to-reply wall-clock seconds
    latency_s: float
    #: how many requests shared the forward pass
    batch_size: int
    #: damage report of the serving model (``None`` = pristine weights)
    degraded: dict | None = field(default=None)

    status = "ok"


@dataclass(frozen=True)
class Overloaded(Reply):
    """Shed at admission: the bounded queue was full.

    The request never entered the queue and the forward pass never ran
    for it — load shedding costs the service almost nothing, which is
    what keeps the latency of *admitted* requests bounded under
    saturation.
    """

    queue_depth: int

    status = "overloaded"


@dataclass(frozen=True)
class DeadlineExceeded(Reply):
    """The per-request deadline expired.

    Either the request expired while still queued (``executed=False`` —
    the forward pass was skipped entirely) or the batch it joined
    finished past its deadline (``executed=True`` — the result is
    discarded rather than returned as a silent slow reply).
    """

    deadline_s: float
    waited_s: float
    executed: bool = field(default=False)

    status = "deadline_exceeded"


@dataclass(frozen=True)
class Failed(Reply):
    """The forward pass raised; the error is reported, not propagated.

    One malformed request must not poison the other members of its
    batch, so per-sample failures are contained here.
    """

    error: str

    status = "failed"
