"""JSON-lines TCP front end for :class:`~repro.serve.service.InferenceService`.

The wire protocol is deliberately primitive — one JSON object per line
in each direction — because the service semantics, not the transport,
are the point:

Request::

    {"id": 7, "input": [[...]], "deadline": 0.25}

(``deadline`` in seconds from receipt, optional — omitted means the
service's configured policy applies.)

Reply (one per request, matched by ``id``)::

    {"id": 7, "status": "ok", "output": [...], "latency_s": 0.0021,
     "batch_size": 4}
    {"id": 8, "status": "overloaded", "queue_depth": 128}
    {"id": 9, "status": "deadline_exceeded", "deadline_s": 0.25,
     "waited_s": 0.31, "executed": false}
    {"id": 10, "status": "failed", "error": "..."}

Requests on one connection run *concurrently* (each line spawns a
submit task), so a single client can saturate the batcher — replies may
interleave out of request order, hence the ``id`` echo.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from .replies import DeadlineExceeded, Failed, Ok, Overloaded, Reply
from .service import InferenceService

__all__ = ["reply_to_doc", "serve_tcp", "request_many"]


def reply_to_doc(reply: Reply) -> dict:
    """Wire representation of a typed reply (without the ``id`` echo)."""
    if isinstance(reply, Ok):
        return {
            "status": reply.status,
            "output": np.asarray(reply.output).tolist(),
            "latency_s": reply.latency_s,
            "batch_size": reply.batch_size,
        }
    if isinstance(reply, Overloaded):
        return {"status": reply.status, "queue_depth": reply.queue_depth}
    if isinstance(reply, DeadlineExceeded):
        return {
            "status": reply.status,
            "deadline_s": reply.deadline_s,
            "waited_s": reply.waited_s,
            "executed": reply.executed,
        }
    if isinstance(reply, Failed):
        return {"status": reply.status, "error": reply.error}
    raise TypeError(f"unknown reply type: {type(reply).__name__}")


async def _handle_connection(
    service: InferenceService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    lock = asyncio.Lock()  # one reply line at a time per connection
    tasks: set[asyncio.Task] = set()

    async def handle_line(doc: object) -> None:
        # valid JSON need not be an object ('[1,2]', '5'): default the id
        # echo to null and let the except below produce the failed reply,
        # so pipelined clients still get their one-reply-per-line
        rid = doc.get("id") if isinstance(doc, dict) else None
        try:
            if not isinstance(doc, dict):
                raise TypeError(
                    f"request must be a JSON object, got {type(doc).__name__}"
                )
            x = np.asarray(doc["input"], dtype=np.float32)
            reply = await service.submit(x, deadline=doc.get("deadline"))
            out = reply_to_doc(reply)
        except Exception as e:  # malformed request: reply, keep serving
            out = {"status": "failed", "error": f"{type(e).__name__}: {e}"}
        out["id"] = rid
        async with lock:
            writer.write((json.dumps(out) + "\n").encode())
            await writer.drain()

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as e:
                async with lock:
                    writer.write(
                        (json.dumps({"status": "failed", "error": str(e)}) + "\n").encode()
                    )
                    await writer.drain()
                continue
            task = asyncio.ensure_future(handle_line(doc))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve_tcp(
    service: InferenceService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Start listening; returns the server (``server.sockets`` has the
    bound address — ``port=0`` picks a free one)."""
    return await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )


async def request_many(
    host: str,
    port: int,
    inputs: list[np.ndarray],
    deadline: float | None = None,
) -> list[dict]:
    """Demo client: pipeline every input over one connection.

    All requests are written before any reply is awaited (the server
    handles them concurrently); returns reply docs re-ordered to match
    ``inputs`` via the ``id`` echo.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for i, x in enumerate(inputs):
            doc = {"id": i, "input": np.asarray(x).tolist()}
            if deadline is not None:
                doc["deadline"] = deadline
            writer.write((json.dumps(doc) + "\n").encode())
        await writer.drain()
        replies: dict[int, dict] = {}
        while len(replies) < len(inputs):
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed mid-conversation")
            doc = json.loads(line)
            replies[doc["id"]] = doc
        return [replies[i] for i in range(len(inputs))]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
