"""JSON-lines TCP front end for :class:`~repro.serve.service.InferenceService`.

The wire protocol is deliberately primitive — one JSON object per line
in each direction — because the service semantics, not the transport,
are the point:

Request::

    {"id": 7, "input": [[...]], "deadline": 0.25}

(``deadline`` in seconds from receipt, optional — omitted means the
service's configured policy applies.)

Reply (one per request, matched by ``id``)::

    {"id": 7, "status": "ok", "output": [...], "latency_s": 0.0021,
     "batch_size": 4}
    {"id": 8, "status": "overloaded", "queue_depth": 128}
    {"id": 9, "status": "deadline_exceeded", "deadline_s": 0.25,
     "waited_s": 0.31, "executed": false}
    {"id": 10, "status": "failed", "error": "..."}

Requests on one connection run *concurrently* (each line spawns a
submit task), so a single client can saturate the batcher — replies may
interleave out of request order, hence the ``id`` echo.

Control plane: ``{"op": "health", "id": 0}`` answers immediately with
the service's counters and the model's damage report, without touching
the inference queue — the replica supervisor's readiness probe.

Framing limits: a request line longer than ``max_line_bytes`` (default
1 MiB) is discarded up to its newline and answered with a typed
``failed`` reply (``id: null`` — the id sits somewhere in the bytes we
refused to buffer), and the connection keeps serving.  The historical
behaviour — asyncio's default 64 KiB ``readline`` limit killing the
handler task and silently dropping the connection — is exactly the kind
of silent failure the typed-reply contract exists to prevent.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from .replies import DeadlineExceeded, Failed, Ok, Overloaded, Reply
from .service import InferenceService

__all__ = [
    "reply_to_doc",
    "doc_to_reply",
    "serve_tcp",
    "request_many",
    "DEFAULT_MAX_LINE_BYTES",
]

#: default per-line byte budget of the JSON-lines framing (both sides)
DEFAULT_MAX_LINE_BYTES = 1 << 20


def reply_to_doc(reply: Reply) -> dict:
    """Wire representation of a typed reply (without the ``id`` echo)."""
    if isinstance(reply, Ok):
        doc = {
            "status": reply.status,
            "output": np.asarray(reply.output).tolist(),
            "latency_s": reply.latency_s,
            "batch_size": reply.batch_size,
        }
        if reply.degraded:
            doc["degraded"] = reply.degraded
        return doc
    if isinstance(reply, Overloaded):
        return {"status": reply.status, "queue_depth": reply.queue_depth}
    if isinstance(reply, DeadlineExceeded):
        return {
            "status": reply.status,
            "deadline_s": reply.deadline_s,
            "waited_s": reply.waited_s,
            "executed": reply.executed,
        }
    if isinstance(reply, Failed):
        return {"status": reply.status, "error": reply.error}
    raise TypeError(f"unknown reply type: {type(reply).__name__}")


def doc_to_reply(doc: dict) -> Reply:
    """Typed reply from a wire doc — the router's inverse of
    :func:`reply_to_doc`, so fleet clients get the same closed reply
    union as in-process callers."""
    status = doc.get("status")
    if status == "ok":
        return Ok(
            output=np.asarray(doc["output"], dtype=np.float32),
            latency_s=float(doc.get("latency_s", 0.0)),
            batch_size=int(doc.get("batch_size", 1)),
            degraded=doc.get("degraded") or None,
        )
    if status == "overloaded":
        return Overloaded(queue_depth=int(doc.get("queue_depth", 0)))
    if status == "deadline_exceeded":
        return DeadlineExceeded(
            deadline_s=float(doc.get("deadline_s", 0.0)),
            waited_s=float(doc.get("waited_s", 0.0)),
            executed=bool(doc.get("executed", False)),
        )
    if status == "failed":
        return Failed(error=str(doc.get("error", "unknown failure")))
    raise ValueError(f"unknown wire reply status: {status!r}")


async def _read_frame(
    reader: asyncio.StreamReader,
) -> tuple[bytes | None, bool]:
    """One framed line, tolerant of the stream limit.

    Returns ``(line, overrun)``: ``line=None`` with ``overrun=False``
    means EOF; ``overrun=True`` means a line exceeded the reader's
    limit and was discarded up to (and including) its newline — the
    caller owes the client a typed failure.
    """
    try:
        return await reader.readuntil(b"\n"), False
    except asyncio.IncompleteReadError as e:
        # EOF: a final unterminated line still gets served
        return (e.partial if e.partial else None), False
    except asyncio.LimitOverrunError as e:
        # over-long line: drop buffered bytes (the separator is not in
        # them, or sits past the limit) until the newline goes by
        discard = max(e.consumed, 1)
        while True:
            try:
                await reader.readexactly(discard)
            except asyncio.IncompleteReadError:
                return None, True  # connection died mid-discard
            try:
                await reader.readuntil(b"\n")
                return None, True
            except asyncio.LimitOverrunError as again:
                discard = max(again.consumed, 1)
            except asyncio.IncompleteReadError:
                return None, True


async def _handle_connection(
    service: InferenceService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    max_line_bytes: int,
) -> None:
    lock = asyncio.Lock()  # one reply line at a time per connection
    tasks: set[asyncio.Task] = set()

    async def send(out: dict) -> None:
        async with lock:
            writer.write((json.dumps(out) + "\n").encode())
            await writer.drain()

    async def handle_line(doc: object) -> None:
        # valid JSON need not be an object ('[1,2]', '5'): default the id
        # echo to null and let the except below produce the failed reply,
        # so pipelined clients still get their one-reply-per-line
        rid = doc.get("id") if isinstance(doc, dict) else None
        try:
            if not isinstance(doc, dict):
                raise TypeError(
                    f"request must be a JSON object, got {type(doc).__name__}"
                )
            if doc.get("op") == "health":
                # control plane: answer from the event loop, never the
                # inference queue — a saturated service still probes ready
                out = {
                    "status": "ok",
                    "op": "health",
                    "healthy": True,
                    "counters": service.counters(),
                    "degraded": getattr(service.model, "damage", None) or {},
                }
                out["id"] = rid
                await send(out)
                return
            x = np.asarray(doc["input"], dtype=np.float32)
            reply = await service.submit(x, deadline=doc.get("deadline"))
            out = reply_to_doc(reply)
        except Exception as e:  # malformed request: reply, keep serving
            out = {"status": "failed", "error": f"{type(e).__name__}: {e}"}
        out["id"] = rid
        await send(out)

    try:
        while True:
            line, overrun = await _read_frame(reader)
            if overrun:
                await send(
                    {
                        "id": None,
                        "status": "failed",
                        "error": (
                            f"request line exceeds max_line_bytes="
                            f"{max_line_bytes}; dropped"
                        ),
                    }
                )
                continue
            if line is None:
                break
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as e:
                await send({"id": None, "status": "failed", "error": str(e)})
                continue
            task = asyncio.ensure_future(handle_line(doc))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
    except (ConnectionError, OSError):
        pass  # client went away mid-read/mid-write: nothing left to answer
    except asyncio.CancelledError:
        # event-loop teardown (replica SIGTERM with connections parked in
        # read): exit cleanly so the protocol's done-callback doesn't log
        pass
    finally:
        for t in tasks:
            t.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass


async def serve_tcp(
    service: InferenceService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
) -> asyncio.AbstractServer:
    """Start listening; returns the server (``server.sockets`` has the
    bound address — ``port=0`` picks a free one).

    ``max_line_bytes`` bounds one JSON line: longer request lines are
    discarded and answered with a typed ``failed`` reply (``id: null``)
    while the connection keeps serving.
    """
    if max_line_bytes < 1:
        raise ValueError(f"max_line_bytes must be >= 1, got {max_line_bytes}")
    return await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w, max_line_bytes),
        host,
        port,
        limit=max_line_bytes,
    )


async def request_many(
    host: str,
    port: int,
    inputs: list[np.ndarray],
    deadline: float | None = None,
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
) -> list[dict]:
    """Demo client: pipeline every input over one connection.

    All requests are written before any reply is awaited (the server
    handles them concurrently); returns reply docs re-ordered to match
    ``inputs`` via the ``id`` echo.  A connection that dies
    mid-conversation raises :class:`ConnectionError` — the caller is
    never left hanging on a reply that cannot arrive.
    """
    reader, writer = await asyncio.open_connection(
        host, port, limit=max_line_bytes
    )
    try:
        for i, x in enumerate(inputs):
            doc = {"id": i, "input": np.asarray(x).tolist()}
            if deadline is not None:
                doc["deadline"] = deadline
            writer.write((json.dumps(doc) + "\n").encode())
        await writer.drain()
        replies: dict[int, dict] = {}
        while len(replies) < len(inputs):
            try:
                line = await reader.readline()
            except (ConnectionError, OSError) as e:
                raise ConnectionError(
                    f"connection lost mid-conversation "
                    f"({len(replies)}/{len(inputs)} replies): {e}"
                ) from e
            if not line:
                raise ConnectionError(
                    f"server closed mid-conversation "
                    f"({len(replies)}/{len(inputs)} replies received)"
                )
            doc = json.loads(line)
            rid = doc.get("id")
            if isinstance(rid, int) and 0 <= rid < len(inputs):
                replies[rid] = doc
            # replies with a null/unknown id (e.g. an overrun notice)
            # can't be matched to an input; surface them as an error
            # rather than waiting forever for a reply that won't come
            else:
                raise ConnectionError(
                    f"unmatched reply on the wire (id={rid!r}): "
                    f"{doc.get('error', doc.get('status'))}"
                )
        return [replies[i] for i in range(len(inputs))]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
