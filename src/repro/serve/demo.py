"""Ready-made served models for the demo entry point and benchmarks.

Two sizes, two purposes:

* :func:`demo_model` — the paper's LeNet-5 proxy with its selected
  layer (``dense_1``) linefit-compressed at the paper's mid-grid delta:
  the realistic shape, used by ``python -m repro.serve`` and the CI
  smoke step.
* :func:`bench_model` — a tiny MLP whose forward is ~10 µs, so the
  saturation benchmark measures the *service* (queueing, batching,
  dispatch overhead) rather than BLAS.  Batching amortizes per-request
  service overhead; the smaller the forward, the more that overhead
  dominates and the sharper the batched-vs-serial contrast.

Both build untrained proxies (weights are the deterministic init):
serving fidelity here means *archive roundtrip* fidelity — batched
replies bit-identical to serial replies bit-identical to the fused
streamed forward — which is independent of whether the weights were
trained.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.model_store import compress_model, load_archive
from ..nn.layers import Dense, ReLU, Softmax
from ..nn.sequential import Sequential
from ..nn.zoo import lenet5
from .cache import DecodedWeightCache
from .model import ServedModel

__all__ = [
    "demo_model",
    "bench_model",
    "bench_archive_model",
    "save_bench_archive",
    "demo_inputs",
    "BENCH_INPUT_SHAPE",
]

#: per-sample input shape of :func:`bench_model`
BENCH_INPUT_SHAPE = (64,)


def demo_model(
    cache: DecodedWeightCache | None = None,
    delta_pct: float = 5.0,
    codec: str = "linefit",
) -> ServedModel:
    """LeNet-5 proxy served from a compressed archive.

    ``dense_1`` (the paper's selected layer for this network) is stored
    as a codec blob at ``delta_pct``; the conv layers stay raw, exactly
    the paper's single-layer compression setup.
    """
    model = lenet5.proxy()
    archive = compress_model(model, {lenet5.SELECTED_LAYER: delta_pct}, codec=codec)
    return ServedModel(
        lenet5.proxy(),  # fresh skeleton: everything comes from the archive
        archive,
        cache=cache,
        input_shape=lenet5.INPUT_SHAPE,
    )


def _bench_mlp() -> Sequential:
    """The bench MLP skeleton (64 -> 64 -> 10), deterministic init."""
    rng = np.random.default_rng(7)
    return Sequential(
        [
            ("dense_1", Dense(BENCH_INPUT_SHAPE[0], 64, rng=rng)),
            ("relu_1", ReLU()),
            ("dense_2", Dense(64, 10, rng=rng)),
            ("softmax", Softmax()),
        ],
        name="serve-bench-mlp",
    )


def bench_model(cache: DecodedWeightCache | None = None) -> ServedModel:
    """Tiny MLP (64 -> 64 -> 10) for service-overhead benchmarking."""
    archive = compress_model(_bench_mlp(), {"dense_1": 5.0}, codec="linefit")
    return ServedModel(
        _bench_mlp(), archive, cache=cache, input_shape=BENCH_INPUT_SHAPE
    )


def save_bench_archive(path: str | Path, raw_fallback: bool = True) -> Path:
    """Write the bench MLP's compressed archive to ``path``.

    The on-disk artifact the fleet's replica factories (and the chaos
    campaign's bit-flip injector) work against; ``raw_fallback`` keeps
    the uncompressed copy so the ``"raw"`` degradation policy has
    something to restore.
    """
    path = Path(path)
    archive = compress_model(
        _bench_mlp(), {"dense_1": 5.0}, codec="linefit", raw_fallback=raw_fallback
    )
    archive.to_file(path)
    return path


def bench_archive_model(
    path: str | Path,
    on_fault: str = "zero",
    cache: DecodedWeightCache | None = None,
) -> ServedModel:
    """Serve the bench MLP from an archive file on disk.

    Module-level and string-parameterized, so it pickles into fleet
    worker processes.  Each call re-reads ``path`` — a replica
    restarting after the file was damaged loads the *current* bytes and
    (under ``on_fault="zero"``/``"raw"``) serves degraded with a damage
    report instead of dying.
    """
    archive = load_archive(path)
    return ServedModel(
        _bench_mlp(),
        archive,
        cache=cache,
        input_shape=BENCH_INPUT_SHAPE,
        on_fault=on_fault,
    )


def demo_inputs(
    n: int,
    input_shape: tuple[int, ...] = lenet5.INPUT_SHAPE,
    seed: int = 0,
) -> list[np.ndarray]:
    """Deterministic request payloads (unit-normal, float32)."""
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal(input_shape).astype(np.float32) for _ in range(n)
    ]
