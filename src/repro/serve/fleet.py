"""Supervised replica fleet: the multi-process serving endpoint.

:class:`ReplicaFleet` composes the two halves of the robustness story —
a :class:`~repro.serve.supervisor.ReplicaSupervisor` keeping N worker
processes alive (probes, restarts with capped jittered backoff, per-
replica circuit breakers) and a :class:`~repro.serve.router.FleetRouter`
resolving every request to exactly one typed reply across whatever is
healthy (balance, retry-on-another-replica, optional hedging).

The model rides into each worker as a *recipe*, not an object: a
picklable module-level ``factory(**factory_kwargs) -> ServedModel``.
Each replica builds its own model in its own process — which is what
makes a damaged archive a *per-replica* event (the replica rebuilds
from disk on restart and, under an ``on_fault`` policy, serves degraded
with a damage report instead of dying).

>>> spec = ReplicaSpec(factory=bench_model)
>>> async with ReplicaFleet(spec, FleetConfig(replicas=3)) as fleet:
...     reply = await fleet.submit(x)          # typed, always
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..runtime.pool import RunPolicy
from .replies import Reply
from .router import FleetRouter
from .server import DEFAULT_MAX_LINE_BYTES
from .service import ServeConfig
from .supervisor import ReplicaSupervisor

__all__ = ["ReplicaSpec", "FleetConfig", "ReplicaFleet"]


@dataclass(frozen=True)
class ReplicaSpec:
    """What every worker process serves.

    ``factory`` must be a module-level (picklable) callable returning a
    ``forward_batch`` model — typically a
    :class:`~repro.serve.model.ServedModel`; ``factory_kwargs`` are its
    keyword arguments (e.g. an archive path and an ``on_fault`` policy).
    """

    factory: Callable[..., object]
    factory_kwargs: dict = field(default_factory=dict)
    config: ServeConfig = field(default_factory=ServeConfig)
    host: str = "127.0.0.1"
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES


@dataclass(frozen=True)
class FleetConfig:
    """Supervision and routing knobs of one :class:`ReplicaFleet`.

    Parameters
    ----------
    replicas:
        Worker process count.
    probe_interval_s / probe_timeout_s / fail_threshold:
        Readiness probing cadence, per-probe reply deadline, and the
        consecutive-failure streak that declares a live-but-unresponsive
        replica hung.  Process death is declared on the next tick
        regardless of the streak.
    start_timeout_s:
        Budget for a spawned worker to report its port.
    restart_policy:
        :class:`~repro.runtime.pool.RunPolicy` whose
        ``backoff``/``max_backoff``/``jitter`` fields schedule restart
        delays (``backoff_for`` semantics — capped exponential with
        optional seeded full jitter).
    backoff_reset_s:
        A replica continuously ready this long earns its restart
        attempt counter back (backoff starts over at the base).
    policy:
        Default per-request deadline for :meth:`ReplicaFleet.submit`
        (``policy.timeout`` seconds, the service's semantics).
    max_attempts:
        Distinct routing attempts per request (first try + retries).
    hedge_after_s:
        ``None`` disables hedging; otherwise a request unanswered this
        long fires a duplicate at a second replica and the first ``Ok``
        wins.
    breaker_threshold / breaker_reset_s:
        Circuit-breaker trip streak and open-state cooldown.
    deadline_grace_s:
        Client-side slack past the server deadline before an attempt is
        abandoned as a transport timeout.
    no_replica_timeout_s:
        How long a deadline-less request waits for any replica to
        become routable before failing typed.
    stop_grace_s:
        SIGTERM grace before SIGKILL at shutdown.
    mp_context:
        Multiprocessing start method (``None`` = fork where available).
    """

    replicas: int = 2
    probe_interval_s: float = 0.25
    probe_timeout_s: float = 1.0
    fail_threshold: int = 3
    start_timeout_s: float = 30.0
    restart_policy: RunPolicy = field(
        default_factory=lambda: RunPolicy(
            backoff=0.1, max_backoff=2.0, jitter=True, jitter_seed=0
        )
    )
    backoff_reset_s: float = 30.0
    policy: RunPolicy = field(default_factory=lambda: RunPolicy(timeout=1.0))
    max_attempts: int = 3
    hedge_after_s: float | None = None
    breaker_threshold: int = 5
    breaker_reset_s: float = 1.0
    deadline_grace_s: float = 0.25
    no_replica_timeout_s: float = 5.0
    stop_grace_s: float = 2.0
    mp_context: str | None = None

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.fail_threshold < 1:
            raise ValueError(
                f"fail_threshold must be >= 1, got {self.fail_threshold}"
            )
        if self.hedge_after_s is not None and self.hedge_after_s < 0:
            raise ValueError(
                f"hedge_after_s must be >= 0, got {self.hedge_after_s}"
            )


class ReplicaFleet:
    """N supervised replicas behind one typed ``submit``.

    Use as an async context manager (start waits for every replica to
    come ready) or drive :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(self, spec: ReplicaSpec, config: FleetConfig | None = None) -> None:
        self.spec = spec
        self.config = config if config is not None else FleetConfig()
        self.supervisor = ReplicaSupervisor(spec, self.config)
        self.router = FleetRouter(lambda: self.supervisor.handles, self.config)
        self.started_at: float | None = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self, min_ready: int | None = None) -> None:
        """Spawn the fleet; block until ``min_ready`` replicas serve
        (default: all of them)."""
        await self.supervisor.start()
        self.started_at = time.monotonic()
        ok = await self.supervisor.wait_ready(
            min_ready, timeout=self.config.start_timeout_s
        )
        if not ok:
            await self.stop()
            want = self.config.replicas if min_ready is None else min_ready
            raise RuntimeError(
                f"fleet failed to start: {self.supervisor.ready_count}/"
                f"{want} replicas ready within {self.config.start_timeout_s}s"
            )

    async def stop(self) -> None:
        await self.supervisor.stop()

    async def __aenter__(self) -> "ReplicaFleet":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> bool:
        await self.stop()
        return False

    # -- request path ------------------------------------------------------
    async def submit(self, x: np.ndarray, deadline: float | None = None) -> Reply:
        """One inference against whatever replica is healthy; typed, always."""
        return await self.router.submit(x, deadline=deadline)

    # -- introspection -----------------------------------------------------
    @property
    def ready_count(self) -> int:
        return self.supervisor.ready_count

    @property
    def replicas(self):
        return self.supervisor.handles

    def counters(self) -> dict[str, int]:
        """Router + supervisor counters, prefixed by component."""
        out = {f"router_{k}": v for k, v in self.router.counters().items()}
        out.update(
            {f"supervisor_{k}": v for k, v in self.supervisor.counters().items()}
        )
        return out
