"""Process-replica supervision: spawn, probe, restart.

One :class:`ReplicaSupervisor` owns N worker processes, each running a
:class:`~repro.serve.service.InferenceService` over its own
:class:`~repro.serve.model.ServedModel` behind the JSON-lines TCP
transport.  The supervisor's job is the availability loop the single-
process service cannot provide: one crash, one hung forward, or one
damaged archive must cost *one replica*, never the endpoint.

Per replica, a monitor task walks a small state machine::

    starting -- handshake --> ready -- probe failures / death --> down
        ^                                                          |
        +------- spawn <-- backoff (capped exponential, jittered) -+

* **liveness** — the worker process is alive (``Process.is_alive``; a
  SIGKILL'd replica is declared dead on the next tick without waiting
  for a network timeout);
* **readiness** — a fresh-connection ``{"op": "health"}`` probe answers
  within ``probe_timeout``.  A SIGSTOP'd (hung) replica still accepts
  TCP connections in the kernel's backlog, so only the reply deadline
  catches it — which is exactly why the probe is a request/response,
  not a connect test;
* **restart** — after ``fail_threshold`` consecutive probe failures (or
  immediate death) the worker is killed and respawned after a
  :meth:`~repro.runtime.pool.RunPolicy.backoff_for` delay — the sweep
  pool's capped-exponential/full-jitter schedule, so a fleet of
  supervisors recovering from one incident doesn't thunder back in
  lockstep.  A replica that stays ready for ``backoff_reset_s`` earns
  its attempt counter back.

The supervisor never speaks to replicas on the request path — that is
the router's job (:mod:`repro.serve.router`); it only mutates each
handle's ``state``/``client``/``breaker`` as health changes, which the
router reads when picking a destination.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp
import signal
import time

from .. import obs
from .router import CircuitBreaker, ReplicaClient
from .server import serve_tcp
from .service import InferenceService

__all__ = ["Replica", "ReplicaSupervisor"]

#: replica lifecycle states
STARTING, READY, DOWN, BACKOFF, STOPPED = (
    "starting",
    "ready",
    "down",
    "backoff",
    "stopped",
)


# -- worker process ------------------------------------------------------------


def _replica_main(factory, factory_kwargs, serve_config, host, max_line_bytes, conn):
    """Worker entry point (module-level: picklable under spawn)."""
    try:
        asyncio.run(
            _replica_serve(
                factory, factory_kwargs, serve_config, host, max_line_bytes, conn
            )
        )
    except KeyboardInterrupt:
        pass


async def _replica_serve(factory, factory_kwargs, serve_config, host, max_line_bytes, conn):
    """Build the served model, serve TCP, report the port, run until SIGTERM."""
    try:
        served = factory(**factory_kwargs)
    except Exception as e:  # noqa: BLE001 - reported through the pipe
        try:
            conn.send(("error", f"{type(e).__name__}: {e}"))
        except (BrokenPipeError, OSError):
            pass
        raise
    service = InferenceService(served, serve_config)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            pass
    async with service:
        server = await serve_tcp(service, host, 0, max_line_bytes=max_line_bytes)
        port = server.sockets[0].getsockname()[1]
        try:
            conn.send(("ready", port))
        except (BrokenPipeError, OSError):
            return  # supervisor is gone: no one to serve
        try:
            await stop.wait()
        finally:
            server.close()
            await server.wait_closed()


# -- supervisor ----------------------------------------------------------------


class Replica:
    """Supervisor-side handle of one worker process."""

    __slots__ = (
        "index",
        "state",
        "process",
        "conn",
        "port",
        "client",
        "breaker",
        "generation",
        "ready_since",
        "last_health",
    )

    def __init__(self, index: int, breaker: CircuitBreaker) -> None:
        self.index = index
        self.state = STOPPED
        self.process = None
        self.conn = None
        self.port = None
        self.client: ReplicaClient | None = None
        self.breaker = breaker
        self.generation = 0
        self.ready_since: float | None = None
        self.last_health: dict | None = None

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def available(self) -> bool:
        """Routable right now: ready, connected, breaker permitting."""
        return self.state == READY and self.client is not None and self.breaker.allow()


class ReplicaSupervisor:
    """Spawn and babysit the fleet's worker processes.

    ``spec`` and ``config`` are the :class:`~repro.serve.fleet.
    ReplicaSpec` / :class:`~repro.serve.fleet.FleetConfig` duck types —
    only attributes are read, so tests can substitute lightweight
    stand-ins.
    """

    def __init__(self, spec, config) -> None:
        self.spec = spec
        self.config = config
        self._ctx = self._pick_context(config.mp_context)
        self.handles = [
            Replica(
                i,
                CircuitBreaker(
                    failure_threshold=config.breaker_threshold,
                    reset_after=config.breaker_reset_s,
                ),
            )
            for i in range(config.replicas)
        ]
        self._monitors: list[asyncio.Task] = []
        self._stopping = False
        self.restarts = 0
        self.probe_failures = 0

    @staticmethod
    def _pick_context(name: str | None):
        if name:
            return mp.get_context(name)
        try:
            return mp.get_context("fork")
        except ValueError:  # platforms without fork
            return mp.get_context()

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        if self._monitors:
            raise RuntimeError("supervisor already started")
        self._stopping = False
        loop = asyncio.get_running_loop()
        for r in self.handles:
            self._spawn(r)
            self._monitors.append(
                loop.create_task(self._monitor(r), name=f"replica-monitor-{r.index}")
            )

    async def stop(self) -> None:
        """Stop monitors, then terminate every worker (TERM, then KILL)."""
        self._stopping = True
        for t in self._monitors:
            t.cancel()
        for t in self._monitors:
            try:
                await t
            except asyncio.CancelledError:
                pass
        self._monitors = []
        for r in self.handles:
            if r.client is not None:
                r.client.close()
                r.client = None
            p = r.process
            if p is not None and p.is_alive():
                p.terminate()
        deadline = time.monotonic() + self.config.stop_grace_s
        for r in self.handles:
            p = r.process
            if p is None:
                continue
            p.join(timeout=max(0.0, deadline - time.monotonic()))
            if p.is_alive():
                p.kill()
                p.join(timeout=1.0)
            self._close_conn(r)
            r.state = STOPPED
        self._set_ready_gauge()

    async def wait_ready(self, n: int | None = None, timeout: float = 30.0) -> bool:
        """Block until ``n`` replicas are ready (default: all of them)."""
        want = self.config.replicas if n is None else n
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.ready_count >= want:
                return True
            await asyncio.sleep(0.02)
        return self.ready_count >= want

    @property
    def ready_count(self) -> int:
        return sum(1 for r in self.handles if r.state == READY)

    # -- spawn/reap --------------------------------------------------------
    def _spawn(self, r: Replica) -> None:
        parent, child = self._ctx.Pipe(duplex=False)
        r.process = self._ctx.Process(
            target=_replica_main,
            args=(
                self.spec.factory,
                dict(self.spec.factory_kwargs),
                self.spec.config,
                self.spec.host,
                self.spec.max_line_bytes,
                child,
            ),
            name=f"serve-replica-{r.index}",
            daemon=True,
        )
        r.process.start()
        child.close()
        r.conn = parent
        r.port = None
        r.state = STARTING
        r.generation += 1
        r.ready_since = None
        r.breaker.reset()

    def _close_conn(self, r: Replica) -> None:
        if r.conn is not None:
            try:
                r.conn.close()
            except OSError:
                pass
            r.conn = None

    def _reap(self, r: Replica) -> None:
        """Take a bad replica out of rotation and make sure it is dead.

        SIGKILL, not SIGTERM: a hung (or SIGSTOP'd) worker won't run a
        TERM handler, and a replica only reaches here after failing its
        health contract — there is nothing graceful left to preserve.
        """
        r.state = DOWN
        self._set_ready_gauge()
        if r.client is not None:
            r.client.close()  # pending router requests fail typed, now
            r.client = None
        p = r.process
        if p is not None and p.is_alive():
            p.kill()
            p.join(timeout=2.0)
        self._close_conn(r)

    # -- probes ------------------------------------------------------------
    async def _await_handshake(self, r: Replica) -> bool:
        """Wait for the worker to report its bound port (or die trying)."""
        deadline = time.monotonic() + self.config.start_timeout_s
        while time.monotonic() < deadline:
            conn = r.conn
            if conn is None:
                return False
            try:
                if conn.poll():
                    msg = conn.recv()
                    if isinstance(msg, tuple) and msg and msg[0] == "ready":
                        r.port = int(msg[1])
                        return True
                    return False  # ("error", ...) from a failed factory
            except (EOFError, OSError):
                return False
            if r.process is None or not r.process.is_alive():
                return False
            await asyncio.sleep(0.02)
        return False

    async def _probe(self, r: Replica) -> bool:
        """One readiness probe: fresh connection, health op, bounded wait."""
        if r.process is None or not r.process.is_alive():
            return False
        try:
            return await asyncio.wait_for(
                self._health_roundtrip(r), self.config.probe_timeout_s
            )
        except (TimeoutError, asyncio.TimeoutError, OSError, ConnectionError, ValueError):
            return False

    async def _health_roundtrip(self, r: Replica) -> bool:
        reader, writer = await asyncio.open_connection(self.spec.host, r.port)
        try:
            writer.write(b'{"op": "health", "id": 0}\n')
            await writer.drain()
            line = await reader.readline()
            if not line:
                return False
            doc = json.loads(line)
            r.last_health = doc
            return bool(doc.get("healthy"))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _set_ready_gauge(self) -> None:
        obs.current().gauge("serve.fleet.ready", self.ready_count)

    # -- the per-replica state machine -------------------------------------
    async def _monitor(self, r: Replica) -> None:
        cfg = self.config
        attempt = 0
        rng = cfg.restart_policy.rng()
        while not self._stopping:
            if await self._await_handshake(r):
                r.client = ReplicaClient(
                    self.spec.host, r.port, max_line_bytes=self.spec.max_line_bytes
                )
                r.state = READY
                r.ready_since = time.monotonic()
                self._set_ready_gauge()
                fails = 0
                while not self._stopping:
                    await asyncio.sleep(cfg.probe_interval_s)
                    if self._stopping:
                        return
                    alive = r.process is not None and r.process.is_alive()
                    if alive and await self._probe(r):
                        fails = 0
                        if (
                            time.monotonic() - r.ready_since
                            > cfg.backoff_reset_s
                        ):
                            attempt = 0  # earned a clean slate
                        continue
                    self.probe_failures += 1
                    obs.current().count("serve.fleet.probe_failures")
                    fails += 1
                    # death is unambiguous; probe flakes need a streak
                    if not alive or fails >= cfg.fail_threshold:
                        break
            if self._stopping:
                return
            self._reap(r)
            delay = cfg.restart_policy.backoff_for(attempt, rng)
            attempt += 1
            r.state = BACKOFF
            if delay:
                await asyncio.sleep(delay)
            if self._stopping:
                return
            self._spawn(r)
            self.restarts += 1
            obs.current().count("serve.fleet.restarts")

    def counters(self) -> dict[str, int]:
        return {
            "restarts": self.restarts,
            "probe_failures": self.probe_failures,
            "ready": self.ready_count,
        }
