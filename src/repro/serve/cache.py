"""Bounded LRU cache of decoded weight arrays, shared across requests.

Decoding a compressed layer is the expensive step of serving a
:class:`~repro.core.model_store.ModelArchive`; re-materializing per
request would hit the memory wall the compression exists to avoid.
This cache keeps decoded arrays *hot* under a byte budget: entries are
keyed by the same content-address scheme the sweep runtime uses
(:func:`repro.runtime.keys.result_key` over payload fingerprint, codec
spec and shape — so two layers holding identical blobs share one
entry), served as zero-copy :class:`~repro.core.provider.ArrayProvider`
views into the fused decode+MAC forward path, and evicted
least-recently-used when the budget is exceeded.

Eviction is safe by construction: an evicted array stays alive for as
long as any in-flight forward still holds its provider (ordinary
refcounting); the *next* request simply re-decodes into a fresh entry.
The cache is thread-safe — the service's executor thread, the event
loop, and any sibling service sharing the cache may interleave freely.

Counters mirror the :class:`~repro.runtime.cache.ResultCache` idiom:
plain attributes for direct inspection plus ambient
:mod:`repro.obs` counts (``serve.cache.hits`` / ``misses`` /
``evictions`` and a ``serve.cache.bytes`` gauge) when a scope is
installed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

import numpy as np

from .. import obs
from ..core.provider import ArrayProvider

__all__ = ["DecodedWeightCache"]

#: default byte budget: enough for every zoo proxy, small enough that a
#: paper-scale model exercises eviction
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


class DecodedWeightCache:
    """Keyed store of decoded weight arrays with LRU byte-budget eviction.

    Parameters
    ----------
    max_bytes:
        Total decoded-array budget.  A single entry larger than the
        budget is still admitted (and evicts everything else) — the
        alternative, refusing to cache it, would re-decode the biggest
        layer on every request, the exact pathology the cache exists to
        prevent.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def provider(self, key: str, decode: Callable[[], np.ndarray]) -> ArrayProvider:
        """An :class:`ArrayProvider` over the decoded array for ``key``.

        On a hit the cached array is served directly (zero copy, entry
        touched most-recently-used).  On a miss ``decode()`` runs —
        outside the lock, so one layer's slow decode never blocks hits
        on other layers — and the result is admitted under the budget.
        Two threads missing the same key concurrently may both decode;
        the first insert wins and both serve identical values (decode
        is deterministic), so the only cost of that benign race is one
        redundant decode.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        o = obs.current()
        if cached is not None:
            o.count("serve.cache.hits")
            return ArrayProvider(cached)
        decoded = np.ascontiguousarray(np.asarray(decode())).ravel()
        with self._lock:
            self.misses += 1
            existing = self._entries.get(key)
            if existing is None:
                self._entries[key] = decoded
                self._entries.move_to_end(key)
                self.bytes += decoded.nbytes
                self._evict_over_budget()
            else:
                # lost the benign double-decode race: serve the winner
                self._entries.move_to_end(key)
                decoded = existing
            total = self.bytes
        o.count("serve.cache.misses")
        o.gauge("serve.cache.bytes", total)
        return ArrayProvider(decoded)

    def _evict_over_budget(self) -> None:
        """Drop least-recently-used entries until under budget.

        The newest entry is never evicted on its own admission — an
        over-budget singleton stays (see class docstring).  Caller
        holds the lock.
        """
        while self.bytes > self.max_bytes and len(self._entries) > 1:
            _, arr = self._entries.popitem(last=False)
            self.bytes -= arr.nbytes
            self.evictions += 1
            obs.current().count("serve.cache.evictions")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.bytes = 0

    def counters(self) -> dict[str, int]:
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "cache_bytes": self.bytes,
        }
