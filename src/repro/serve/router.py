"""Client-facing routing across replicas: balance, retry, hedge.

The router is the second half of the fleet's availability story — the
supervisor keeps replicas *existing*, the router keeps requests
*resolving* while replicas come and go:

* **load balancing** — round-robin over replicas that are ready and
  whose circuit breaker permits traffic;
* **retry** — a ``Failed`` reply (including transport errors: the
  replica died mid-request, refused the connection, or never answered)
  is retried on a *different* replica while the request's deadline
  budget lasts; ``Overloaded`` sheds retry the same way, since a
  sibling replica may have queue room;
* **hedging** — optionally, a request still unanswered after
  ``hedge_after_s`` fires a second copy at another replica and the
  first ``Ok`` wins (the loser's reply is discarded), trading duplicate
  compute for tail latency;
* **breaker** — consecutive failures open a replica's breaker
  (closed -> open), which sheds it from routing until ``reset_after``
  elapses; the first trial request in half-open state closes it again
  on success.  A breaker bounds how long a sick-but-probe-passing
  replica can eat retries.

The contract the in-process service established survives end to end:
``submit`` always resolves to exactly one typed
:class:`~repro.serve.replies.Reply` — transport chaos degrades replies,
it never silently drops them.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from .. import obs
from .replies import DeadlineExceeded, Failed, Ok, Overloaded, Reply
from .server import DEFAULT_MAX_LINE_BYTES, doc_to_reply

__all__ = ["CircuitBreaker", "ReplicaClient", "FleetRouter"]

#: breaker states
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Per-replica closed/open/half-open failure gate.

    ``failure_threshold`` consecutive failures open the breaker; after
    ``reset_after`` seconds it goes half-open and admits one trial
    request — success closes it, failure re-opens it (and restarts the
    clock).  Time is injectable for tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after <= 0:
            raise ValueError(f"reset_after must be positive, got {reset_after}")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self.state = CLOSED
        self.failures = 0
        self.opened_at: float | None = None
        self.trips = 0  # closed -> open transitions

    def reset(self) -> None:
        """Back to pristine closed (a fresh process behind the handle)."""
        self.state = CLOSED
        self.failures = 0
        self.opened_at = None

    def allow(self) -> bool:
        """May a request be routed here right now?

        In the open state this is also the half-open transition: once
        ``reset_after`` has elapsed, the first ``allow()`` flips to
        half-open and admits the trial request.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self.opened_at >= self.reset_after:
                self.state = HALF_OPEN
                return True
            return False
        return True  # HALF_OPEN: the trial request is in flight

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            self.reset()
        else:
            self.failures = 0

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            # the trial failed: straight back to open, clock restarted
            self.state = OPEN
            self.opened_at = self._clock()
            return
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.failure_threshold:
            self.state = OPEN
            self.opened_at = self._clock()
            self.trips += 1
            obs.current().count("serve.fleet.breaker_trips")


class ReplicaClient:
    """One persistent JSON-lines connection, multiplexed by request id.

    Lazily connects on first use; a background reader task resolves
    pending futures by the ``id`` echo.  When the connection dies every
    pending request fails with :class:`ConnectionError` immediately —
    the router turns that into a retry on another replica, so a killed
    worker costs milliseconds, not a hang.
    """

    def __init__(
        self, host: str, port: int, max_line_bytes: int = DEFAULT_MAX_LINE_BYTES
    ) -> None:
        self.host = host
        self.port = port
        self.max_line_bytes = max_line_bytes
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._lock = asyncio.Lock()
        self._closed = False

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def _ensure_connected(self) -> None:
        async with self._lock:
            if self._closed:
                raise ConnectionError("client is closed")
            if self._writer is not None:
                return
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=self.max_line_bytes
            )
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop(), name=f"replica-client-{self.port}"
            )

    async def _read_loop(self) -> None:
        error: Exception | None = None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a mangled line fails its request via timeout
                fut = self._pending.pop(doc.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(doc)
        except asyncio.CancelledError:
            raise
        except Exception as e:  # noqa: BLE001 - delivered to the waiters
            error = e
        finally:
            self._fail_pending(
                ConnectionError(
                    f"replica connection lost: {error}"
                    if error
                    else "replica closed the connection"
                )
            )
            self._reader = None
            self._writer = None

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(exc)

    async def request(self, doc: dict, timeout: float | None) -> dict:
        """Send one request doc, await its reply doc.

        Raises :class:`ConnectionError` on transport death and
        :class:`TimeoutError` when no reply lands in ``timeout``
        seconds; a late reply for a timed-out id is discarded by the
        read loop.
        """
        await self._ensure_connected()
        rid = self._next_id
        self._next_id += 1
        fut = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        writer = self._writer
        try:
            writer.write((json.dumps({**doc, "id": rid}) + "\n").encode())
            await writer.drain()
            return await asyncio.wait_for(fut, timeout)
        except (ConnectionError, OSError) as e:
            raise ConnectionError(f"replica write failed: {e}") from e
        finally:
            self._pending.pop(rid, None)

    def close(self) -> None:
        """Tear down; every pending request fails immediately."""
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._reader = None
        self._fail_pending(ConnectionError("replica client closed"))


def _preference(reply: Reply) -> int:
    """Rank for picking the least-degraded of several typed replies."""
    if isinstance(reply, Ok):
        return 0
    if isinstance(reply, DeadlineExceeded):
        return 1
    if isinstance(reply, Overloaded):
        return 2
    return 3  # Failed


class FleetRouter:
    """Route one request to a typed reply across whatever is healthy.

    ``replicas`` is a zero-argument callable returning the current
    handle list (the supervisor's live view) — each handle needs
    ``index``, ``available()``, ``client`` and ``breaker``; tests
    substitute fakes freely.
    """

    def __init__(self, replicas, config) -> None:
        self._replicas = replicas
        self.config = config
        self._rr = 0
        self.requests = 0
        self.ok = 0
        self.degraded = 0
        self.retries = 0
        self.hedges = 0
        self.transport_errors = 0
        self.exhausted = 0

    # -- selection ---------------------------------------------------------
    def _candidates(self, exclude: set[int]) -> list:
        ready = [r for r in self._replicas() if r.available()]
        preferred = [r for r in ready if r.index not in exclude]
        # all healthy replicas already tried: re-using one beats failing
        return preferred or ready

    def _pick(self, exclude: set[int]):
        cands = self._candidates(exclude)
        if not cands:
            return None
        self._rr += 1
        return cands[self._rr % len(cands)]

    async def _pick_waiting(self, exclude: set[int], budget_end: float | None):
        """Pick a replica, waiting out a no-replica window if needed."""
        r = self._pick(exclude)
        if r is not None:
            return r
        limit = (
            budget_end
            if budget_end is not None
            else time.perf_counter() + self.config.no_replica_timeout_s
        )
        while time.perf_counter() < limit:
            await asyncio.sleep(0.02)
            r = self._pick(exclude)
            if r is not None:
                return r
        return None

    # -- request path ------------------------------------------------------
    async def submit(self, x: np.ndarray, deadline: float | None = None) -> Reply:
        """One fleet inference; always resolves to a typed Reply."""
        o = obs.current()
        self.requests += 1
        o.count("serve.fleet.requests")
        deadline_s = (
            deadline if deadline is not None else self.config.policy.timeout
        )
        if deadline_s is not None and deadline_s != float("inf"):
            if deadline_s <= 0:
                raise ValueError(f"deadline must be positive, got {deadline_s}")
        else:
            deadline_s = None
        t0 = time.perf_counter()
        budget_end = None if deadline_s is None else t0 + deadline_s
        payload = np.asarray(x, dtype=np.float32).tolist()
        tried: set[int] = set()
        last: Reply | None = None
        for attempt in range(self.config.max_attempts):
            if budget_end is not None and time.perf_counter() >= budget_end:
                reply = DeadlineExceeded(
                    deadline_s=deadline_s,
                    waited_s=time.perf_counter() - t0,
                    executed=False,
                )
                break
            r = await self._pick_waiting(tried, budget_end)
            if r is None:
                reply = last if last is not None else Failed(
                    error="no healthy replica available"
                )
                break
            if attempt:
                self.retries += 1
                o.count("serve.fleet.retries")
            reply = await self._attempt_hedged(r, payload, deadline_s, budget_end, tried)
            if isinstance(reply, Ok):
                self.ok += 1
                o.count("serve.fleet.ok")
                if reply.degraded:
                    self.degraded += 1
                    o.count("serve.fleet.degraded")
                return reply
            if isinstance(reply, DeadlineExceeded):
                # the budget is spent (or nearly): retrying can't win
                break
            last = reply
            tried.add(r.index)
        else:
            self.exhausted += 1
            o.count("serve.fleet.exhausted")
            reply = last if last is not None else Failed(error="retry budget exhausted")
        return reply

    async def _attempt_hedged(
        self,
        replica,
        payload: list,
        deadline_s: float | None,
        budget_end: float | None,
        tried: set[int],
    ) -> Reply:
        """One attempt, optionally shadowed by a hedge on a second replica."""
        hedge_after = self.config.hedge_after_s
        first = asyncio.ensure_future(
            self._attempt(replica, payload, budget_end)
        )
        if hedge_after is None:
            return await first
        done, _ = await asyncio.wait({first}, timeout=hedge_after)
        if done:
            return first.result()
        other = self._pick(tried | {replica.index})
        if other is None or other.index == replica.index:
            return await first
        self.hedges += 1
        obs.current().count("serve.fleet.hedges")
        second = asyncio.ensure_future(self._attempt(other, payload, budget_end))
        tasks = {first, second}
        results: list[Reply] = []
        try:
            while tasks:
                done, tasks = await asyncio.wait(
                    tasks, return_when=asyncio.FIRST_COMPLETED
                )
                for t in done:
                    reply = t.result()
                    if isinstance(reply, Ok):
                        return reply
                    results.append(reply)
            return min(results, key=_preference)
        finally:
            for t in tasks:
                t.cancel()

    async def _attempt(self, replica, payload: list, budget_end: float | None) -> Reply:
        """One wire round trip to one replica, mapped to a typed reply."""
        doc: dict = {"input": payload}
        remaining = None
        if budget_end is not None:
            remaining = budget_end - time.perf_counter()
            if remaining <= 0:
                return DeadlineExceeded(
                    deadline_s=0.0, waited_s=0.0, executed=False
                )
            doc["deadline"] = remaining
        # client-side guard slightly past the server's deadline: the
        # server's own typed DeadlineExceeded should win the race
        timeout = (
            None
            if remaining is None
            else remaining + self.config.deadline_grace_s
        )
        try:
            out = await replica.client.request(doc, timeout)
            reply = doc_to_reply(out)
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError, TimeoutError, asyncio.TimeoutError) as e:
            self.transport_errors += 1
            obs.current().count("serve.fleet.transport_errors")
            replica.breaker.record_failure()
            return Failed(error=f"transport to replica {replica.index}: "
                                f"{type(e).__name__}: {e}")
        except Exception as e:  # noqa: BLE001 - malformed wire reply
            self.transport_errors += 1
            obs.current().count("serve.fleet.transport_errors")
            replica.breaker.record_failure()
            return Failed(error=f"bad reply from replica {replica.index}: "
                                f"{type(e).__name__}: {e}")
        if isinstance(reply, Failed):
            replica.breaker.record_failure()
        else:
            replica.breaker.record_success()
        return reply

    def counters(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "degraded": self.degraded,
            "retries": self.retries,
            "hedges": self.hedges,
            "transport_errors": self.transport_errors,
            "exhausted": self.exhausted,
        }
