"""Asyncio micro-batching inference service with graceful degradation.

The request path is a short pipeline::

    submit() -> bounded queue -> batcher -> forward_batch() -> reply

Admission is a non-blocking put into a bounded :class:`asyncio.Queue`;
a full queue sheds the request immediately with a typed
:class:`~repro.serve.replies.Overloaded` — the service's throughput
ceiling shows up as explicit shed replies, never as unbounded queueing
latency.  A single batcher task drains whatever is queued (up to
``max_batch``) into one forward call, so batch size adapts to load by
itself: idle service -> batch of 1 and minimal latency, saturated
service -> full batches and maximal throughput.

Deadlines reuse the :class:`~repro.runtime.pool.RunPolicy` semantics —
a wall-clock budget measured from submission.  The batcher enforces
them twice: a request whose deadline passed while queued is dropped
*before* the forward pass (``executed=False``), and a request whose
batch finished past its deadline gets its result discarded
(``executed=True``) instead of a silent slow reply.  Either way the
client receives a typed :class:`~repro.serve.replies.DeadlineExceeded`.

Forward passes run on a single-worker thread executor: compute stays
off the event loop (the loop keeps admitting and shedding while a batch
runs) while batches stay strictly ordered.  With the default
:data:`repro.obs.NULL` scope the instrumentation is free; install a
scope (``obs.use``) to record QPS, latency/batch-size histograms, cache
hit rates and shed counts.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..runtime.pool import RunPolicy
from .replies import DeadlineExceeded, Failed, Ok, Overloaded, Reply

__all__ = ["ServeConfig", "InferenceService"]

#: finer-than-default buckets: serving latencies live in the 0.1ms-1s
#: decade, the registry's default buckets in the 5ms-10s one
LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of one :class:`InferenceService`.

    Parameters
    ----------
    max_batch:
        Largest batch one forward call may carry.
    max_queue:
        Admission bound; requests arriving with this many already
        queued are shed with :class:`~repro.serve.replies.Overloaded`.
    batch_window:
        Seconds the batcher lingers after the first request of a batch
        to let stragglers join.  ``0`` (the default) batches only what
        is already queued — lowest latency, and under sustained load
        batches fill anyway because requests queue up while the
        previous batch computes.
    policy:
        Default per-request deadline (``policy.timeout`` seconds from
        submission, same semantics as the sweep pool); a per-request
        ``deadline=`` overrides it, ``None`` means no deadline.
    """

    max_batch: int = 32
    max_queue: int = 128
    batch_window: float = 0.0
    policy: RunPolicy = field(default_factory=lambda: RunPolicy(timeout=1.0))

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.batch_window < 0:
            raise ValueError(
                f"batch_window must be >= 0, got {self.batch_window}"
            )


class _Pending:
    """One admitted request riding the queue toward a batch."""

    __slots__ = ("x", "future", "submitted_at", "deadline_at", "deadline_s")

    def __init__(
        self,
        x: np.ndarray,
        future: asyncio.Future,
        submitted_at: float,
        deadline_s: float | None,
    ) -> None:
        self.x = x
        self.future = future
        self.submitted_at = submitted_at
        self.deadline_s = deadline_s
        self.deadline_at = (
            None if deadline_s is None else submitted_at + deadline_s
        )

    def expired(self, now: float) -> bool:
        return self.deadline_at is not None and now > self.deadline_at


class InferenceService:
    """Batched async inference over any ``forward_batch`` model.

    The model needs only ``forward_batch(list_of_samples) ->
    list_of_outputs`` (e.g. :class:`~repro.serve.model.ServedModel`);
    an optional ``input_shape`` attribute enables admission-time shape
    validation.  One service owns one batcher task and one executor
    thread; use as an async context manager or call :meth:`start` /
    :meth:`stop` explicitly.
    """

    def __init__(self, model, config: ServeConfig | None = None) -> None:
        self.model = model
        self.config = config if config is not None else ServeConfig()
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue(
            maxsize=self.config.max_queue
        )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-forward"
        )
        self._batcher: asyncio.Task | None = None
        self._stopping = False
        # plain counters (obs-independent), the ResultCache idiom
        self.requests = 0
        self.ok = 0
        self.shed = 0
        self.deadline_expired = 0  # dropped before the forward pass
        self.deadline_exceeded = 0  # executed, result discarded
        self.failed = 0
        self.batches = 0
        self.degraded = 0  # Ok replies served from damaged weights

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._batcher is not None:
            raise RuntimeError("service already started")
        self._stopping = False
        self._batcher = asyncio.get_running_loop().create_task(
            self._batch_loop(), name="serve-batcher"
        )

    async def stop(self) -> None:
        """Drain gracefully: in-flight and queued requests complete."""
        if self._batcher is None:
            return
        self._stopping = True
        batcher, self._batcher = self._batcher, None
        batcher.cancel()
        try:
            await batcher
        except asyncio.CancelledError:
            pass
        # the cancelled batcher may have left requests queued: settle them
        while not self._queue.empty():
            await self._run_batch(self._drain())
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "InferenceService":
        self.start()
        return self

    async def __aexit__(self, *exc) -> bool:
        await self.stop()
        return False

    # -- request path ------------------------------------------------------
    async def submit(
        self, x: np.ndarray, deadline: float | None = None
    ) -> Reply:
        """One inference request; always resolves to a typed Reply.

        ``deadline`` (seconds from now) overrides the configured
        ``policy.timeout``; pass ``float('inf')`` for no deadline on a
        service whose policy has one.  Submitting while the service is
        not running (before :meth:`start`, during or after
        :meth:`stop`) fails fast with :class:`Failed`.
        """
        o = obs.current()
        self.requests += 1
        o.count("serve.requests")
        if self._batcher is None or self._stopping:
            # no batcher to ever drain the queue: enqueueing would hang
            # the caller forever, so fail fast instead
            self.failed += 1
            o.count("serve.failed")
            return Failed(error="service is not running")
        x = np.asarray(x, dtype=np.float32)
        expect = getattr(self.model, "input_shape", None)
        if expect is not None and tuple(x.shape) != tuple(expect):
            self.failed += 1
            o.count("serve.failed")
            return Failed(
                error=f"bad input shape {tuple(x.shape)}, expected {tuple(expect)}"
            )
        deadline_s = (
            deadline if deadline is not None else self.config.policy.timeout
        )
        if deadline_s is not None and deadline_s != float("inf"):
            if deadline_s <= 0:
                raise ValueError(f"deadline must be positive, got {deadline_s}")
        else:
            deadline_s = None
        pending = _Pending(
            x,
            asyncio.get_running_loop().create_future(),
            time.perf_counter(),
            deadline_s,
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.shed += 1
            o.count("serve.shed")
            return Overloaded(queue_depth=self._queue.qsize())
        return await pending.future

    # -- batcher -----------------------------------------------------------
    def _drain(self, limit: int | None = None) -> list[_Pending]:
        """Everything queued right now, up to ``limit`` (default max_batch)."""
        limit = self.config.max_batch if limit is None else limit
        batch: list[_Pending] = []
        while len(batch) < limit:
            try:
                batch.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        return batch

    async def _batch_loop(self) -> None:
        cfg = self.config
        while True:
            first = await self._queue.get()
            try:
                if cfg.batch_window > 0:
                    await asyncio.sleep(cfg.batch_window)
            except asyncio.CancelledError:
                # stop() cancelled us with `first` already popped off the
                # queue — stop()'s drain loop can't see it, so settle it
                # (and anything queued behind it) here or the client
                # awaiting submit() hangs forever.
                await self._run_batch([first, *self._drain(cfg.max_batch - 1)])
                raise
            batch = [first, *self._drain(cfg.max_batch - 1)]
            await self._run_batch(batch)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        o = obs.current()
        now = time.perf_counter()
        live: list[_Pending] = []
        for p in batch:
            if p.future.cancelled():
                continue
            if p.expired(now):
                # expired while queued: the forward pass never runs for it
                self.deadline_expired += 1
                o.count("serve.deadline.expired")
                p.future.set_result(
                    DeadlineExceeded(
                        deadline_s=p.deadline_s,
                        waited_s=now - p.submitted_at,
                        executed=False,
                    )
                )
            else:
                live.append(p)
        if not live:
            return
        self.batches += 1
        o.count("serve.batches")
        o.observe("serve.batch_size", len(live))
        loop = asyncio.get_running_loop()
        xs = [p.x for p in live]
        cancelled = False
        try:
            with o.span("serve.batch", cat="serve", size=len(live)):
                # copy_context: the forward thread sees the ambient obs
                # scope (run_in_executor does not propagate contextvars),
                # so decoded-weight cache hits/misses land in the same
                # registry as the service counters
                ctx = contextvars.copy_context()
                fut = loop.run_in_executor(
                    self._executor, ctx.run, self.model.forward_batch, xs
                )
                try:
                    outputs = await asyncio.shield(fut)
                except asyncio.CancelledError:
                    # stop() cancelled the batcher mid-forward; the
                    # executor thread keeps computing — wait it out so
                    # in-flight requests settle with their real results,
                    # then propagate the cancellation after the loop below.
                    cancelled = True
                    outputs = await fut
            if len(outputs) != len(live):
                # buggy duck-typed model: fail the whole batch rather
                # than zip-truncate and leave tail futures unresolved
                raise RuntimeError(
                    f"forward_batch returned {len(outputs)} outputs "
                    f"for a batch of {len(live)}"
                )
            errors: list[BaseException | None] = [None] * len(live)
        except BaseException as e:  # containment: settle, don't crash loop
            if isinstance(e, asyncio.CancelledError):
                cancelled = True
            outputs = [None] * len(live)
            errors = [e] * len(live)
        done = time.perf_counter()
        # a model serving salvaged weights (ServedModel with an on_fault
        # policy and a damaged archive) exposes its damage report; ride
        # it on every Ok so degraded answers are distinguishable
        damage = getattr(self.model, "damage", None) or None
        for p, out, err in zip(live, outputs, errors):
            if p.future.cancelled():
                continue
            latency = done - p.submitted_at
            if err is not None:
                self.failed += 1
                o.count("serve.failed")
                p.future.set_result(Failed(error=f"{type(err).__name__}: {err}"))
            elif p.expired(done):
                # computed, but too late: discard rather than reply slow
                self.deadline_exceeded += 1
                o.count("serve.deadline.exceeded")
                p.future.set_result(
                    DeadlineExceeded(
                        deadline_s=p.deadline_s,
                        waited_s=latency,
                        executed=True,
                    )
                )
            else:
                self.ok += 1
                o.count("serve.ok")
                o.observe(
                    "serve.latency_seconds", latency, buckets=LATENCY_BUCKETS
                )
                if damage:
                    self.degraded += 1
                    o.count("serve.degraded")
                p.future.set_result(
                    Ok(
                        output=out,
                        latency_s=latency,
                        batch_size=len(live),
                        degraded=damage,
                    )
                )
        if cancelled:
            raise asyncio.CancelledError

    # -- introspection -----------------------------------------------------
    def counters(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "deadline_exceeded": self.deadline_exceeded,
            "failed": self.failed,
            "batches": self.batches,
            "degraded": self.degraded,
        }
