"""``python -m repro.serve`` — demo driver for the inference service.

Default mode runs an in-process demo: load the LeNet-5 demo archive,
start the service, fire N concurrent requests through the asyncio
submit path, and print a latency/throughput/batching summary.  With
``--listen`` it instead serves the JSON-lines TCP protocol until
interrupted; with ``--client HOST:PORT`` it plays the demo client
against a running server.

``--replicas N`` runs the supervised fleet demo instead: N worker
processes serving the tiny bench archive behind the retry/hedge router,
driven by the same concurrent load.  ``--chaos kill`` SIGKILLs one
replica mid-load (``--chaos corrupt`` additionally bit-flips the
archive file first) and the summary reports availability, restarts and
recovery — the CI chaos smoke runs exactly this.

``REPRO_OBS=<dir>`` (or ``--obs <dir>``) dumps the service's metrics
and trace (``metrics.json`` / ``metrics.csv`` / ``trace.json``) after
the run — QPS, latency and batch-size histograms, cache hit rate, shed
count, and in fleet mode the ``serve.fleet.*`` supervision counters.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time

import numpy as np

from .. import obs
from ..runtime.pool import RunPolicy
from .cache import DecodedWeightCache
from .demo import bench_model, demo_inputs, demo_model
from .replies import Ok
from .server import request_many, serve_tcp
from .service import InferenceService, ServeConfig


def _build(args) -> tuple[InferenceService, tuple[int, ...]]:
    cache = DecodedWeightCache()
    fast = os.environ.get("REPRO_FAST", "") == "1"
    served = bench_model(cache) if (args.tiny or fast) else demo_model(cache)
    config = ServeConfig(
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        policy=RunPolicy(timeout=args.deadline),
    )
    return InferenceService(served, config), served.input_shape


def _percentile(xs: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(xs), q)) if xs else float("nan")


def _summarize(service: InferenceService, replies, elapsed: float) -> None:
    lat = [r.latency_s for r in replies if isinstance(r, Ok)]
    n_ok = len(lat)
    c = service.counters()
    cache = service.model.cache.counters() if hasattr(service.model, "cache") else {}
    print(f"requests          {c['requests']}")
    print(f"ok                {n_ok}  ({n_ok / elapsed:.0f} rps)")
    print(
        f"degraded          shed={c['shed']} "
        f"deadline_expired={c['deadline_expired']} "
        f"deadline_exceeded={c['deadline_exceeded']} failed={c['failed']}"
    )
    if lat:
        print(
            f"latency           p50={_percentile(lat, 50) * 1e3:.2f}ms "
            f"p99={_percentile(lat, 99) * 1e3:.2f}ms"
        )
    if c["batches"]:
        print(f"batches           {c['batches']}  (mean size {n_ok / c['batches']:.1f})")
    if cache:
        print(
            f"weight cache      hits={cache['cache_hits']} "
            f"misses={cache['cache_misses']} "
            f"evictions={cache['cache_evictions']} "
            f"bytes={cache['cache_bytes']}"
        )


async def _demo(args) -> int:
    service, input_shape = _build(args)
    inputs = demo_inputs(args.requests, input_shape)
    sem = asyncio.Semaphore(args.concurrency)

    async def one(x):
        async with sem:
            return await service.submit(x)

    async with service:
        start = time.perf_counter()
        replies = await asyncio.gather(*(one(x) for x in inputs))
        elapsed = time.perf_counter() - start
    _summarize(service, replies, elapsed)
    return 0


async def _listen(args) -> int:
    service, _ = _build(args)
    host, _, port = args.listen.partition(":")
    async with service:
        server = await serve_tcp(service, host or "127.0.0.1", int(port or 0))
        addr = server.sockets[0].getsockname()
        print(f"serving on {addr[0]}:{addr[1]}  (ctrl-c to stop)")
        try:
            async with server:
                await server.serve_forever()
        except asyncio.CancelledError:
            pass
    return 0


async def _fleet(args) -> int:
    import tempfile

    from ..resilience.chaos import ChaosEvent, run_campaign
    from .demo import BENCH_INPUT_SHAPE, bench_archive_model, save_bench_archive
    from .fleet import FleetConfig, ReplicaFleet, ReplicaSpec

    with tempfile.TemporaryDirectory() as td:
        path = save_bench_archive(os.path.join(td, "fleet-demo.npz"))
        spec = ReplicaSpec(
            factory=bench_archive_model,
            factory_kwargs={"path": str(path), "on_fault": "zero"},
            config=ServeConfig(
                max_batch=args.max_batch,
                max_queue=args.max_queue,
                policy=RunPolicy(timeout=args.deadline),
            ),
        )
        config = FleetConfig(
            replicas=args.replicas,
            probe_interval_s=0.1,
            policy=RunPolicy(timeout=args.deadline),
        )
        inputs = demo_inputs(
            min(args.requests, 64), BENCH_INPUT_SHAPE
        )
        events = ()
        if args.chaos == "kill":
            events = (ChaosEvent(at=args.duration * 0.25, kind="kill", target=0),)
        elif args.chaos == "corrupt":
            events = (
                ChaosEvent(at=args.duration * 0.25, kind="corrupt", target=0),
            )
        async with ReplicaFleet(spec, config) as fleet:
            result = await run_campaign(
                fleet,
                inputs,
                duration_s=args.duration,
                concurrency=args.concurrency,
                events=events,
                archive_path=path,
                deadline=args.deadline,
            )
            counters = fleet.counters()
        print(f"replicas          {args.replicas}  (chaos: {args.chaos or 'none'})")
        print(f"requests          {result.total}  ({result.total / result.elapsed_s:.0f} rps)")
        print(f"ok                {result.ok}  (degraded {result.degraded_ok})")
        print(f"availability      {result.availability:.3f}")
        print(f"untyped           {result.untyped}")
        print(f"by_status         {result.by_status}")
        print(f"restarts          {result.restarts}")
        if result.recovery_s is not None:
            print(f"recovery          {result.recovery_s:.2f}s after last event")
        print(f"fleet counters    {counters}")
    return 0


async def _client(args) -> int:
    host, _, port = args.client.partition(":")
    # client side cannot know the server's model; --tiny must match
    shape = (64,) if args.tiny else (1, 28, 28)
    inputs = demo_inputs(args.requests, shape)
    start = time.perf_counter()
    docs = await request_many(host, int(port), inputs, deadline=args.deadline)
    elapsed = time.perf_counter() - start
    n_ok = sum(1 for d in docs if d["status"] == "ok")
    print(f"{len(docs)} replies in {elapsed:.3f}s  ({n_ok} ok, {n_ok / elapsed:.0f} rps)")
    return 0


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.split("\n\n")[0]
    )
    p.add_argument("--requests", type=int, default=200, help="demo request count")
    p.add_argument(
        "--concurrency", type=int, default=16, help="in-flight demo requests"
    )
    p.add_argument("--deadline", type=float, default=1.0, help="per-request seconds")
    p.add_argument("--max-batch", type=int, default=32)
    p.add_argument("--max-queue", type=int, default=128)
    p.add_argument(
        "--tiny", action="store_true", help="serve the tiny bench MLP (default in REPRO_FAST)"
    )
    p.add_argument("--listen", metavar="HOST:PORT", help="run the TCP server")
    p.add_argument("--client", metavar="HOST:PORT", help="run the demo client")
    p.add_argument(
        "--replicas", type=int, default=0,
        help="run the supervised fleet demo with N worker processes",
    )
    p.add_argument(
        "--chaos", choices=["kill", "corrupt"],
        help="fleet demo: inject this fault mid-load",
    )
    p.add_argument(
        "--duration", type=float, default=5.0,
        help="fleet demo: seconds of load",
    )
    p.add_argument("--obs", metavar="DIR", help="dump metrics/trace here")
    args = p.parse_args(argv)

    runner = (
        _client if args.client
        else _listen if args.listen
        else _fleet if args.replicas
        else _demo
    )
    obs_dir = args.obs or obs.obs_dir_from_env()
    if obs_dir:
        with obs.use(obs.Obs()) as o:
            rc = asyncio.run(runner(args))
            obs.write_outputs(o, obs_dir)
            print(f"obs outputs -> {obs_dir}")
    else:
        rc = asyncio.run(runner(args))
    return rc


if __name__ == "__main__":
    sys.exit(main())
