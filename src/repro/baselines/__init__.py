"""Traditional lossless compressors, as negative baselines.

Sec. III-B of the paper argues that weight streams defeat classical
compression ("their entropy is so high that makes unsuitable the
application of any traditional compression technique").  These
implementations make that claim measurable: RLE (repetition), Huffman
(byte statistics) and LZ77/LZSS (substring dictionary) all achieve a
compression ratio near (or below) 1.0 on weight streams while working
normally on text and structured data — see
``benchmarks/test_baseline_compressors.py``.
"""

from .huffman import huffman_code, huffman_decode, huffman_encode, huffman_ratio
from .lz import lz_decode, lz_encode, lz_ratio
from .rle import rle_decode, rle_encode, rle_ratio

__all__ = [
    "huffman_code",
    "huffman_decode",
    "huffman_encode",
    "huffman_ratio",
    "lz_decode",
    "lz_encode",
    "lz_ratio",
    "rle_decode",
    "rle_encode",
    "rle_ratio",
]
