"""Byte-level Huffman coding baseline.

The canonical statistical compressor: its output size approaches the
byte entropy of Fig. 3.  On text (entropy ~4.2 bits/byte) it halves the
size; on weight streams (7.3-7.4 bits/byte) it saves almost nothing —
the quantitative version of the paper's entropy argument.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

__all__ = ["HuffmanCode", "huffman_code", "huffman_encode", "huffman_decode", "huffman_ratio"]


@dataclass
class HuffmanCode:
    """Canonical-ish Huffman code for byte symbols."""

    #: symbol -> (bit-length, code value)
    table: dict[int, tuple[int, int]]

    @property
    def mean_bits(self) -> float:
        return float(np.mean([l for l, _ in self.table.values()]))

    def expected_bits(self, counts: np.ndarray) -> float:
        total = counts.sum()
        bits = 0.0
        for sym, (length, _) in self.table.items():
            bits += counts[sym] * length
        return bits / total if total else 0.0


def _as_bytes(data: bytes | np.ndarray) -> np.ndarray:
    if isinstance(data, np.ndarray):
        return np.ascontiguousarray(data).view(np.uint8).ravel()
    return np.frombuffer(data, dtype=np.uint8)


def huffman_code(data: bytes | np.ndarray) -> HuffmanCode:
    """Build a Huffman code from the byte histogram of ``data``."""
    buf = _as_bytes(data)
    counts = np.bincount(buf, minlength=256)
    symbols = np.flatnonzero(counts)
    if symbols.size == 0:
        return HuffmanCode(table={})
    if symbols.size == 1:
        return HuffmanCode(table={int(symbols[0]): (1, 0)})

    counter = itertools.count()
    heap: list[tuple[int, int, object]] = [
        (int(counts[s]), next(counter), int(s)) for s in symbols
    ]
    heapq.heapify(heap)
    while len(heap) > 1:
        f1, _, left = heapq.heappop(heap)
        f2, _, right = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, next(counter), (left, right)))

    table: dict[int, tuple[int, int]] = {}

    def walk(node, depth, code):
        if isinstance(node, int):
            table[node] = (max(depth, 1), code)
            return
        left, right = node
        walk(left, depth + 1, code << 1)
        walk(right, depth + 1, (code << 1) | 1)

    walk(heap[0][2], 0, 0)
    return HuffmanCode(table=table)


def huffman_encode(data: bytes | np.ndarray, code: HuffmanCode | None = None) -> tuple[bytes, HuffmanCode]:
    """Encode ``data``; returns (bitstream bytes, code).

    Vectorized: per-symbol bit lengths/codes are table-looked-up with
    NumPy and packed via a cumulative bit-offset scatter.
    """
    buf = _as_bytes(data)
    code = code or huffman_code(buf)
    if buf.size == 0:
        return b"", code
    lengths = np.zeros(256, dtype=np.int64)
    values = np.zeros(256, dtype=np.int64)
    for sym, (l, v) in code.table.items():
        lengths[sym] = l
        values[sym] = v
    sym_len = lengths[buf]
    if (sym_len == 0).any():
        raise ValueError("data contains symbols outside the code")
    sym_val = values[buf]
    total_bits = int(sym_len.sum())
    out = np.zeros((total_bits + 7) // 8, dtype=np.uint8)
    # bit offsets of each symbol
    offsets = np.concatenate(([0], np.cumsum(sym_len)[:-1]))
    # write bit by bit over the (<=32) bit positions of the longest code;
    # loops over code length, not data length
    max_len = int(sym_len.max())
    for bit in range(max_len):
        mask = sym_len > bit
        # bit `bit` from the top of each code
        shift = sym_len[mask] - 1 - bit
        bits = (sym_val[mask] >> shift) & 1
        pos = offsets[mask] + bit
        on = pos[bits == 1]
        np.bitwise_or.at(out, on >> 3, (0x80 >> (on & 7)).astype(np.uint8))
    return out.tobytes(), code


def huffman_decode(blob: bytes, code: HuffmanCode, n_symbols: int) -> bytes:
    """Decode ``n_symbols`` from the bitstream (reference, bit-serial)."""
    # build decode trie
    root: dict = {}
    for sym, (length, value) in code.table.items():
        node = root
        for bit in range(length - 1, -1, -1):
            b = (value >> bit) & 1
            node = node.setdefault(b, {})
        node["sym"] = sym
    bits = np.unpackbits(np.frombuffer(blob, dtype=np.uint8))
    out = bytearray()
    node = root
    for b in bits:
        node = node[int(b)]
        if "sym" in node:
            out.append(node["sym"])
            node = root
            if len(out) == n_symbols:
                break
    if len(out) != n_symbols:
        raise ValueError("bitstream exhausted before all symbols decoded")
    return bytes(out)


def huffman_ratio(data: bytes | np.ndarray) -> float:
    """Compression ratio including the code-table cost (256*2 bytes max)."""
    buf = _as_bytes(data)
    if buf.size == 0:
        return 1.0
    blob, code = huffman_encode(buf)
    table_bytes = 2 * len(code.table)
    return buf.size / (len(blob) + table_bytes)
