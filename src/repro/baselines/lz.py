"""LZ77-style dictionary compressor baseline (zlib-class, simplified).

Dictionary coders exploit *repeated substrings*.  Weight streams have
essentially none (Fig. 3), so the match rate collapses and the output
approaches literal size plus framing overhead.  The implementation is a
hash-chain LZ77 with greedy parsing — deliberately simple, but it
compresses text and structured data well enough to make the contrast
with weight streams meaningful.

Token format: a flag byte precedes each group of 8 tokens (1 bit per
token: literal or match); literals are 1 byte; matches are 3 bytes
(12-bit distance, 4-bit length-3..18) — the classic LZSS layout.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lz_encode", "lz_decode", "lz_ratio"]

_MIN_MATCH = 3
_MAX_MATCH = 18
_WINDOW = 4096


def _as_bytes(data: bytes | np.ndarray) -> bytes:
    if isinstance(data, np.ndarray):
        return np.ascontiguousarray(data).view(np.uint8).ravel().tobytes()
    return bytes(data)


def lz_encode(data: bytes | np.ndarray) -> bytes:
    buf = _as_bytes(data)
    n = len(buf)
    out = bytearray()
    tokens: list[tuple] = []  # ("lit", byte) | ("match", dist, length)
    head: dict[bytes, list[int]] = {}
    i = 0
    while i < n:
        best_len, best_dist = 0, 0
        if i + _MIN_MATCH <= n:
            key = buf[i : i + _MIN_MATCH]
            for j in reversed(head.get(key, ())):
                if i - j >= _WINDOW:
                    # the 12-bit distance field tops out at _WINDOW - 1;
                    # a distance of exactly _WINDOW would wrap to 0 on
                    # serialization and corrupt the stream
                    break
                length = _MIN_MATCH
                limit = min(_MAX_MATCH, n - i)
                while length < limit and buf[j + length] == buf[i + length]:
                    length += 1
                if length > best_len:
                    best_len, best_dist = length, i - j
                    if length == _MAX_MATCH:
                        break
        if best_len >= _MIN_MATCH:
            tokens.append(("match", best_dist, best_len))
            step = best_len
        else:
            tokens.append(("lit", buf[i]))
            step = 1
        # index the positions we consume (cap chain length for speed)
        for k in range(i, min(i + step, n - _MIN_MATCH + 1)):
            chain = head.setdefault(buf[k : k + _MIN_MATCH], [])
            chain.append(k)
            if len(chain) > 16:
                del chain[0]
        i += step

    # serialize in groups of 8 tokens with a flag byte
    for g in range(0, len(tokens), 8):
        group = tokens[g : g + 8]
        flags = 0
        body = bytearray()
        for bit, tok in enumerate(group):
            if tok[0] == "match":
                flags |= 1 << bit
                _, dist, length = tok
                body.append(dist & 0xFF)
                body.append(((dist >> 8) & 0x0F) | ((length - _MIN_MATCH) << 4))
            else:
                body.append(tok[1])
        out.append(flags)
        out.extend(body)
    return bytes(out)


def lz_decode(blob: bytes) -> bytes:
    out = bytearray()
    i = 0
    n = len(blob)
    while i < n:
        flags = blob[i]
        i += 1
        for bit in range(8):
            if i >= n:
                break
            if flags & (1 << bit):
                lo = blob[i]
                hi = blob[i + 1]
                i += 2
                dist = lo | ((hi & 0x0F) << 8)
                length = (hi >> 4) + _MIN_MATCH
                if dist == 0 or dist > len(out):
                    raise ValueError("corrupt LZ stream: bad distance")
                start = len(out) - dist
                # byte-at-a-time on purpose: an overlapping match copies
                # bytes it is itself producing, which a snapshot slice
                # (out.extend(out[start:start+length])) would truncate
                for k in range(length):  # noqa: PERF401 - self-overlap
                    out.append(out[start + k])
            else:
                out.append(blob[i])
                i += 1
    return bytes(out)


def lz_ratio(data: bytes | np.ndarray, sample_limit: int = 1 << 18) -> float:
    """Compression ratio on (a sample of) the data.

    Encoding is O(n) Python; for large streams a prefix sample is
    representative because LZ match statistics are stationary on both
    text and weight streams.
    """
    buf = _as_bytes(data)[:sample_limit]
    if not buf:
        return 1.0
    return len(buf) / len(lz_encode(buf))
