"""Run-length encoding baseline.

The paper motivates its bespoke compressor by noting that classic
techniques exploit repetition ("in vector graphics images, repetitive
patterns ... run length encoding provides high compression ratios") and
that weight streams have none.  This byte-level RLE implementation
makes that concrete: it excels on synthetic repetitive data and
*expands* high-entropy weight streams.

Format: ``(count: u8, value: u8)`` pairs — the textbook scheme, chosen
for hardware-decodability (the paper's constraint on any candidate).
"""

from __future__ import annotations

import numpy as np

__all__ = ["rle_encode", "rle_decode", "rle_ratio"]


def _as_bytes(data: bytes | np.ndarray) -> np.ndarray:
    if isinstance(data, np.ndarray):
        return np.ascontiguousarray(data).view(np.uint8).ravel()
    return np.frombuffer(data, dtype=np.uint8)


def rle_encode(data: bytes | np.ndarray) -> bytes:
    """Encode to (count, value) byte pairs, runs capped at 255."""
    buf = _as_bytes(data)
    if buf.size == 0:
        return b""
    # run boundaries, vectorized
    change = np.flatnonzero(buf[1:] != buf[:-1])
    starts = np.concatenate(([0], change + 1))
    ends = np.concatenate((change + 1, [buf.size]))
    lengths = ends - starts
    values = buf[starts]
    # split runs longer than 255: each run emits ceil(len/255) chunks of
    # 255 with the remainder (1..255) in its final chunk
    reps = -(-lengths // 255)
    out_vals = np.repeat(values, reps)
    out_counts = np.full(out_vals.size, 255, dtype=np.uint8)
    last_idx = np.cumsum(reps) - 1
    out_counts[last_idx] = lengths - 255 * (reps - 1)
    pairs = np.empty((out_vals.size, 2), dtype=np.uint8)
    pairs[:, 0] = out_counts
    pairs[:, 1] = out_vals
    return pairs.tobytes()


def rle_decode(blob: bytes) -> bytes:
    """Inverse of :func:`rle_encode`."""
    if len(blob) % 2:
        raise ValueError("RLE stream must be (count, value) pairs")
    pairs = np.frombuffer(blob, dtype=np.uint8).reshape(-1, 2)
    return np.repeat(pairs[:, 1], pairs[:, 0]).tobytes()


def rle_ratio(data: bytes | np.ndarray) -> float:
    """Compression ratio (>1 compresses, <1 expands)."""
    buf = _as_bytes(data)
    if buf.size == 0:
        return 1.0
    return buf.size / len(rle_encode(buf))
