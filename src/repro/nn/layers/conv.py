"""Convolution layers (standard and depthwise), im2col + GEMM based."""

from __future__ import annotations

import numpy as np

from ..initializers import he_normal
from ..tensor import col2im, conv_out_size, im2col
from .base import Layer, Parameter

__all__ = ["Conv2D", "DepthwiseConv2D"]


class Conv2D(Layer):
    """2-D convolution, NCHW activations, OIHW kernel.

    ``padding`` is either an int or ``"same"`` (stride-1 shape-preserving
    padding, odd kernels only).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | str = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str = "",
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = self._resolve_padding(padding, kernel_size)
        self.weight = Parameter(
            he_normal((out_channels, in_channels, kernel_size, kernel_size), rng),
            name=f"{name}/W",
        )
        self.bias = (
            Parameter(np.zeros(out_channels, dtype=np.float32), name=f"{name}/b")
            if bias
            else None
        )
        self.name = name
        self._cache: tuple | None = None

    @staticmethod
    def _resolve_padding(padding: int | str, kernel_size: int) -> int:
        if padding == "same":
            if kernel_size % 2 == 0:
                raise ValueError("'same' padding requires an odd kernel size")
            return kernel_size // 2
        return int(padding)

    def params(self) -> list[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        weight_provider=None,
    ) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"{self.name}: expected {self.in_channels} channels, got {c}")
        k, s, p = self.kernel_size, self.stride, self.padding
        cols, oh, ow = im2col(x, k, k, s, p)
        if weight_provider is not None:
            if training:
                raise ValueError(
                    f"{self.name}: the fused streamed-weight path is "
                    "inference-only (backward needs materialized weights)"
                )
            out = self._matmul_streamed(cols, weight_provider)
        else:
            wmat = self.weight.data.reshape(self.out_channels, -1)
            out = cols @ wmat.T  # (N*oh*ow, O)
        if self.bias is not None:
            out += self.bias.data
        y = out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        if training:
            self._cache = (x.shape, cols)
        return np.ascontiguousarray(y)

    def _matmul_streamed(self, cols: np.ndarray, provider) -> np.ndarray:
        """Fused decode+MAC over output-channel tiles.

        The OIHW kernel's C-order stream is filter-major: a tile of
        ``r * (I*kh*kw)`` elements is ``r`` whole filters, so each tile
        fills ``r`` output columns of the im2col GEMM as it is decoded.
        """
        from ...core.decompressor import DEFAULT_TILE_WEIGHTS

        kernel_elems = self.in_channels * self.kernel_size**2
        expected = self.out_channels * kernel_elems
        if provider.num_weights != expected:
            raise ValueError(
                f"{self.name}: provider yields {provider.num_weights} "
                f"weights, layer needs {expected}"
            )
        cur = provider.cursor(dtype=self.weight.data.dtype)
        filters_per_tile = max(1, DEFAULT_TILE_WEIGHTS // kernel_elems)
        out = np.empty(
            (cols.shape[0], self.out_channels),
            dtype=np.result_type(cols, self.weight.data),
        )
        o = 0
        while o < self.out_channels:
            r = min(filters_per_tile, self.out_channels - o)
            block = cur.read(r * kernel_elems).reshape(r, kernel_elems)
            out[:, o : o + r] = cols @ block.T
            o += r
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_shape, cols = self._cache
        n, _, oh, ow = grad.shape
        g = grad.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)  # (N*oh*ow, O)
        self.weight.add_grad((g.T @ cols).reshape(self.weight.shape))
        if self.bias is not None:
            self.bias.add_grad(g.sum(axis=0))
        dcols = g @ self.weight.data.reshape(self.out_channels, -1)
        k, s, p = self.kernel_size, self.stride, self.padding
        return col2im(dcols, x_shape, k, k, s, p)

    def out_shape(self, in_shape: tuple[int, int, int]) -> tuple[int, int, int]:
        _, h, w = in_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        return (self.out_channels, conv_out_size(h, k, s, p), conv_out_size(w, k, s, p))

    def macs_per_sample(self, in_shape: tuple[int, int, int]) -> int:
        _, oh, ow = self.out_shape(in_shape)
        return (
            oh * ow * self.out_channels * self.in_channels * self.kernel_size**2
        )


class DepthwiseConv2D(Layer):
    """Depthwise 2-D convolution (one filter per input channel).

    Implemented by running im2col per channel group via a reshape trick:
    the channel axis is folded into the batch so the kernel applies
    channel-wise with a single einsum.
    """

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | str = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str = "",
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = Conv2D._resolve_padding(padding, kernel_size)
        self.weight = Parameter(
            he_normal((channels, 1, kernel_size, kernel_size), rng),
            name=f"{name}/W",
        )
        self.bias = (
            Parameter(np.zeros(channels, dtype=np.float32), name=f"{name}/b")
            if bias
            else None
        )
        self.name = name
        self._cache: tuple | None = None

    def params(self) -> list[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        weight_provider=None,
    ) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.channels:
            raise ValueError(f"{self.name}: expected {self.channels} channels, got {c}")
        k, s, p = self.kernel_size, self.stride, self.padding
        # Fold channels into the batch: (N*C, 1, H, W)
        xf = x.reshape(n * c, 1, h, w)
        cols, oh, ow = im2col(xf, k, k, s, p)  # (N*C*oh*ow, k*k)
        cols4 = cols.reshape(n, c, oh * ow, k * k)
        if weight_provider is not None:
            if training:
                raise ValueError(
                    f"{self.name}: the fused streamed-weight path is "
                    "inference-only (backward needs materialized weights)"
                )
            out = self._einsum_streamed(cols4, weight_provider)
        else:
            wmat = self.weight.data.reshape(c, k * k)
            out = np.einsum("ncpk,ck->ncp", cols4, wmat)
        if self.bias is not None:
            out += self.bias.data[None, :, None]
        y = out.reshape(n, c, oh, ow)
        if training:
            self._cache = ((n * c, 1, h, w), cols4)
        return y

    def _einsum_streamed(self, cols4: np.ndarray, provider) -> np.ndarray:
        """Fused decode+MAC over channel tiles of the (C, 1, k, k) kernel.

        The C-order stream is channel-major, so a tile of ``r * k*k``
        elements is ``r`` whole per-channel filters and fills ``r``
        channel slices of the output as it is decoded.
        """
        from ...core.decompressor import DEFAULT_TILE_WEIGHTS

        kk = self.kernel_size**2
        expected = self.channels * kk
        if provider.num_weights != expected:
            raise ValueError(
                f"{self.name}: provider yields {provider.num_weights} "
                f"weights, layer needs {expected}"
            )
        cur = provider.cursor(dtype=self.weight.data.dtype)
        channels_per_tile = max(1, DEFAULT_TILE_WEIGHTS // kk)
        n, c, npix, _ = cols4.shape
        out = np.empty(
            (n, c, npix), dtype=np.result_type(cols4, self.weight.data)
        )
        ch = 0
        while ch < self.channels:
            r = min(channels_per_tile, self.channels - ch)
            block = cur.read(r * kk).reshape(r, kk)
            out[:, ch : ch + r] = np.einsum(
                "ncpk,ck->ncp", cols4[:, ch : ch + r], block
            )
            ch += r
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        xf_shape, cols4 = self._cache
        n, c, oh, ow = grad.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        g = grad.reshape(n, c, oh * ow)
        self.weight.add_grad(
            np.einsum("ncp,ncpk->ck", g, cols4).reshape(self.weight.shape)
        )
        if self.bias is not None:
            self.bias.add_grad(g.sum(axis=(0, 2)))
        dcols = np.einsum("ncp,ck->ncpk", g, self.weight.data.reshape(c, k * k))
        dx = col2im(dcols.reshape(n * c * oh * ow, k * k), xf_shape, k, k, s, p)
        return dx.reshape(n, c, *xf_shape[2:])

    def out_shape(self, in_shape: tuple[int, int, int]) -> tuple[int, int, int]:
        _, h, w = in_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        return (self.channels, conv_out_size(h, k, s, p), conv_out_size(w, k, s, p))

    def macs_per_sample(self, in_shape: tuple[int, int, int]) -> int:
        _, oh, ow = self.out_shape(in_shape)
        return oh * ow * self.channels * self.kernel_size**2
