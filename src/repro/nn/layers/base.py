"""Layer and Parameter base classes for the NumPy CNN framework."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter", "Layer", "MergeLayer"]


class Parameter:
    """A trainable tensor with its gradient accumulator.

    ``data`` is always ``float32`` (the PE datapath width in the paper's
    accelerator); ``grad`` is allocated lazily on first backward pass.
    """

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.name = name

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.data.shape)

    def zero_grad(self) -> None:
        self.grad = None

    def add_grad(self, g: np.ndarray) -> None:
        if self.grad is None:
            self.grad = g.astype(np.float32, copy=True)
        else:
            self.grad += g

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter({self.name}, shape={self.shape})"


class Layer:
    """Base class: a differentiable unary op with optional parameters.

    Subclasses implement :meth:`forward` (caching whatever the backward
    pass needs on ``self``) and :meth:`backward` (returning the gradient
    w.r.t. the input and populating parameter ``grad`` fields).
    Inference-only layers may omit ``backward``.
    """

    #: set by the model container; used for reporting and layer selection
    name: str = ""

    def params(self) -> list[Parameter]:
        """Trainable parameters, weights first (bias & co. after)."""
        return []

    def buffers(self) -> dict[str, np.ndarray]:
        """Non-trainable state (e.g. batch-norm running statistics).

        Keys are attribute names on the layer, so a generic
        ``setattr(layer, key, value)`` restores them.
        """
        return {}

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.params())

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError(f"{type(self).__name__} has no backward pass")

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r}, params={self.num_params})"


class MergeLayer(Layer):
    """Base for layers combining multiple inputs (Add, Concat)."""

    def forward(self, xs: list[np.ndarray], training: bool = False) -> np.ndarray:  # type: ignore[override]
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> list[np.ndarray]:  # type: ignore[override]
        raise NotImplementedError
