"""Inverted dropout (train-time only; identity at inference)."""

from __future__ import annotations

import numpy as np

from .base import Layer

__all__ = ["Dropout"]


class Dropout(Layer):
    def __init__(
        self, rate: float, rng: np.random.Generator | None = None, name: str = ""
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)
        self.name = name
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask
