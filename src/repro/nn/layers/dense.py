"""Fully connected (dense) layer."""

from __future__ import annotations

import numpy as np

from ..initializers import glorot_uniform
from .base import Layer, Parameter

__all__ = ["Dense"]


class Dense(Layer):
    """``y = x @ W + b`` with ``W`` of shape ``(in_features, out_features)``.

    The weight serialization order used by the compression experiments is
    C-order of ``W`` — rows are input neurons, matching the HDF5 layout
    of the Keras models the paper compresses.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str = "",
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            glorot_uniform((in_features, out_features), rng), name=f"{name}/W"
        )
        self.bias = (
            Parameter(np.zeros(out_features, dtype=np.float32), name=f"{name}/b")
            if bias
            else None
        )
        self.name = name
        self._x: np.ndarray | None = None

    def params(self) -> list[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected (N, {self.in_features}), got {x.shape}"
            )
        if training:
            self._x = x
        y = x @ self.weight.data
        if self.bias is not None:
            y += self.bias.data
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a training forward pass")
        self.weight.add_grad(self._x.T @ grad)
        if self.bias is not None:
            self.bias.add_grad(grad.sum(axis=0))
        return grad @ self.weight.data.T

    @property
    def macs_per_sample(self) -> int:
        return self.in_features * self.out_features
