"""Fully connected (dense) layer."""

from __future__ import annotations

import numpy as np

from ..initializers import glorot_uniform
from .base import Layer, Parameter

__all__ = ["Dense"]


class Dense(Layer):
    """``y = x @ W + b`` with ``W`` of shape ``(in_features, out_features)``.

    The weight serialization order used by the compression experiments is
    C-order of ``W`` — rows are input neurons, matching the HDF5 layout
    of the Keras models the paper compresses.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str = "",
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            glorot_uniform((in_features, out_features), rng), name=f"{name}/W"
        )
        self.bias = (
            Parameter(np.zeros(out_features, dtype=np.float32), name=f"{name}/b")
            if bias
            else None
        )
        self.name = name
        self._x: np.ndarray | None = None

    def params(self) -> list[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        weight_provider=None,
    ) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected (N, {self.in_features}), got {x.shape}"
            )
        if weight_provider is not None:
            if training:
                raise ValueError(
                    f"{self.name}: the fused streamed-weight path is "
                    "inference-only (backward needs materialized weights)"
                )
            return self._forward_streamed(x, weight_provider)
        if training:
            self._x = x
        y = x @ self.weight.data
        if self.bias is not None:
            y += self.bias.data
        return y

    def _forward_streamed(self, x: np.ndarray, provider) -> np.ndarray:
        """Fused decode+MAC: consume ``W`` row-tiles straight off a cursor.

        The stream is the C-order serialization of ``W`` (rows = input
        neurons), so a tile of ``r * out_features`` elements is ``r``
        whole rows and contributes ``x[:, rows] @ tile`` to the output —
        no full-size weight buffer ever exists on this path.
        """
        from ...core.decompressor import DEFAULT_TILE_WEIGHTS

        expected = self.in_features * self.out_features
        if provider.num_weights != expected:
            raise ValueError(
                f"{self.name}: provider yields {provider.num_weights} "
                f"weights, layer needs {expected}"
            )
        cur = provider.cursor(dtype=self.weight.data.dtype)
        rows_per_tile = max(1, DEFAULT_TILE_WEIGHTS // self.out_features)
        y = np.zeros((x.shape[0], self.out_features), dtype=np.result_type(x, self.weight.data))
        row = 0
        while row < self.in_features:
            r = min(rows_per_tile, self.in_features - row)
            block = cur.read(r * self.out_features).reshape(r, self.out_features)
            y += x[:, row : row + r] @ block
            row += r
        if self.bias is not None:
            y += self.bias.data
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a training forward pass")
        self.weight.add_grad(self._x.T @ grad)
        if self.bias is not None:
            self.bias.add_grad(grad.sum(axis=0))
        return grad @ self.weight.data.T

    @property
    def macs_per_sample(self) -> int:
        return self.in_features * self.out_features
