"""Batch normalization (2-D, per-channel)."""

from __future__ import annotations

import numpy as np

from .base import Layer, Parameter

__all__ = ["BatchNorm2D"]


class BatchNorm2D(Layer):
    """Per-channel batch norm over NCHW activations.

    Training mode normalizes with batch statistics and maintains running
    estimates; inference mode uses the running estimates.  ``gamma`` and
    ``beta`` are trainable; running statistics are buffers (not returned
    by :meth:`params`), matching the convention of the frameworks the
    paper's models come from.
    """

    def __init__(
        self,
        channels: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: str = "",
    ) -> None:
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(channels, dtype=np.float32), name=f"{name}/gamma")
        self.beta = Parameter(np.zeros(channels, dtype=np.float32), name=f"{name}/beta")
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self.name = name
        self._cache: tuple | None = None

    def params(self) -> list[Parameter]:
        return [self.gamma, self.beta]

    def buffers(self) -> dict[str, np.ndarray]:
        return {
            "running_mean": self.running_mean,
            "running_var": self.running_var,
        }

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[1] != self.channels:
            raise ValueError(f"{self.name}: expected {self.channels} channels")
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            ).astype(np.float32)
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            ).astype(np.float32)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        if training:
            self._cache = (xhat, inv_std)
        return (
            self.gamma.data[None, :, None, None] * xhat
            + self.beta.data[None, :, None, None]
        )

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        xhat, inv_std = self._cache
        n, _, h, w = grad.shape
        m = n * h * w
        self.gamma.add_grad((grad * xhat).sum(axis=(0, 2, 3)))
        self.beta.add_grad(grad.sum(axis=(0, 2, 3)))
        g = self.gamma.data[None, :, None, None]
        dxhat = grad * g
        # Standard batch-norm backward w.r.t. batch statistics.
        sum_dxhat = dxhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_dxhat_xhat = (dxhat * xhat).sum(axis=(0, 2, 3), keepdims=True)
        return (
            inv_std[None, :, None, None]
            * (dxhat - sum_dxhat / m - xhat * sum_dxhat_xhat / m)
        ).astype(grad.dtype)
