"""Shape-manipulation and merge layers: Flatten, Add, Concat."""

from __future__ import annotations

import numpy as np

from .base import Layer, MergeLayer

__all__ = ["Flatten", "Add", "Concat"]


class Flatten(Layer):
    """(N, ...) -> (N, prod(...))."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad.reshape(self._shape)


class Add(MergeLayer):
    """Element-wise sum of inputs (ResNet shortcut join)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._n_inputs = 0

    def forward(self, xs: list[np.ndarray], training: bool = False) -> np.ndarray:  # type: ignore[override]
        if len(xs) < 2:
            raise ValueError("Add expects at least two inputs")
        shapes = {x.shape for x in xs}
        if len(shapes) != 1:
            raise ValueError(f"Add inputs must share a shape, got {shapes}")
        if training:
            self._n_inputs = len(xs)
        out = xs[0].copy()
        for x in xs[1:]:
            out += x
        return out

    def backward(self, grad: np.ndarray) -> list[np.ndarray]:  # type: ignore[override]
        if self._n_inputs == 0:
            raise RuntimeError("backward called before a training forward pass")
        return [grad] * self._n_inputs


class Concat(MergeLayer):
    """Channel concatenation of NCHW inputs (Inception branch join)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._splits: list[int] | None = None

    def forward(self, xs: list[np.ndarray], training: bool = False) -> np.ndarray:  # type: ignore[override]
        if len(xs) < 2:
            raise ValueError("Concat expects at least two inputs")
        spatial = {x.shape[2:] for x in xs}
        if len(spatial) != 1:
            raise ValueError(f"Concat inputs must share spatial dims, got {spatial}")
        if training:
            self._splits = [x.shape[1] for x in xs]
        return np.concatenate(xs, axis=1)

    def backward(self, grad: np.ndarray) -> list[np.ndarray]:  # type: ignore[override]
        if self._splits is None:
            raise RuntimeError("backward called before a training forward pass")
        out, pos = [], 0
        for c in self._splits:
            out.append(grad[:, pos : pos + c])
            pos += c
        return out
