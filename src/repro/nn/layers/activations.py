"""Activation layers."""

from __future__ import annotations

import numpy as np

from .base import Layer

__all__ = ["ReLU", "Softmax", "Identity", "softmax"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    z = x - x.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


class ReLU(Layer):
    def __init__(self, name: str = "") -> None:
        self.name = name
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad * self._mask


class Softmax(Layer):
    """Inference-time softmax.

    Training uses the fused softmax-cross-entropy loss
    (:class:`repro.nn.losses.SoftmaxCrossEntropy`) instead, so this
    layer's backward is intentionally unavailable — model containers
    skip it during training.
    """

    is_output_activation = True

    def __init__(self, name: str = "") -> None:
        self.name = name

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return softmax(x, axis=-1)


class Identity(Layer):
    def __init__(self, name: str = "") -> None:
        self.name = name

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad
