"""Layer library of the NumPy CNN framework."""

from .activations import Identity, ReLU, Softmax, softmax
from .base import Layer, MergeLayer, Parameter
from .conv import Conv2D, DepthwiseConv2D
from .dense import Dense
from .dropout import Dropout
from .norm import BatchNorm2D
from .pool import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from .shape import Add, Concat, Flatten

__all__ = [
    "Layer",
    "MergeLayer",
    "Parameter",
    "Dense",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm2D",
    "ReLU",
    "Softmax",
    "Identity",
    "softmax",
    "Flatten",
    "Add",
    "Concat",
    "Dropout",
]
