"""Pooling layers: max, average and global average."""

from __future__ import annotations

import numpy as np

from ..tensor import conv_out_size, im2col
from .base import Layer

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class _Pool2D(Layer):
    def __init__(self, pool_size: int, stride: int | None = None, name: str = "") -> None:
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        self.name = name
        self._cache: tuple | None = None

    def out_shape(self, in_shape: tuple[int, int, int]) -> tuple[int, int, int]:
        c, h, w = in_shape
        k, s = self.pool_size, self.stride
        return (c, conv_out_size(h, k, s, 0), conv_out_size(w, k, s, 0))

    def _windows(self, x: np.ndarray) -> tuple[np.ndarray, int, int, int, int]:
        n, c, h, w = x.shape
        k, s = self.pool_size, self.stride
        xf = x.reshape(n * c, 1, h, w)
        cols, oh, ow = im2col(xf, k, k, s, 0)  # (N*C*oh*ow, k*k)
        return cols, n, c, oh, ow


class MaxPool2D(_Pool2D):
    """Max pooling; backward routes gradients to the argmax tap."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        cols, n, c, oh, ow = self._windows(x)
        idx = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), idx]
        if training:
            self._cache = (x.shape, idx)
        return out.reshape(n, c, oh, ow)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_shape, idx = self._cache
        n, c, h, w = x_shape
        k, s = self.pool_size, self.stride
        oh = conv_out_size(h, k, s, 0)
        ow = conv_out_size(w, k, s, 0)
        dcols = np.zeros((n * c * oh * ow, k * k), dtype=grad.dtype)
        dcols[np.arange(dcols.shape[0]), idx] = grad.ravel()
        from ..tensor import col2im

        dx = col2im(dcols, (n * c, 1, h, w), k, k, s, 0)
        return dx.reshape(n, c, h, w)


class AvgPool2D(_Pool2D):
    """Average pooling; backward spreads gradients uniformly."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        cols, n, c, oh, ow = self._windows(x)
        out = cols.mean(axis=1)
        if training:
            self._cache = (x.shape,)
        return out.reshape(n, c, oh, ow)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        (x_shape,) = self._cache
        n, c, h, w = x_shape
        k, s = self.pool_size, self.stride
        oh = conv_out_size(h, k, s, 0)
        ow = conv_out_size(w, k, s, 0)
        dcols = np.repeat(grad.reshape(-1, 1) / (k * k), k * k, axis=1)
        from ..tensor import col2im

        dx = col2im(dcols, (n * c, 1, h, w), k, k, s, 0)
        return dx.reshape(n, c, h, w)


class GlobalAvgPool2D(Layer):
    """Collapse each channel's spatial map to its mean: (N,C,H,W)->(N,C)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, h, w = self._shape
        return np.broadcast_to(
            grad[:, :, None, None] / (h * w), (n, c, h, w)
        ).astype(grad.dtype, copy=True)

    def out_shape(self, in_shape: tuple[int, int, int]) -> tuple[int]:
        return (in_shape[0],)
