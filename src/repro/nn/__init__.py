"""From-scratch NumPy CNN framework: layers, DAG models, training, zoo."""

from . import layers
from .graph import Model
from .losses import SoftmaxCrossEntropy
from .optim import SGD, StepLR
from .sequential import Sequential
from .train import EvalResult, TrainConfig, evaluate, topk_accuracy, train

__all__ = [
    "layers",
    "Model",
    "Sequential",
    "SoftmaxCrossEntropy",
    "SGD",
    "StepLR",
    "EvalResult",
    "TrainConfig",
    "evaluate",
    "topk_accuracy",
    "train",
]
