"""ResNet-50 (~25.6 M parameters; compressed layer: ``fc1000``, FC, ~8 %).

The canonical He et al. v1 bottleneck topology for 224x224 inputs:
7x7/2 stem, four stages of (3, 4, 6, 3) bottleneck blocks with 1x1
projection shortcuts at stage entry, global pooling and the ``fc1000``
classifier.  Every convolution is conv+BN (no conv bias).

The proxy is a mini residual network (real ``Add`` shortcut joins in the
DAG executor) on 32x32 inputs.
"""

from __future__ import annotations

import numpy as np

from ..arch import ArchBuilder, ArchSpec
from ..graph import Model
from ..layers import (
    Add,
    BatchNorm2D,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
    MaxPool2D,
    ReLU,
    Softmax,
)

NAME = "ResNet50"
SELECTED_LAYER = "fc1000"
DELTA_GRID = (0.0, 2.0, 4.0, 6.0, 8.0)  # paper Tab. II
INPUT_SHAPE = (3, 224, 224)
NUM_CLASSES = 1000
TOP_K = 5

#: proxy training hints (SGD momentum 0.9; BN-heavy proxies train
#: at higher rates, the small Inception proxy needs more epochs)
PROXY_LR = 0.1
PROXY_EPOCHS = 8

#: (blocks, mid-channels, out-channels) per stage
_STAGES = [(3, 64, 256), (4, 128, 512), (6, 256, 1024), (3, 512, 2048)]


def _conv_bn(b: ArchBuilder, name: str, out_c: int, kernel, stride=1, pad=0) -> None:
    b.conv(name, out_c, kernel, stride=stride, pad=pad, bias=False)
    b.batchnorm(f"{name}_bn")


def _bottleneck(
    b: ArchBuilder, tag: str, mid: int, out: int, stride: int, project: bool
) -> None:
    block_in = b.shape
    _conv_bn(b, f"{tag}_conv1", mid, 1, stride=stride)
    _conv_bn(b, f"{tag}_conv2", mid, 3, pad=1)
    _conv_bn(b, f"{tag}_conv3", out, 1)
    out_shape = b.shape
    if project:
        b.set_shape(block_in)
        _conv_bn(b, f"{tag}_proj", out, 1, stride=stride)
    b.merge(f"{tag}_add", out_shape)


def full() -> ArchSpec:
    """Paper-scale architecture inventory (~25.6 M params)."""
    b = ArchBuilder("resnet50", INPUT_SHAPE)
    _conv_bn(b, "conv1", 64, 7, stride=2, pad=3)  # 112
    b.pool("pool1", 3, 2, pad=1)                  # 56
    for stage_idx, (blocks, mid, out) in enumerate(_STAGES, start=2):
        for block_idx in range(blocks):
            tag = f"conv{stage_idx}_block{block_idx + 1}"
            stride = 2 if (block_idx == 0 and stage_idx > 2) else 1
            _bottleneck(b, tag, mid, out, stride=stride, project=block_idx == 0)
    b.global_pool("avg_pool")
    b.fc("fc1000", NUM_CLASSES)
    # ImageNet-trained classifier head: heavy-tailed weight range
    # (calibrated against the paper's Tab. II CR-vs-delta curve)
    return b.build(weight_tail_ratios={"fc1000": 30.0})


#: 50 classes so top-5 accuracy is a meaningful metric (Fig. 10)
_PROXY_CLASSES = 50


def _proxy_block(
    m: Model, rng: np.random.Generator, tag: str, in_c: int, out_c: int, src: str
) -> str:
    """Basic (two-conv) residual block; returns the output node name."""
    x = m.add(Conv2D(in_c, out_c, 3, padding=1, bias=False, rng=rng),
              inputs=src, name=f"{tag}_conv1")
    x = m.add(BatchNorm2D(out_c), inputs=x, name=f"{tag}_bn1")
    x = m.add(ReLU(), inputs=x, name=f"{tag}_relu1")
    x = m.add(Conv2D(out_c, out_c, 3, padding=1, bias=False, rng=rng),
              inputs=x, name=f"{tag}_conv2")
    x = m.add(BatchNorm2D(out_c), inputs=x, name=f"{tag}_bn2")
    if in_c != out_c:
        src = m.add(Conv2D(in_c, out_c, 1, bias=False, rng=rng),
                    inputs=src, name=f"{tag}_proj")
    joined = m.add(Add(), inputs=[x, src], name=f"{tag}_add")
    return m.add(ReLU(), inputs=joined, name=f"{tag}_out")


def proxy(rng: np.random.Generator | None = None) -> Model:
    """Mini residual network for 32x32 3-channel inputs."""
    rng = rng or np.random.default_rng(42)
    m = Model(name="resnet50-proxy")
    m.add(Conv2D(3, 16, 3, padding=1, bias=False, rng=rng), name="conv1")
    m.add(BatchNorm2D(16), name="conv1_bn")
    x = m.add(ReLU(), name="conv1_relu")
    x = _proxy_block(m, rng, "block1", 16, 16, x)
    pool1 = m.add(MaxPool2D(2), inputs=x, name="pool1")  # 16
    x = _proxy_block(m, rng, "block2", 16, 32, pool1)
    pool2 = m.add(MaxPool2D(2), inputs=x, name="pool2")  # 8
    x = _proxy_block(m, rng, "block3", 32, 48, pool2)
    m.add(GlobalAvgPool2D(), inputs=x, name="avg_pool")
    m.add(Dense(48, _PROXY_CLASSES, rng=rng), name="fc1000")
    m.add(Softmax(), name="softmax")
    return m
