"""Model zoo: the six networks of the paper's evaluation (Tab. I).

Each module exposes:

* ``NAME`` — display name used in tables;
* ``full()`` — paper-scale :class:`~repro.nn.arch.ArchSpec`;
* ``proxy(rng)`` — small trainable :class:`~repro.nn.graph.Model` with
  the same topology family (used for accuracy studies);
* ``SELECTED_LAYER`` — the layer the paper compresses (Tab. I);
* ``DELTA_GRID`` — the delta values of the paper's sweep (Tab. II);
* ``TOP_K`` — accuracy metric (1 for LeNet-5, 5 elsewhere).
"""

from . import alexnet, inception_v3, lenet5, mobilenet, resnet50, vgg16

#: evaluation order used by the paper's tables
ALL_MODELS = [lenet5, alexnet, vgg16, mobilenet, inception_v3, resnet50]

BY_NAME = {m.NAME: m for m in ALL_MODELS}

__all__ = [
    "lenet5",
    "alexnet",
    "vgg16",
    "mobilenet",
    "inception_v3",
    "resnet50",
    "ALL_MODELS",
    "BY_NAME",
]
