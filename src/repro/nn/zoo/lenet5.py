"""LeNet-5 (62 k parameters; compressed layer: ``dense_1``, FC, ~78 %).

The smallest network in the paper's evaluation; trained on MNIST-class
data (10 classes, so the paper reports top-1 accuracy for it).  Here the
*proxy* **is** the full architecture — 62 k parameters train in seconds
on the synthetic digits dataset.
"""

from __future__ import annotations

import numpy as np

from ..arch import ArchBuilder, ArchSpec
from ..graph import Model
from ..layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Softmax
from ..sequential import Sequential

NAME = "LeNet-5"
SELECTED_LAYER = "dense_1"
DELTA_GRID = (0.0, 5.0, 10.0, 15.0, 20.0)  # paper Tab. II
INPUT_SHAPE = (1, 28, 28)
NUM_CLASSES = 10
TOP_K = 1  # 10-class task: the paper uses top-1 for LeNet-5

#: proxy training hints (SGD momentum 0.9; BN-heavy proxies train
#: at higher rates, the small Inception proxy needs more epochs)
PROXY_LR = 0.05
PROXY_EPOCHS = 6


def full() -> ArchSpec:
    """Paper-scale architecture inventory (~62 k params)."""
    b = ArchBuilder("lenet5", INPUT_SHAPE)
    b.conv("conv2d_1", 6, 5, pad=2)
    b.pool("max_pooling2d_1", 2)
    b.conv("conv2d_2", 16, 5)
    b.pool("max_pooling2d_2", 2)
    b.flatten()
    b.fc("dense_1", 120)
    b.fc("dense_2", 84)
    b.fc("dense_3", NUM_CLASSES)
    # Trained LeNet FC weights are small-magnitude; the tail ratio is
    # the natural Gaussian range of a 48k-sample stream, which matches
    # the paper's Tab. II CR-vs-delta curve for this model.
    return b.build(
        weight_scales={"dense_1": 0.9, "dense_2": 0.9, "dense_3": 1.0},
        weight_tail_ratios={"dense_1": 7.6},
    )


def proxy(rng: np.random.Generator | None = None) -> Model:
    """Trainable LeNet-5 (identical topology to :func:`full`)."""
    rng = rng or np.random.default_rng(42)
    return Sequential(
        [
            ("conv2d_1", Conv2D(1, 6, 5, padding=2, rng=rng)),
            ("relu_1", ReLU()),
            ("max_pooling2d_1", MaxPool2D(2)),
            ("conv2d_2", Conv2D(6, 16, 5, rng=rng)),
            ("relu_2", ReLU()),
            ("max_pooling2d_2", MaxPool2D(2)),
            ("flatten", Flatten()),
            ("dense_1", Dense(400, 120, rng=rng)),
            ("relu_3", ReLU()),
            ("dense_2", Dense(120, 84, rng=rng)),
            ("relu_4", ReLU()),
            ("dense_3", Dense(84, NUM_CLASSES, rng=rng)),
            ("softmax", Softmax()),
        ],
        name="lenet5-proxy",
    )
