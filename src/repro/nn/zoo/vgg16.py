"""VGG-16 (~138 M parameters; compressed layer: ``dense_1``, FC, ~74 %).

The standard Simonyan & Zisserman configuration D for 224x224 inputs.
``dense_1`` is the 25088x4096 matrix — 102.8 M parameters, the largest
single layer in the whole evaluation.  The proxy is a VGG-style
stack (three double-conv blocks + two-dense head) on 32x32 inputs.
"""

from __future__ import annotations

import numpy as np

from ..arch import ArchBuilder, ArchSpec
from ..graph import Model
from ..layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Softmax
from ..sequential import Sequential

NAME = "VGG-16"
SELECTED_LAYER = "dense_1"
DELTA_GRID = (0.0, 2.0, 4.0, 6.0, 8.0)  # paper Tab. II
INPUT_SHAPE = (3, 224, 224)
NUM_CLASSES = 1000
TOP_K = 5

#: proxy training hints (SGD momentum 0.9; BN-heavy proxies train
#: at higher rates, the small Inception proxy needs more epochs)
PROXY_LR = 0.05
PROXY_EPOCHS = 8


def full() -> ArchSpec:
    """Paper-scale architecture inventory (~138.4 M params)."""
    b = ArchBuilder("vgg16", INPUT_SHAPE)
    cfg = [
        ("block1", 64, 2),
        ("block2", 128, 2),
        ("block3", 256, 3),
        ("block4", 512, 3),
        ("block5", 512, 3),
    ]
    for block, channels, reps in cfg:
        for i in range(1, reps + 1):
            b.conv(f"{block}_conv{i}", channels, 3, pad=1)
        b.pool(f"{block}_pool", 2)
    b.flatten()  # 512 * 7 * 7 = 25088
    b.fc("dense_1", 4096)
    b.fc("dense_2", 4096)
    b.fc("dense_3", NUM_CLASSES)
    # VGG dense_1 trained weights are tiny (Glorot of 25088+4096 fan;
    # the paper's MSE scale of 1e-8 at small delta reflects that) and
    # ImageNet-trained FC heads carry outlier weights that stretch the
    # range well past the Gaussian envelope — the tail ratio is
    # calibrated against the paper's Tab. II CR-vs-delta curve.
    return b.build(weight_tail_ratios={"dense_1": 21.0})


#: 50 classes so top-5 accuracy is a meaningful metric (Fig. 10)
_PROXY_CLASSES = 50


def proxy(rng: np.random.Generator | None = None) -> Model:
    """VGG-style trainable proxy for 32x32 3-channel inputs."""
    rng = rng or np.random.default_rng(42)
    return Sequential(
        [
            ("block1_conv1", Conv2D(3, 16, 3, padding=1, rng=rng)),
            ("relu_11", ReLU()),
            ("block1_conv2", Conv2D(16, 16, 3, padding=1, rng=rng)),
            ("relu_12", ReLU()),
            ("block1_pool", MaxPool2D(2)),  # 16
            ("block2_conv1", Conv2D(16, 32, 3, padding=1, rng=rng)),
            ("relu_21", ReLU()),
            ("block2_conv2", Conv2D(32, 32, 3, padding=1, rng=rng)),
            ("relu_22", ReLU()),
            ("block2_pool", MaxPool2D(2)),  # 8
            ("block3_conv1", Conv2D(32, 48, 3, padding=1, rng=rng)),
            ("relu_31", ReLU()),
            ("block3_conv2", Conv2D(48, 48, 3, padding=1, rng=rng)),
            ("relu_32", ReLU()),
            ("block3_pool", MaxPool2D(2)),  # 4
            ("flatten", Flatten()),  # 768
            ("dense_1", Dense(768, 256, rng=rng)),
            ("relu_d1", ReLU()),
            ("drop_1", Dropout(0.3, rng=rng)),
            ("dense_2", Dense(256, 128, rng=rng)),
            ("relu_d2", ReLU()),
            ("dense_3", Dense(128, _PROXY_CLASSES, rng=rng)),
            ("softmax", Softmax()),
        ],
        name="vgg16-proxy",
    )
