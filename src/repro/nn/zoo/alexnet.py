"""AlexNet (~24 M parameters; compressed layer: ``dense_2``, FC, ~70 %).

The paper's AlexNet totals 24 M parameters with ``dense_2`` holding 70 %
of them — this pins down the variant: the *original grouped* convolution
stack (groups of 2 in conv2/4/5, as in Krizhevsky's two-GPU layout) with
a 256-feature flatten into a 4096-4096-1000 head; ``dense_2`` is the
4096x4096 matrix (16.78 M params = 69 % of 24.25 M).

The proxy is a channel-scaled variant for 28x28 synthetic-digit inputs
that keeps the five-conv + three-dense topology (so layer depth ordering
and the ``dense_2`` selection are preserved) while training in minutes.
"""

from __future__ import annotations

import numpy as np

from ..arch import ArchBuilder, ArchSpec
from ..graph import Model
from ..layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Softmax
from ..sequential import Sequential

NAME = "AlexNet"
SELECTED_LAYER = "dense_2"
DELTA_GRID = (0.0, 5.0, 10.0, 15.0, 20.0)  # paper Tab. II
INPUT_SHAPE = (3, 64, 64)
NUM_CLASSES = 1000
TOP_K = 5

#: proxy training hints (SGD momentum 0.9; BN-heavy proxies train
#: at higher rates, the small Inception proxy needs more epochs)
PROXY_LR = 0.015
PROXY_EPOCHS = 8


def full() -> ArchSpec:
    """Paper-scale architecture inventory (~24.2 M params)."""
    b = ArchBuilder("alexnet", INPUT_SHAPE)
    b.conv("conv2d_1", 96, 11, stride=4, pad=2)       # 64 -> 15
    b.pool("max_pooling2d_1", 3, 2)                   # -> 7
    b.conv("conv2d_2", 256, 5, pad=2, groups=2)       # -> 7
    b.pool("max_pooling2d_2", 3, 2)                   # -> 3
    b.conv("conv2d_3", 384, 3, pad=1)                 # -> 3
    b.conv("conv2d_4", 384, 3, pad=1, groups=2)
    b.conv("conv2d_5", 256, 3, pad=1, groups=2)
    b.pool("max_pooling2d_3", 3, 2)                   # -> 1
    b.flatten()                                       # 256
    b.fc("dense_1", 4096)
    b.fc("dense_2", 4096)
    b.fc("dense_3", NUM_CLASSES)
    # The paper's AlexNet dense_2 MSE sits near 1e-6 at delta up to 20%,
    # i.e. the trained weights of that 4096x4096 matrix are very small;
    # Glorot scale for it is sqrt(2/8192) ~ 0.0156 which matches.  The
    # tail ratio is the natural Gaussian range of a 16.8M-sample stream.
    return b.build(weight_tail_ratios={"dense_2": 11.0})


# Proxy: same topology, channels/16, for 32x32 RGB synthetic images
# (50 classes so top-5 accuracy is a meaningful metric, as in Fig. 10).
_PROXY_CLASSES = 50


def proxy(rng: np.random.Generator | None = None) -> Model:
    rng = rng or np.random.default_rng(42)
    return Sequential(
        [
            ("conv2d_1", Conv2D(3, 12, 5, stride=1, padding=2, rng=rng)),  # 32
            ("relu_1", ReLU()),
            ("max_pooling2d_1", MaxPool2D(2)),                              # 16
            ("conv2d_2", Conv2D(12, 32, 5, padding=2, rng=rng)),
            ("relu_2", ReLU()),
            ("max_pooling2d_2", MaxPool2D(2)),                              # 8
            ("conv2d_3", Conv2D(32, 48, 3, padding=1, rng=rng)),
            ("relu_3", ReLU()),
            ("conv2d_4", Conv2D(48, 48, 3, padding=1, rng=rng)),
            ("relu_4", ReLU()),
            ("conv2d_5", Conv2D(48, 32, 3, padding=1, rng=rng)),
            ("relu_5", ReLU()),
            ("max_pooling2d_3", MaxPool2D(2)),                              # 4
            ("flatten", Flatten()),                                         # 512
            ("dense_1", Dense(512, 256, rng=rng)),
            ("relu_6", ReLU()),
            ("drop_1", Dropout(0.3, rng=rng)),
            ("dense_2", Dense(256, 256, rng=rng)),
            ("relu_7", ReLU()),
            ("dense_3", Dense(256, _PROXY_CLASSES, rng=rng)),
            ("softmax", Softmax()),
        ],
        name="alexnet-proxy",
    )
