"""Inception-v3 (~23.9 M parameters; compressed layer: ``pred``, FC, ~9 %).

The canonical Szegedy et al. v3 topology for 299x299 inputs: stem,
3x Inception-A (35x35), Reduction-A, 4x Inception-B (17x17, factorized
7x7), Reduction-B, 2x Inception-C (8x8), global pooling and the
``pred`` fully connected classifier.  Every convolution is conv+BN
(no conv bias).

Branches are recorded through the linear :class:`ArchBuilder` by
rewinding the tracked shape to the block input per branch and closing
each block with a ``merge`` record carrying the concatenated shape —
the *serialization order* of layers (which is what compression and
traffic accounting consume) is preserved.

The proxy is a small stem + one A-style inception module + head on
32x32 inputs, exercising real Concat branches in the DAG executor.
"""

from __future__ import annotations

import numpy as np

from ..arch import ArchBuilder, ArchSpec
from ..graph import Model
from ..layers import (
        BatchNorm2D,
    Concat,
    Conv2D,
    Dense,
        GlobalAvgPool2D,
    MaxPool2D,
    ReLU,
    Softmax,
)

NAME = "Inception-v3"
SELECTED_LAYER = "pred"
DELTA_GRID = (0.0, 5.0, 10.0, 15.0, 20.0)  # paper Tab. II
INPUT_SHAPE = (3, 299, 299)
NUM_CLASSES = 1000
TOP_K = 5

#: proxy training hints (SGD momentum 0.9; BN-heavy proxies train
#: at higher rates, the small Inception proxy needs more epochs)
PROXY_LR = 0.05
PROXY_EPOCHS = 14


def _conv_bn(
    b: ArchBuilder, name: str, out_c: int, kernel, stride: int = 1, pad=0
) -> None:
    b.conv(name, out_c, kernel, stride=stride, pad=pad, bias=False)
    b.batchnorm(f"{name}_bn")


def _inception_a(b: ArchBuilder, idx: int, pool_proj: int) -> None:
    tag = f"mixed{idx}"
    c, h, w = b.shape
    block_in = b.shape
    _conv_bn(b, f"{tag}_b1x1", 64, 1)
    b.set_shape(block_in)
    _conv_bn(b, f"{tag}_b5x5_1", 48, 1)
    _conv_bn(b, f"{tag}_b5x5_2", 64, 5, pad=2)
    b.set_shape(block_in)
    _conv_bn(b, f"{tag}_b3x3dbl_1", 64, 1)
    _conv_bn(b, f"{tag}_b3x3dbl_2", 96, 3, pad=1)
    _conv_bn(b, f"{tag}_b3x3dbl_3", 96, 3, pad=1)
    b.set_shape(block_in)
    b.pool(f"{tag}_pool", 3, stride=1, pad=1)
    _conv_bn(b, f"{tag}_pool_proj", pool_proj, 1)
    b.merge(tag, (64 + 64 + 96 + pool_proj, h, w))


def _reduction_a(b: ArchBuilder) -> None:
    tag = "mixed3"
    c, h, w = b.shape
    block_in = b.shape
    _conv_bn(b, f"{tag}_b3x3", 384, 3, stride=2)
    out_h, out_w = b.shape[1], b.shape[2]
    b.set_shape(block_in)
    _conv_bn(b, f"{tag}_b3x3dbl_1", 64, 1)
    _conv_bn(b, f"{tag}_b3x3dbl_2", 96, 3, pad=1)
    _conv_bn(b, f"{tag}_b3x3dbl_3", 96, 3, stride=2)
    b.set_shape(block_in)
    b.pool(f"{tag}_pool", 3, stride=2)
    b.merge(tag, (384 + 96 + c, out_h, out_w))


def _inception_b(b: ArchBuilder, idx: int, c7: int) -> None:
    tag = f"mixed{idx}"
    c, h, w = b.shape
    block_in = b.shape
    _conv_bn(b, f"{tag}_b1x1", 192, 1)
    b.set_shape(block_in)
    _conv_bn(b, f"{tag}_b7x7_1", c7, 1)
    _conv_bn(b, f"{tag}_b7x7_2", c7, (1, 7), pad=(0, 3))
    _conv_bn(b, f"{tag}_b7x7_3", 192, (7, 1), pad=(3, 0))
    b.set_shape(block_in)
    _conv_bn(b, f"{tag}_b7x7dbl_1", c7, 1)
    _conv_bn(b, f"{tag}_b7x7dbl_2", c7, (7, 1), pad=(3, 0))
    _conv_bn(b, f"{tag}_b7x7dbl_3", c7, (1, 7), pad=(0, 3))
    _conv_bn(b, f"{tag}_b7x7dbl_4", c7, (7, 1), pad=(3, 0))
    _conv_bn(b, f"{tag}_b7x7dbl_5", 192, (1, 7), pad=(0, 3))
    b.set_shape(block_in)
    b.pool(f"{tag}_pool", 3, stride=1, pad=1)
    _conv_bn(b, f"{tag}_pool_proj", 192, 1)
    b.merge(tag, (192 * 4, h, w))


def _reduction_b(b: ArchBuilder) -> None:
    tag = "mixed8"
    c, h, w = b.shape
    block_in = b.shape
    _conv_bn(b, f"{tag}_b3x3_1", 192, 1)
    _conv_bn(b, f"{tag}_b3x3_2", 320, 3, stride=2)
    out_h, out_w = b.shape[1], b.shape[2]
    b.set_shape(block_in)
    _conv_bn(b, f"{tag}_b7x7x3_1", 192, 1)
    _conv_bn(b, f"{tag}_b7x7x3_2", 192, (1, 7), pad=(0, 3))
    _conv_bn(b, f"{tag}_b7x7x3_3", 192, (7, 1), pad=(3, 0))
    _conv_bn(b, f"{tag}_b7x7x3_4", 192, 3, stride=2)
    b.set_shape(block_in)
    b.pool(f"{tag}_pool", 3, stride=2)
    b.merge(tag, (320 + 192 + c, out_h, out_w))


def _inception_c(b: ArchBuilder, idx: int) -> None:
    tag = f"mixed{idx}"
    c, h, w = b.shape
    block_in = b.shape
    _conv_bn(b, f"{tag}_b1x1", 320, 1)
    b.set_shape(block_in)
    _conv_bn(b, f"{tag}_b3x3_1", 384, 1)
    _conv_bn(b, f"{tag}_b3x3_2a", 384, (1, 3), pad=(0, 1))
    b.set_shape((384, h, w))
    _conv_bn(b, f"{tag}_b3x3_2b", 384, (3, 1), pad=(1, 0))
    b.set_shape(block_in)
    _conv_bn(b, f"{tag}_b3x3dbl_1", 448, 1)
    _conv_bn(b, f"{tag}_b3x3dbl_2", 384, 3, pad=1)
    _conv_bn(b, f"{tag}_b3x3dbl_3a", 384, (1, 3), pad=(0, 1))
    b.set_shape((384, h, w))
    _conv_bn(b, f"{tag}_b3x3dbl_3b", 384, (3, 1), pad=(1, 0))
    b.set_shape(block_in)
    b.pool(f"{tag}_pool", 3, stride=1, pad=1)
    _conv_bn(b, f"{tag}_pool_proj", 192, 1)
    b.merge(tag, (320 + 768 + 768 + 192, h, w))


def full() -> ArchSpec:
    """Paper-scale architecture inventory (~23.9 M params)."""
    b = ArchBuilder("inception_v3", INPUT_SHAPE)
    _conv_bn(b, "conv2d_1", 32, 3, stride=2)   # 149
    _conv_bn(b, "conv2d_2", 32, 3)             # 147
    _conv_bn(b, "conv2d_3", 64, 3, pad=1)      # 147
    b.pool("max_pool_1", 3, 2)                 # 73
    _conv_bn(b, "conv2d_4", 80, 1)
    _conv_bn(b, "conv2d_5", 192, 3)            # 71
    b.pool("max_pool_2", 3, 2)                 # 35
    _inception_a(b, 0, pool_proj=32)           # 256
    _inception_a(b, 1, pool_proj=64)           # 288
    _inception_a(b, 2, pool_proj=64)           # 288
    _reduction_a(b)                            # 768 @ 17
    for idx, c7 in zip((4, 5, 6, 7), (128, 160, 160, 192)):
        _inception_b(b, idx, c7)
    _reduction_b(b)                            # 1280 @ 8
    _inception_c(b, 9)                         # 2048
    _inception_c(b, 10)
    b.global_pool("avg_pool")
    b.fc("pred", NUM_CLASSES)
    # ImageNet-trained classifier head: weight-range tail calibrated
    # against the paper's Tab. II CR-vs-delta curve
    return b.build(weight_tail_ratios={"pred": 11.0})


#: 50 classes so top-5 accuracy is a meaningful metric (Fig. 10)
_PROXY_CLASSES = 50


def proxy(rng: np.random.Generator | None = None) -> Model:
    """Stem + one Inception-A module + head, for 32x32 inputs."""
    rng = rng or np.random.default_rng(42)
    m = Model(name="inception_v3-proxy")
    m.add(Conv2D(3, 24, 3, padding=1, bias=False, rng=rng), name="conv2d_1")
    m.add(BatchNorm2D(24), name="conv2d_1_bn")
    m.add(ReLU(), name="conv2d_1_relu")
    m.add(MaxPool2D(2), name="stem_pool")  # 16x16
    stem = m.add(Conv2D(24, 48, 3, padding=1, bias=False, rng=rng), name="conv2d_2")
    m.add(BatchNorm2D(48), name="conv2d_2_bn")
    stem_out = m.add(ReLU(), name="conv2d_2_relu")
    # Inception-A style branches off stem_out
    b1 = m.add(Conv2D(48, 24, 1, rng=rng), inputs=stem_out, name="mixed0_b1x1")
    b1 = m.add(ReLU(), inputs=b1, name="mixed0_b1x1_relu")
    b2 = m.add(Conv2D(48, 16, 1, rng=rng), inputs=stem_out, name="mixed0_b5x5_1")
    b2 = m.add(ReLU(), inputs=b2, name="mixed0_b5x5_1_relu")
    b2 = m.add(Conv2D(16, 24, 5, padding=2, rng=rng), inputs=b2, name="mixed0_b5x5_2")
    b2 = m.add(ReLU(), inputs=b2, name="mixed0_b5x5_2_relu")
    b3 = m.add(Conv2D(48, 24, 1, rng=rng), inputs=stem_out, name="mixed0_b3x3dbl_1")
    b3 = m.add(ReLU(), inputs=b3, name="mixed0_b3x3dbl_1_relu")
    b3 = m.add(Conv2D(24, 32, 3, padding=1, rng=rng), inputs=b3, name="mixed0_b3x3dbl_2")
    b3 = m.add(ReLU(), inputs=b3, name="mixed0_b3x3dbl_2_relu")
    mixed = m.add(Concat(), inputs=[b1, b2, b3], name="mixed0")  # 80 ch
    m.add(MaxPool2D(2), inputs=mixed, name="mixed_pool")  # 8x8
    m.add(GlobalAvgPool2D(), name="avg_pool")
    m.add(Dense(80, 96, rng=rng), name="dense_aux")
    m.add(ReLU(), name="dense_aux_relu")
    m.add(Dense(96, _PROXY_CLASSES, rng=rng), name="pred")
    m.add(Softmax(), name="softmax")
    return m
