"""MobileNet v1 (~4.25 M parameters; compressed layer: ``conv_preds``).

The 1.0-width, 224-input MobileNet: a 3x3 stem conv followed by 13
depthwise-separable blocks (depthwise 3x3 + pointwise 1x1, each with
batch norm), global average pooling and the ``conv_preds`` 1x1
convolution producing the 1000 class logits.  ``conv_preds`` holds ~24 %
of the parameters (the paper quotes 19 %, counting conventions differ
slightly); the weighted CR stays below 2 for exactly the reason the
paper gives — MobileNet's parameters are spread across many small
layers.

The proxy is a width-scaled variant (stem 8, up to 64 channels) on
32x32 inputs using real depthwise convolutions.
"""

from __future__ import annotations

import numpy as np

from ..arch import ArchBuilder, ArchSpec
from ..graph import Model
from ..layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    DepthwiseConv2D,
        GlobalAvgPool2D,
    ReLU,
    Softmax,
)
from ..sequential import Sequential

NAME = "MobileNet"
SELECTED_LAYER = "conv_preds"
DELTA_GRID = (0.0, 2.0, 4.0, 6.0, 8.0)  # paper Tab. II
INPUT_SHAPE = (3, 224, 224)
NUM_CLASSES = 1000
TOP_K = 5

#: proxy training hints (SGD momentum 0.9; BN-heavy proxies train
#: at higher rates, the small Inception proxy needs more epochs)
PROXY_LR = 0.2
PROXY_EPOCHS = 8

#: (pointwise out-channels, depthwise stride) for the 13 blocks
_BLOCKS = [
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
]


def full() -> ArchSpec:
    """Paper-scale architecture inventory (~4.26 M params)."""
    b = ArchBuilder("mobilenet", INPUT_SHAPE)
    b.conv("conv1", 32, 3, stride=2, pad=1, bias=False)
    b.batchnorm("conv1_bn")
    for i, (out_c, stride) in enumerate(_BLOCKS, start=1):
        b.dwconv(f"conv_dw_{i}", 3, stride=stride, pad=1)
        b.batchnorm(f"conv_dw_{i}_bn")
        b.conv(f"conv_pw_{i}", out_c, 1, bias=False)
        b.batchnorm(f"conv_pw_{i}_bn")
    b.global_pool("global_average_pooling2d")
    b.set_shape((1024, 1, 1))  # Keras reshapes the pooled vector for conv_preds
    b.conv("conv_preds", NUM_CLASSES, 1, bias=True)
    # ImageNet-trained classifier head: heavy-tailed weight range
    # (calibrated against the paper's Tab. II CR-vs-delta curve)
    return b.build(weight_tail_ratios={"conv_preds": 19.0})


#: 50 classes so top-5 accuracy is a meaningful metric (Fig. 10)
_PROXY_CLASSES = 50
_PROXY_BLOCKS = [(24, 1), (40, 2), (40, 1), (64, 2), (64, 1), (96, 2), (96, 1)]


def proxy(rng: np.random.Generator | None = None) -> Model:
    """Depthwise-separable trainable proxy for 32x32 3-channel inputs."""
    rng = rng or np.random.default_rng(42)
    layers: list[tuple[str, object]] = [
        ("conv1", Conv2D(3, 16, 3, stride=1, padding=1, bias=False, rng=rng)),
        ("conv1_bn", BatchNorm2D(16)),
        ("conv1_relu", ReLU()),
    ]
    in_c = 16
    for i, (out_c, stride) in enumerate(_PROXY_BLOCKS, start=1):
        layers += [
            (f"conv_dw_{i}", DepthwiseConv2D(in_c, 3, stride=stride, padding=1, bias=False, rng=rng)),
            (f"conv_dw_{i}_bn", BatchNorm2D(in_c)),
            (f"conv_dw_{i}_relu", ReLU()),
            (f"conv_pw_{i}", Conv2D(in_c, out_c, 1, bias=False, rng=rng)),
            (f"conv_pw_{i}_bn", BatchNorm2D(out_c)),
            (f"conv_pw_{i}_relu", ReLU()),
        ]
        in_c = out_c
    layers += [
        ("global_pool", GlobalAvgPool2D()),
        ("conv_preds", Dense(in_c, _PROXY_CLASSES, rng=rng)),
        ("softmax", Softmax()),
    ]
    return Sequential(layers, name="mobilenet-proxy")
