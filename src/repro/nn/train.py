"""Training loop and accuracy evaluation (top-1 / top-5).

The paper reports top-5 accuracy for the ImageNet-class models and top-1
for LeNet-5 (10 classes); :func:`evaluate` computes both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Model
from .losses import SoftmaxCrossEntropy
from .optim import SGD

__all__ = ["TrainConfig", "EvalResult", "evaluate", "topk_accuracy", "train"]


@dataclass(frozen=True)
class TrainConfig:
    epochs: int = 5
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    shuffle_seed: int = 0
    verbose: bool = False


@dataclass(frozen=True)
class EvalResult:
    top1: float
    top5: float
    n: int

    def __str__(self) -> str:
        return f"top1={self.top1:.4f} top5={self.top5:.4f} (n={self.n})"


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Fraction of samples whose label is among the k largest logits."""
    if logits.shape[0] == 0:
        return 0.0
    k = min(k, logits.shape[1])
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    return float((topk == labels[:, None]).any(axis=1).mean())


def evaluate(model: Model, x: np.ndarray, y: np.ndarray, batch_size: int = 128) -> EvalResult:
    logits = model.predict(x, batch_size=batch_size)
    return EvalResult(
        top1=topk_accuracy(logits, y, 1),
        top5=topk_accuracy(logits, y, 5),
        n=len(y),
    )


def train(
    model: Model,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig | None = None,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
) -> list[float]:
    """Train with SGD + softmax cross-entropy; returns per-epoch losses."""
    config = config if config is not None else TrainConfig()
    loss_fn = SoftmaxCrossEntropy()
    opt = SGD(
        model.params(),
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    rng = np.random.default_rng(config.shuffle_seed)
    losses = []
    n = len(x)
    for epoch in range(config.epochs):
        order = rng.permutation(n)
        epoch_loss, batches = 0.0, 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            opt.zero_grad()
            logits = model.forward(x[idx], training=True)
            loss = loss_fn.forward(logits, y[idx])
            model.backward(loss_fn.backward())
            opt.step()
            epoch_loss += loss
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
        if config.verbose:  # pragma: no cover - console feedback only
            msg = f"epoch {epoch + 1}/{config.epochs}: loss={losses[-1]:.4f}"
            if x_val is not None and y_val is not None:
                msg += f" val: {evaluate(model, x_val, y_val)}"
            print(msg)
    return losses
