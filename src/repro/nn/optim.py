"""Optimizers and learning-rate schedules."""

from __future__ import annotations

import numpy as np

from .layers.base import Parameter

__all__ = ["SGD", "StepLR"]


class SGD:
    """Stochastic gradient descent with classical momentum and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity[i]
                v = self.momentum * v + g if v is not None else g.copy()
                self._velocity[i] = v
                g = v
            p.data -= self.lr * g

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class StepLR:
    """Multiply the optimizer LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
