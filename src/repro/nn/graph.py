"""DAG model container.

A :class:`Model` is a directed acyclic graph of named layers.  Nodes are
added in topological order (each node's inputs must already exist),
which makes forward a single in-order sweep and backward the reverse
sweep with gradient accumulation at fan-out points.  The special input
name ``"input"`` denotes the model input.

Residual (ResNet) and branchy (Inception) topologies are expressed with
the :class:`repro.nn.layers.Add` / :class:`~repro.nn.layers.Concat`
merge layers, which take a list of upstream node names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .layers.base import Layer, MergeLayer, Parameter

__all__ = ["Model", "Node"]

INPUT = "input"


@dataclass
class Node:
    name: str
    layer: Layer
    inputs: list[str]
    #: populated during forward
    output: np.ndarray | None = field(default=None, repr=False)


class Model:
    """A named-node DAG of layers with forward/backward execution."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._order: list[str] = []
        self._outputs: list[str] = []

    # -- construction ----------------------------------------------------
    def add(
        self,
        layer: Layer,
        inputs: str | list[str] = "",
        name: str | None = None,
    ) -> str:
        """Append a layer; returns the node name.

        ``inputs`` defaults to the previously added node (or the model
        input for the first node).  Merge layers require an explicit list
        of input names.
        """
        if name is None:
            name = f"{type(layer).__name__.lower()}_{len(self._order)}"
        if name in self._nodes or name == INPUT:
            raise ValueError(f"duplicate node name: {name!r}")
        if inputs == "":
            inputs = [self._order[-1]] if self._order else [INPUT]
        elif isinstance(inputs, str):
            inputs = [inputs]
        for src in inputs:
            if src != INPUT and src not in self._nodes:
                raise ValueError(f"unknown input node {src!r} for {name!r}")
        if isinstance(layer, MergeLayer) and len(inputs) < 2:
            raise ValueError(f"merge layer {name!r} needs >= 2 inputs")
        if not isinstance(layer, MergeLayer) and len(inputs) != 1:
            raise ValueError(f"layer {name!r} takes exactly one input")
        if not layer.name:
            layer.name = name
        self._nodes[name] = Node(name=name, layer=layer, inputs=list(inputs))
        self._order.append(name)
        return name

    # -- introspection ----------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __getitem__(self, name: str) -> Layer:
        return self._nodes[name].layer

    @property
    def node_names(self) -> list[str]:
        return list(self._order)

    def layers(self) -> list[Layer]:
        return [self._nodes[n].layer for n in self._order]

    def params(self) -> list[Parameter]:
        return [p for layer in self.layers() for p in layer.params()]

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.params())

    def parametric_layers(self) -> list[tuple[str, Layer]]:
        """(name, layer) for layers with trainable weights, in depth order."""
        return [
            (n, self._nodes[n].layer)
            for n in self._order
            if self._nodes[n].layer.params()
        ]

    def state_dict(self) -> dict[str, np.ndarray]:
        """All model state: trainable parameters *and* buffers.

        Use this (not :meth:`params` alone) for checkpointing — layers
        like batch norm carry running statistics that inference depends
        on but training does not update through gradients.
        """
        out: dict[str, np.ndarray] = {}
        for name in self._order:
            layer = self._nodes[name].layer
            for i, p in enumerate(layer.params()):
                out[f"{name}.param{i}"] = p.data
            for key, arr in layer.buffers().items():
                out[f"{name}.buffer.{key}"] = arr
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`state_dict`; strict on keys and shapes."""
        expected = self.state_dict()
        if set(state) != set(expected):
            missing = set(expected) - set(state)
            extra = set(state) - set(expected)
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)[:3]}, "
                f"unexpected={sorted(extra)[:3]}"
            )
        for name in self._order:
            layer = self._nodes[name].layer
            for i, p in enumerate(layer.params()):
                arr = np.asarray(state[f"{name}.param{i}"], dtype=np.float32)
                if arr.shape != p.data.shape:
                    raise ValueError(
                        f"{name}.param{i}: shape {arr.shape} != {p.data.shape}"
                    )
                p.data = arr
            for key in layer.buffers():
                arr = np.asarray(state[f"{name}.buffer.{key}"], dtype=np.float32)
                if arr.shape != getattr(layer, key).shape:
                    raise ValueError(f"{name}.buffer.{key}: shape mismatch")
                setattr(layer, key, arr)

    def get_weights(self, node_name: str) -> np.ndarray:
        """The weight tensor (not bias) of a parametric layer."""
        layer = self._nodes[node_name].layer
        ps = layer.params()
        if not ps:
            raise ValueError(f"layer {node_name!r} has no parameters")
        return ps[0].data

    def set_weights(self, node_name: str, weights: np.ndarray) -> None:
        layer = self._nodes[node_name].layer
        ps = layer.params()
        if not ps:
            raise ValueError(f"layer {node_name!r} has no parameters")
        if ps[0].data.shape != weights.shape:
            raise ValueError(
                f"shape mismatch for {node_name!r}: "
                f"{ps[0].data.shape} vs {weights.shape}"
            )
        ps[0].data = np.asarray(weights, dtype=np.float32)

    # -- execution ---------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        acts: dict[str, np.ndarray] = {INPUT: np.asarray(x, dtype=np.float32)}
        for name in self._order:
            node = self._nodes[name]
            layer = node.layer
            if training and getattr(layer, "is_output_activation", False):
                # softmax is fused into the loss during training
                acts[name] = acts[node.inputs[0]]
                continue
            if isinstance(layer, MergeLayer):
                out = layer.forward([acts[i] for i in node.inputs], training=training)
            else:
                out = layer.forward(acts[node.inputs[0]], training=training)
            acts[name] = out
        self._acts = acts if training else None
        return acts[self._order[-1]]

    def backward(self, dloss: np.ndarray) -> np.ndarray:
        """Back-propagate from the last node; returns d(input)."""
        grads: dict[str, np.ndarray] = {self._order[-1]: dloss}
        for name in reversed(self._order):
            node = self._nodes[name]
            layer = node.layer
            g = grads.pop(name, None)
            if g is None:
                raise RuntimeError(f"no gradient reached node {name!r}")
            if getattr(layer, "is_output_activation", False):
                din = [g]
            elif isinstance(layer, MergeLayer):
                din = layer.backward(g)
            else:
                din = [layer.backward(g)]
            for src, gi in zip(node.inputs, din):
                if src in grads:
                    grads[src] = grads[src] + gi
                else:
                    grads[src] = gi
        return grads[INPUT]

    def forward_streamed(
        self, x: np.ndarray, weight_providers: dict
    ) -> np.ndarray:
        """Inference forward with per-layer fused streamed weights.

        ``weight_providers`` maps node names to
        :class:`~repro.core.provider.WeightProvider` instances; those
        nodes consume their weights tile-by-tile through the fused
        decode+MAC path (``layer.forward(weight_provider=...)``) while
        every other node runs the classic materialized forward.  This
        is the serving path: the provider decides whether tiles come
        from a hot decoded-weight cache or a streaming decode, and the
        layer's stored weights are never read for provided nodes.
        """
        unknown = set(weight_providers) - set(self._nodes)
        if unknown:
            raise ValueError(
                f"weight providers for unknown nodes: {sorted(unknown)}"
            )
        acts: dict[str, np.ndarray] = {INPUT: np.asarray(x, dtype=np.float32)}
        for name in self._order:
            node = self._nodes[name]
            layer = node.layer
            provider = weight_providers.get(name)
            if isinstance(layer, MergeLayer):
                if provider is not None:
                    raise ValueError(f"merge layer {name!r} takes no weights")
                acts[name] = layer.forward([acts[i] for i in node.inputs])
            elif provider is not None:
                acts[name] = layer.forward(
                    acts[node.inputs[0]], weight_provider=provider
                )
            else:
                acts[name] = layer.forward(acts[node.inputs[0]])
        return acts[self._order[-1]]

    def forward_traced(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Inference forward that also returns every node's activation.

        Used by the activation-compression analysis; unlike the
        training-mode cache this returns a plain name->array mapping.
        """
        acts: dict[str, np.ndarray] = {INPUT: np.asarray(x, dtype=np.float32)}
        for name in self._order:
            node = self._nodes[name]
            layer = node.layer
            if isinstance(layer, MergeLayer):
                acts[name] = layer.forward([acts[i] for i in node.inputs])
            else:
                acts[name] = layer.forward(acts[node.inputs[0]])
        out = acts.pop(INPUT)  # callers index by node name only
        return acts[self._order[-1]], acts

    def forward_transformed(
        self, x: np.ndarray, transform
    ) -> np.ndarray:
        """Forward pass with ``transform(name, activation)`` applied to
        every node output before it feeds downstream nodes.

        This is how approximate-activation studies inject lossy
        activation codecs into inference without touching the layers.
        """
        acts: dict[str, np.ndarray] = {INPUT: np.asarray(x, dtype=np.float32)}
        for name in self._order:
            node = self._nodes[name]
            layer = node.layer
            if isinstance(layer, MergeLayer):
                out = layer.forward([acts[i] for i in node.inputs])
            else:
                out = layer.forward(acts[node.inputs[0]])
            acts[name] = transform(name, out)
        return acts[self._order[-1]]

    def predict(self, x: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Batched inference."""
        outs = [
            self.forward(x[i : i + batch_size])
            for i in range(0, len(x), batch_size)
        ]
        return np.concatenate(outs, axis=0)

    def zero_grad(self) -> None:
        for p in self.params():
            p.zero_grad()

    def summary(self) -> str:
        lines = [f"Model {self.name!r}: {self.num_params:,} params"]
        for name in self._order:
            node = self._nodes[name]
            lines.append(
                f"  {name:<24} {type(node.layer).__name__:<16} "
                f"params={node.layer.num_params:>10,}  <- {','.join(node.inputs)}"
            )
        return "\n".join(lines)
