"""Array plumbing for the NumPy CNN framework.

Layout convention: activations are NCHW (batch, channels, height, width),
convolution kernels are OIHW (out-channels, in-channels, kh, kw).

The convolution layers are built on :func:`im2col` / :func:`col2im`,
turning convolutions into one large GEMM — the standard way to make a
pure-NumPy CNN fast enough to train (the GEMM runs in BLAS).
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv_out_size", "pad_nchw", "im2col", "col2im"]


def conv_out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window sweep."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size for input={size}, kernel={kernel}, "
            f"stride={stride}, pad={pad}"
        )
    return out


def pad_nchw(x: np.ndarray, pad_h: int, pad_w: int) -> np.ndarray:
    """Zero-pad the two spatial dims of an NCHW tensor."""
    if pad_h == 0 and pad_w == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)))


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Unfold sliding windows of an NCHW tensor into GEMM columns.

    Returns ``(cols, oh, ow)`` where ``cols`` has shape
    ``(N * oh * ow, C * kh * kw)``: one row per output pixel, one column
    per kernel tap.  Built from a strided view, so the only copy is the
    final ``reshape``.
    """
    n, c, h, w = x.shape
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    xp = pad_nchw(x, pad, pad)
    sn, sc, sh, sw = xp.strides
    view = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, kh, kw, oh, ow),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    # (N, oh, ow, C, kh, kw) -> rows ordered by output pixel
    cols = view.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold GEMM columns back into an NCHW tensor (adjoint of im2col).

    Overlapping window contributions are *summed*, which is exactly the
    gradient of the unfold — used by the convolution backward pass.
    """
    n, c, h, w = x_shape
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    xp = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            xp[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j]
    if pad == 0:
        return xp
    return xp[:, :, pad : pad + h, pad : pad + w]
