"""Sequential model convenience wrapper."""

from __future__ import annotations

from .graph import Model
from .layers.base import Layer

__all__ = ["Sequential"]


def Sequential(layers: list[tuple[str, Layer]] | list[Layer], name: str = "model") -> Model:
    """Build a :class:`Model` from a linear chain of layers.

    Accepts either bare layers (auto-named) or ``(name, layer)`` pairs —
    named layers are what the paper's layer-selection policy refers to
    (e.g. ``dense_1`` in LeNet-5).
    """
    model = Model(name=name)
    for item in layers:
        if isinstance(item, tuple):
            node_name, layer = item
            model.add(layer, name=node_name)
        else:
            model.add(item)
    return model
