"""Loss functions."""

from __future__ import annotations

import numpy as np

from .layers.activations import softmax

__all__ = ["SoftmaxCrossEntropy"]


class SoftmaxCrossEntropy:
    """Fused softmax + cross-entropy on integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient
    w.r.t. the logits (``(p - onehot) / N``), the numerically stable
    fused form.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"expected (N, classes) logits, got {logits.shape}")
        labels = np.asarray(labels)
        if labels.shape != (logits.shape[0],):
            raise ValueError("labels must be a 1-D int array matching the batch")
        p = softmax(logits, axis=1)
        self._probs, self._labels = p, labels
        eps = np.finfo(np.float32).tiny
        nll = -np.log(p[np.arange(len(labels)), labels] + eps)
        return float(nll.mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        g = self._probs.copy()
        g[np.arange(len(self._labels)), self._labels] -= 1.0
        return (g / len(self._labels)).astype(np.float32)
