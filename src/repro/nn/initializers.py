"""Weight initializers and "trained-like" weight samplers.

Two distinct needs:

* **Training proxies** use the classical fan-based initializers
  (:func:`glorot_uniform`, :func:`he_normal`, :func:`lecun_normal`).

* **Full-scale paper models** are never trained here (no ImageNet, no
  GPU); their weights are *sampled* to match the statistics of trained
  networks, because every full-model metric we reproduce (compression
  ratio, entropy, MSE, traffic volume) depends only on the weight-stream
  statistics.  Trained CNN weights are well described by a zero-mean
  heavy-tailed unimodal distribution — near-Gaussian with excess
  kurtosis, std ~ the initializer scale shrunk by weight decay
  (:func:`trained_like`).  The paper's own Fig. 3 makes the same point:
  byte-entropy of trained weights is indistinguishable from random data.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "fans",
    "glorot_uniform",
    "he_normal",
    "lecun_normal",
    "trained_like",
]


def fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """(fan_in, fan_out) for dense ``(in, out)`` or conv ``OIHW`` shapes."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def glorot_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = fans(tuple(shape))
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(shape, rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = fans(tuple(shape))
    std = np.sqrt(2.0 / fan_in)
    return (rng.normal(0.0, std, size=shape)).astype(np.float32)


def lecun_normal(shape, rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = fans(tuple(shape))
    std = np.sqrt(1.0 / fan_in)
    return (rng.normal(0.0, std, size=shape)).astype(np.float32)


def trained_like(
    shape,
    rng: np.random.Generator,
    scale: float = 1.0,
    tail_ratio: float | None = None,
) -> np.ndarray:
    """Sample weights with trained-network statistics.

    The bulk is Gaussian at the Glorot scale of the layer (shrunk by a
    factor standing in for weight decay, times ``scale``) plus a small
    wide component for the mild leptokurtosis of trained weights.

    ``tail_ratio`` sets the target range/std of the stream.  Trained
    MNIST-class models show near-Gaussian ranges (the default), while
    ImageNet-trained classifiers (VGG/ResNet/MobileNet heads) carry a
    handful of large outlier weights that stretch the range to 15-30x
    the std.  Because the paper's tolerance delta is a *percentage of
    the range*, this single statistic controls how fast the compression
    ratio grows with delta — it is calibrated per model against the
    paper's Tab. II (see the zoo modules).
    """
    shape = tuple(shape)
    fan_in, fan_out = fans(shape)
    base_std = np.float32(scale * np.sqrt(2.0 / (fan_in + fan_out)) * 0.8)
    n = int(np.prod(shape))
    # float32 generation end to end: the largest layer in the evaluation
    # is 102.8M weights and float64 staging would cost ~0.9 GB
    w = rng.standard_normal(n, dtype=np.float32)
    w *= base_std
    wide = rng.random(n) < 0.05
    n_wide = int(wide.sum())
    w[wide] = rng.standard_normal(n_wide, dtype=np.float32) * np.float32(1.8 * base_std)
    if tail_ratio is not None and n >= 16:
        if tail_ratio <= 0:
            raise ValueError(f"tail_ratio must be positive, got {tail_ratio}")
        # make the ratio authoritative: clip anything beyond the target
        # envelope (touches a vanishing fraction of the bulk), then pin a
        # few weights at the envelope so the range is exactly 2 * half
        half = np.float32(tail_ratio / 2.0 * float(w.std()))
        np.clip(w, -half, half, out=w)
        k = max(2, n // 500_000)
        idx = rng.choice(n, size=2 * k, replace=False)
        w[idx[:k]] = half
        w[idx[k:]] = -half
    return w.reshape(shape)
