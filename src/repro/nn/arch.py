"""Architecture specifications for the full-scale paper models.

The six networks of the paper's evaluation range from 62 k to 138 M
parameters.  Training them is impossible here (no ImageNet, no GPU), and
*not needed*: every full-model metric we reproduce — compression ratio,
weighted CR, entropy, MSE, traffic volume, MACs — depends only on layer
*shapes*, *parameter counts* and *weight statistics*.  So full models
are represented by an :class:`ArchSpec`: an ordered inventory of
:class:`LayerSpec` records (shapes, MACs, traffic volumes), plus
deterministic per-layer materialization of trained-like weights
(:meth:`ArchSpec.materialize`).  This keeps a 138 M-parameter VGG-16
representable in a few kilobytes until a specific layer's weights are
actually needed.

Accuracy studies use the trainable *proxy* models built by the same zoo
modules (see ``repro.nn.zoo``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from .initializers import trained_like
from .tensor import conv_out_size

__all__ = ["LayerKind", "LayerSpec", "ArchSpec", "ArchBuilder"]


class LayerKind(str, Enum):
    CONV = "CONV"
    DWCONV = "DWCONV"
    FC = "FC"
    POOL = "POOL"
    GLOBALPOOL = "GLOBALPOOL"
    NORM = "NORM"
    ACT = "ACT"
    FLATTEN = "FLATTEN"
    MERGE = "MERGE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: kinds that own a weight tensor eligible for compression
PARAMETRIC = {LayerKind.CONV, LayerKind.DWCONV, LayerKind.FC}


@dataclass(frozen=True)
class LayerSpec:
    """Shape/cost record for one layer of a full-scale model."""

    name: str
    kind: LayerKind
    in_shape: tuple[int, ...]
    out_shape: tuple[int, ...]
    weight_shape: tuple[int, ...] = ()
    bias_params: int = 0
    macs: int = 0
    #: index among parametric layers (0 = closest to the input); -1 for
    #: non-parametric layers
    depth: int = -1

    @property
    def weight_params(self) -> int:
        return int(np.prod(self.weight_shape)) if self.weight_shape else 0

    @property
    def params(self) -> int:
        return self.weight_params + self.bias_params

    @property
    def in_activations(self) -> int:
        return int(np.prod(self.in_shape))

    @property
    def out_activations(self) -> int:
        return int(np.prod(self.out_shape))


@dataclass
class ArchSpec:
    """Full-model layer inventory with weight materialization."""

    name: str
    input_shape: tuple[int, ...]
    layers: list[LayerSpec] = field(default_factory=list)
    #: per-layer std multiplier for trained-like sampling (weights of
    #: deeper FC layers in trained nets tend to be smaller)
    weight_scales: dict[str, float] = field(default_factory=dict)
    #: per-layer range/std target of the sampled stream (see
    #: :func:`repro.nn.initializers.trained_like`); absent = natural
    weight_tail_ratios: dict[str, float] = field(default_factory=dict)

    @property
    def total_params(self) -> int:
        return sum(layer.params for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    def parametric_layers(self) -> list[LayerSpec]:
        return [l for l in self.layers if l.kind in PARAMETRIC]

    def layer(self, name: str) -> LayerSpec:
        for l in self.layers:
            if l.name == name:
                return l
        raise KeyError(f"{self.name} has no layer named {name!r}")

    def _layer_seed(self, name: str, seed: int) -> int:
        digest = hashlib.sha256(f"{self.name}/{name}/{seed}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def materialize(self, name: str, seed: int = 0) -> np.ndarray:
        """Deterministically sample trained-like weights for one layer.

        The same ``(model, layer, seed)`` always yields the same tensor,
        so experiments can re-materialize a layer instead of keeping
        hundreds of megabytes alive.
        """
        spec = self.layer(name)
        if spec.kind not in PARAMETRIC:
            raise ValueError(f"layer {name!r} ({spec.kind}) has no weights")
        rng = np.random.default_rng(self._layer_seed(name, seed))
        return trained_like(
            spec.weight_shape,
            rng,
            scale=self.weight_scales.get(name, 1.0),
            tail_ratio=self.weight_tail_ratios.get(name),
        )


class ArchBuilder:
    """Incremental builder tracking the activation shape through the net.

    Only the layers that matter for traffic/compression accounting are
    recorded (conv / fc / pool / norm / merge); element-wise activations
    are free in the paper's accounting and are omitted.
    """

    def __init__(self, name: str, input_shape: tuple[int, ...]) -> None:
        self.name = name
        self.input_shape = tuple(input_shape)
        self._shape: tuple[int, ...] = tuple(input_shape)
        self._layers: list[LayerSpec] = []
        self._depth = 0

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    def _add(self, spec: LayerSpec) -> None:
        self._layers.append(spec)
        self._shape = spec.out_shape

    def conv(
        self,
        name: str,
        out_channels: int,
        kernel: int | tuple[int, int],
        stride: int = 1,
        pad: int | str | tuple[int, int] = 0,
        bias: bool = True,
        groups: int = 1,
    ) -> "ArchBuilder":
        c, h, w = self._shape
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        if pad == "same":
            ph, pw = kh // 2, kw // 2
        elif isinstance(pad, tuple):
            ph, pw = pad
        else:
            ph = pw = int(pad)
        if c % groups or out_channels % groups:
            raise ValueError(f"{name}: channels not divisible by groups={groups}")
        oh = conv_out_size(h, kh, stride, ph)
        ow = conv_out_size(w, kw, stride, pw)
        self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.CONV,
                in_shape=self._shape,
                out_shape=(out_channels, oh, ow),
                weight_shape=(out_channels, c // groups, kh, kw),
                bias_params=out_channels if bias else 0,
                macs=oh * ow * out_channels * (c // groups) * kh * kw,
                depth=self._depth,
            )
        )
        self._depth += 1
        return self

    def dwconv(
        self,
        name: str,
        kernel: int,
        stride: int = 1,
        pad: int | str = 0,
        bias: bool = False,
    ) -> "ArchBuilder":
        c, h, w = self._shape
        if pad == "same":
            pad = kernel // 2
        oh = conv_out_size(h, kernel, stride, int(pad))
        ow = conv_out_size(w, kernel, stride, int(pad))
        self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.DWCONV,
                in_shape=self._shape,
                out_shape=(c, oh, ow),
                weight_shape=(c, 1, kernel, kernel),
                bias_params=c if bias else 0,
                macs=oh * ow * c * kernel * kernel,
                depth=self._depth,
            )
        )
        self._depth += 1
        return self

    def pool(
        self, name: str, kernel: int, stride: int | None = None, pad: int = 0
    ) -> "ArchBuilder":
        c, h, w = self._shape
        stride = stride if stride is not None else kernel
        oh = conv_out_size(h, kernel, stride, pad)
        ow = conv_out_size(w, kernel, stride, pad)
        self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.POOL,
                in_shape=self._shape,
                out_shape=(c, oh, ow),
            )
        )
        return self

    def global_pool(self, name: str) -> "ArchBuilder":
        c, _, _ = self._shape
        self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.GLOBALPOOL,
                in_shape=self._shape,
                out_shape=(c,),
            )
        )
        return self

    def batchnorm(self, name: str) -> "ArchBuilder":
        c = self._shape[0]
        self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.NORM,
                in_shape=self._shape,
                out_shape=self._shape,
                bias_params=2 * c,  # gamma + beta (running stats are buffers)
            )
        )
        return self

    def flatten(self, name: str = "flatten") -> "ArchBuilder":
        n = int(np.prod(self._shape))
        self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.FLATTEN,
                in_shape=self._shape,
                out_shape=(n,),
            )
        )
        return self

    def fc(self, name: str, out_features: int, bias: bool = True) -> "ArchBuilder":
        if len(self._shape) != 1:
            raise ValueError(f"fc after shape {self._shape}; flatten first")
        (in_features,) = self._shape
        self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.FC,
                in_shape=self._shape,
                out_shape=(out_features,),
                weight_shape=(in_features, out_features),
                bias_params=out_features if bias else 0,
                macs=in_features * out_features,
                depth=self._depth,
            )
        )
        self._depth += 1
        return self

    def set_shape(self, shape: tuple[int, ...]) -> "ArchBuilder":
        """Override the tracked shape (after out-of-band branch math)."""
        self._shape = tuple(shape)
        return self

    def merge(self, name: str, out_shape: tuple[int, ...]) -> "ArchBuilder":
        """Record a branch-join point (concat/add) with its output shape."""
        self._add(
            LayerSpec(
                name=name,
                kind=LayerKind.MERGE,
                in_shape=self._shape,
                out_shape=tuple(out_shape),
            )
        )
        return self

    def build(
        self,
        weight_scales: dict[str, float] | None = None,
        weight_tail_ratios: dict[str, float] | None = None,
    ) -> ArchSpec:
        return ArchSpec(
            name=self.name,
            input_shape=self.input_shape,
            layers=list(self._layers),
            weight_scales=dict(weight_scales or {}),
            weight_tail_ratios=dict(weight_tail_ratios or {}),
        )
