"""Cycle-accurate NoC simulation loop.

``NocSimulator`` owns the mesh, one NIC per node, and the attached node
models (PEs and memory interfaces).  Each cycle:

1. every node model steps (may enqueue new packets on its NIC);
2. every NIC pushes at most one flit into its router's local input;
3. every router plans its switch allocation (two-phase: all plans are
   computed against the cycle-start state, then committed), moving one
   flit per output port — to a neighbor's input buffer, or to the local
   NIC for ejection;
4. credits consumed by forwarded flits are returned upstream.

The loop ends when every node reports idle and no flit is in flight.
Event counts (flit-hops, buffer accesses, per-class payload volumes) are
accumulated in :class:`NocStats` for the energy model.

Fault injection: construct with ``faults=`` (any object with the
``corrupt_hop()`` / ``drop_packet()`` protocol of
:class:`repro.resilience.FlitFaultInjector`).  Each link traversal rolls
``corrupt_hop()`` — a hit marks the flit's packet ``corrupted`` (data
damaged in flight; delivery proceeds, mirroring a NoC without link-level
retransmission) — and each packet rolls ``drop_packet()`` at injection,
a hit silently discarding it at the source NIC.  Both outcomes are
counted in :class:`NocStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .flit import Packet
from .mesh import OPPOSITE, Mesh
from .nic import NetworkInterface
from .router import LOCAL

__all__ = ["Node", "NocStats", "NocSimulator"]


class Node:
    """Base class for objects attached to mesh positions."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.sim: "NocSimulator | None" = None

    def attach(self, sim: "NocSimulator") -> None:
        self.sim = sim

    def send(self, packet: Packet, cycle: int) -> None:
        assert self.sim is not None, "node not attached to a simulator"
        faults = self.sim.faults
        if faults is not None and faults.drop_packet():
            self.sim.stats.packets_dropped += 1
            return
        self.sim.nics[self.node_id].enqueue(packet, cycle)

    # -- to override -------------------------------------------------------
    def step(self, cycle: int) -> None:  # pragma: no cover - default no-op
        pass

    def on_packet(self, packet: Packet, cycle: int) -> None:  # pragma: no cover
        pass

    @property
    def idle(self) -> bool:
        return True


@dataclass
class NocStats:
    cycles: int = 0
    flit_hops: int = 0  # link traversals (router-to-router)
    #: flits per directed link: (src_router, out_port) -> count
    link_flits: dict[tuple[int, int], int] = field(default_factory=dict)
    buffer_writes: int = 0
    buffer_reads: int = 0
    packets_delivered: int = 0
    flits_delivered: int = 0
    payload_bytes: dict[str, int] = field(default_factory=dict)
    latency_sum: int = 0
    #: fault-injection outcomes (zero without an injector)
    flits_corrupted: int = 0
    packets_dropped: int = 0
    packets_corrupted: int = 0

    def record_delivery(self, packet: Packet) -> None:
        self.packets_delivered += 1
        self.flits_delivered += packet.num_flits
        key = str(packet.traffic_class)
        self.payload_bytes[key] = self.payload_bytes.get(key, 0) + packet.payload_bytes
        self.latency_sum += packet.latency
        if packet.corrupted:
            self.packets_corrupted += 1

    @property
    def mean_packet_latency(self) -> float:
        return self.latency_sum / self.packets_delivered if self.packets_delivered else 0.0


class NocSimulator:
    def __init__(self, mesh: Mesh | None = None, faults=None) -> None:
        self.mesh = mesh or Mesh()
        self.nics = [NetworkInterface(i) for i in range(self.mesh.num_nodes)]
        self.nodes: dict[int, Node] = {}
        self.stats = NocStats()
        self.cycle = 0
        #: optional FlitFaultInjector-protocol object (duck-typed so the
        #: noc package stays importable without repro.resilience)
        self.faults = faults

    def attach_node(self, node: Node) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"node {node.node_id} already attached")
        if not 0 <= node.node_id < self.mesh.num_nodes:
            raise ValueError(f"node id {node.node_id} outside the mesh")
        self.nodes[node.node_id] = node
        node.attach(self)

    # -- inner phases ------------------------------------------------------
    def _inject(self) -> None:
        for nic in self.nics:
            if not nic.busy:
                continue
            router = self.mesh.routers[nic.node_id]
            flit = nic.next_flit()
            # packets keep one VC end to end, assigned from the packet id
            flit.vc = flit.packet.pid % router.num_vcs
            if router.can_accept(LOCAL, flit.vc):
                router.accept(nic.pop_flit(), LOCAL, self.cycle)

    def _route(self) -> None:
        all_moves = []
        for router in self.mesh.routers:
            if router.occupancy:
                moves = router.plan_moves(self.cycle)
                if moves:
                    all_moves.append((router, moves))
        for router, moves in all_moves:
            for in_port, out_port, flit in moves:
                self.stats.buffer_reads += 1
                if out_port == LOCAL:
                    # ejection is an unbounded sink: no credit accounting
                    packet = self.nics[router.node_id].eject(flit, self.cycle)
                    router.credits[LOCAL][flit.vc] += 1
                    if packet is not None:
                        self.stats.record_delivery(packet)
                        node = self.nodes.get(router.node_id)
                        if node is not None:
                            node.on_packet(packet, self.cycle)
                else:
                    neighbor_id = self.mesh.neighbor(router.node_id, out_port)
                    if neighbor_id is None:
                        raise RuntimeError(
                            f"router {router.node_id}: XY route fell off the mesh"
                        )
                    self.mesh.routers[neighbor_id].accept(flit, OPPOSITE[out_port], self.cycle)
                    self.stats.flit_hops += 1
                    if self.faults is not None and self.faults.corrupt_hop():
                        # link-level data damage: the flit train still
                        # flows (wormhole reservations must drain), but
                        # the payload arrives poisoned
                        flit.packet.corrupted = True
                        self.stats.flits_corrupted += 1
                    key = (router.node_id, out_port)
                    self.stats.link_flits[key] = self.stats.link_flits.get(key, 0) + 1
                    self.stats.buffer_writes += 1
                # return the credit upstream (the feeder of in_port)
                if in_port == LOCAL:
                    pass  # NIC injection is throttled by can_accept()
                else:
                    feeder_id = self.mesh.neighbor(router.node_id, in_port)
                    if feeder_id is not None:
                        self.mesh.routers[feeder_id].return_credit(
                            OPPOSITE[in_port], flit.vc
                        )

    # -- main loop ---------------------------------------------------------
    @property
    def quiescent(self) -> bool:
        if any(nic.busy for nic in self.nics):
            return False
        if any(r.occupancy for r in self.mesh.routers):
            return False
        return all(node.idle for node in self.nodes.values())

    def step(self) -> None:
        for node in self.nodes.values():
            node.step(self.cycle)
        self._inject()
        self._route()
        self.cycle += 1

    def run(self, max_cycles: int = 10_000_000) -> NocStats:
        """Run until quiescent; raises if ``max_cycles`` is exceeded."""
        while not self.quiescent:
            if self.cycle >= max_cycles:
                raise RuntimeError(
                    f"simulation did not quiesce within {max_cycles} cycles "
                    f"(possible deadlock or runaway traffic)"
                )
            self.step()
        self.stats.cycles = self.cycle
        return self.stats
