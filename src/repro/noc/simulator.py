"""Cycle-accurate NoC simulation loop.

``NocSimulator`` owns the mesh, one NIC per node, and the attached node
models (PEs and memory interfaces).  Each cycle:

1. every node model steps (may enqueue new packets on its NIC);
2. every busy NIC pushes at most one flit into its router's local input;
3. every occupied router plans its switch allocation (two-phase: all
   plans are computed against the cycle-start state, then committed),
   moving one flit per output port — to a neighbor's input buffer, or to
   the local NIC for ejection;
4. credits consumed by forwarded flits are returned upstream.

The loop ends when every node reports idle and no flit is in flight.
Event counts (flit-hops, buffer accesses, per-class payload volumes) are
accumulated in :class:`NocStats` for the energy model.

Fast path
---------

The default stepper does work proportional to *activity*, not mesh
size, and is guaranteed to produce :class:`NocStats` identical
field-by-field to the naive full-scan stepper (kept as
:meth:`NocSimulator.step_reference` and exercised by the differential
tests in ``tests/noc/test_fastpath.py``):

* **active sets** — a set of busy NIC ids and a dict of per-router
  buffered-flit counts mean injection and switch allocation only visit
  components that can actually act; an in-flight flit counter makes the
  quiescence test O(1) instead of a full mesh scan per cycle.
* **cycle skipping** — when no flit occupies any NIC or router, nothing
  can happen until some node acts.  :meth:`Node.next_event_cycle` lets
  node models (DRAM release timers, PE compute timers) publish their
  next wakeup, and :meth:`NocSimulator.run` jumps ``cycle`` straight to
  the earliest one instead of stepping empty cycles.  The base-class
  default ("step me every cycle") keeps arbitrary node subclasses
  correct.

Active routers are visited in ascending node-id order — the same order
as the reference full scan — so fault-injection RNG draws happen in an
identical sequence and seeded campaigns reproduce bit-for-bit on either
stepper.

Fault injection: construct with ``faults=`` (any object with the
``corrupt_hop()`` / ``drop_packet()`` protocol of
:class:`repro.resilience.FlitFaultInjector`).  Each link traversal rolls
``corrupt_hop()`` — a hit marks the flit's packet ``corrupted`` (data
damaged in flight; delivery proceeds, mirroring a NoC without link-level
retransmission) — and each packet rolls ``drop_packet()`` at injection,
a hit silently discarding it at the source NIC.  Both outcomes are
counted in :class:`NocStats`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from heapq import heappop, heappush

from .. import obs
from .flit import Packet
from .mesh import OPPOSITE, Mesh
from .nic import NetworkInterface
from .router import LOCAL, NEVER, PORT_NAMES

__all__ = ["Node", "NocStats", "NocSimulator"]


class Node:
    """Base class for objects attached to mesh positions."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.sim: "NocSimulator | None" = None

    def attach(self, sim: "NocSimulator") -> None:
        self.sim = sim

    def send(self, packet: Packet, cycle: int) -> None:
        sim = self.sim
        if sim is None:
            # an assert would vanish under ``python -O`` and silently
            # drop the packet; losing traffic must always be loud
            raise RuntimeError(
                f"node {self.node_id} is not attached to a simulator"
            )
        faults = sim.faults
        if faults is not None and faults.drop_packet():
            sim.stats.packets_dropped += 1
            return
        sim.nics[self.node_id].enqueue(packet, cycle)
        sim._busy_nics.add(self.node_id)
        sim._inflight_flits += packet.num_flits

    # -- to override -------------------------------------------------------
    def step(self, cycle: int) -> None:  # pragma: no cover - default no-op
        pass

    def on_packet(self, packet: Packet, cycle: int) -> None:  # pragma: no cover
        pass

    @property
    def idle(self) -> bool:
        return True

    def next_event_cycle(self, cycle: int) -> int | None:
        """Earliest cycle >= ``cycle`` at which :meth:`step` may act.

        This is the node-scheduling contract: the simulator steps a
        node only at the cycles its hint announces (plus whenever a
        packet is delivered to it, and after explicit
        ``NocSimulator.wake_node`` calls), and also uses the hints to
        jump the clock over guaranteed-dead stretches.  Return ``None``
        when the node will never act again without external stimulus;
        return a cycle <= ``cycle`` to request stepping every cycle.
        The conservative base-class default keeps subclasses without a
        hint stepped every cycle, so they stay correct.
        """
        return cycle


@dataclass
class NocStats:
    cycles: int = 0
    flit_hops: int = 0  # link traversals (router-to-router)
    #: flits per directed link: (src_router, out_port) -> count
    link_flits: Counter[tuple[int, int]] = field(default_factory=Counter)
    buffer_writes: int = 0
    buffer_reads: int = 0
    packets_delivered: int = 0
    flits_delivered: int = 0
    payload_bytes: Counter[str] = field(default_factory=Counter)
    latency_sum: int = 0
    #: fault-injection outcomes (zero without an injector)
    flits_corrupted: int = 0
    packets_dropped: int = 0
    packets_corrupted: int = 0
    #: PE datapath cycles hidden under input fetch by streamed decode
    #: (zero unless a PETask runs with ``streamed=True``)
    decode_overlap_cycles: int = 0

    def record_delivery(self, packet: Packet) -> None:
        self.packets_delivered += 1
        self.flits_delivered += packet.num_flits
        self.payload_bytes[str(packet.traffic_class)] += packet.payload_bytes
        self.latency_sum += packet.latency
        if packet.corrupted:
            self.packets_corrupted += 1

    @property
    def mean_packet_latency(self) -> float:
        return self.latency_sum / self.packets_delivered if self.packets_delivered else 0.0


class NocSimulator:
    def __init__(self, mesh: Mesh | None = None, faults=None) -> None:
        self.mesh = mesh or Mesh()
        num_vcs = self.mesh.num_vcs
        self.nics = [
            NetworkInterface(i, num_vcs=num_vcs)
            for i in range(self.mesh.num_nodes)
        ]
        self.nodes: dict[int, Node] = {}
        #: attachment-ordered view of ``nodes`` — the per-cycle stepping
        #: order, shared by both steppers
        self._node_list: list[Node] = []
        self.stats = NocStats()
        self.cycle = 0
        #: optional FlitFaultInjector-protocol object (duck-typed so the
        #: noc package stays importable without repro.resilience)
        self.faults = faults
        # -- activity tracking (the fast path's whole point) -----------
        #: NIC ids with a non-empty injection queue
        self._busy_nics: set[int] = set()
        #: router id -> buffered flit count (absent means empty)
        self._router_flits: dict[int, int] = {}
        #: total flits alive in NIC queues + router buffers
        self._inflight_flits = 0
        # -- phase accounting (cheap integers; repro.obs export) --------
        #: cycles executed through a stepper (vs fast-forwarded)
        self.cycles_stepped = 0
        #: cycles skipped while the network was empty (node-timer waits)
        self.ff_cycles_idle = 0
        #: cycles skipped while flits sat in router pipeline stages
        self.ff_cycles_stall = 0
        #: occupied routers skipped by their poll hint (obs-gated: only
        #: counted while an observability scope is enabled)
        self.stalled_router_polls = 0
        #: whether run() is exporting to an enabled repro.obs scope —
        #: the zero-overhead-when-disabled guard for in-loop counters
        self._obs_track = False
        # -- node scheduling -------------------------------------------
        # per attached node (by attachment index): the earliest cycle
        # its ``step`` must run, driven by ``next_event_cycle`` hints.
        # ``NEVER`` parks a node until an external event (a packet
        # delivery, or a wake_node call from e.g. PE task assignment)
        # re-arms it.  The base-class hint returns its argument, so
        # node subclasses without a hint are stepped every cycle.
        self._node_wake: list[int] = []
        #: (wake_cycle, attach_idx) min-heap; an entry is stale unless
        #: it equals ``_node_wake[idx]`` (lazy deletion)
        self._node_heap: list[tuple[int, int]] = []
        #: node_id -> attachment index (delivery wakes)
        self._node_idx: dict[int, int] = {}
        # -- static commit tables (the topology never changes) ---------
        # per (router, out_port 0..3): everything the commit loop needs
        # to hand a flit to the neighbor without chained attribute
        # lookups; per (router, in_port 0..3): the upstream credit list
        routers = self.mesh.routers
        neighbor_table = self.mesh.neighbor_table
        self._hop_info: list[list[tuple | None]] = []
        self._feed_info: list[list[tuple | None]] = []
        for rid in range(self.mesh.num_nodes):
            hops: list[tuple | None] = []
            feeds: list[tuple | None] = []
            for port in range(4):
                n = neighbor_table[rid][port]
                if n is None:
                    hops.append(None)
                    feeds.append(None)
                else:
                    nr = routers[n]
                    hops.append(
                        (
                            n,
                            nr,
                            nr.buffers[OPPOSITE[port]],
                            # arrival latency is a property of the
                            # neighbor's *input* port (chiplet-boundary
                            # links cost extra cycles)
                            nr.port_pipeline_depth[OPPOSITE[port]],
                            nr.buffer_depth,
                            nr.stats,
                            (rid, port),  # link_flits key
                        )
                    )
                    feeds.append((nr, nr.credits[OPPOSITE[port]], nr.buffer_depth))
            self._hop_info.append(hops)
            self._feed_info.append(feeds)

    def attach_node(self, node: Node) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"node {node.node_id} already attached")
        if not 0 <= node.node_id < self.mesh.num_nodes:
            raise ValueError(f"node id {node.node_id} outside the mesh")
        self.nodes[node.node_id] = node
        idx = len(self._node_list)
        self._node_list.append(node)
        self._node_idx[node.node_id] = idx
        self._node_wake.append(self.cycle)
        heappush(self._node_heap, (self.cycle, idx))
        node.attach(self)

    def wake_node(self, node_id: int) -> None:
        """Ensure ``node_id`` is stepped on the next simulated cycle.

        Packet deliveries wake their destination automatically; call
        this after mutating a parked node from outside the simulation
        (assigning a PE task, scheduling a DRAM read mid-run).
        """
        idx = self._node_idx[node_id]
        nxt = self.cycle + 1
        if self._node_wake[idx] > nxt:
            self._node_wake[idx] = nxt
            heappush(self._node_heap, (nxt, idx))

    # -- inner phases ------------------------------------------------------
    def _inject(self) -> None:
        """Feed one flit per busy NIC into its router's local input.

        ``Router.accept`` is inlined (queue peek, depth check, pipeline
        stamp, poll-hint rearm) — injection runs once per busy NIC per
        cycle and the call overhead is measurable.
        """
        busy = self._busy_nics
        if not busy:
            return
        routers = self.mesh.routers
        nics = self.nics
        router_flits = self._router_flits
        cycle = self.cycle
        for nid in sorted(busy):
            queue = nics[nid]._inject_queue
            router = routers[nid]
            flit = queue[0]
            buf = router.buffers[LOCAL][flit.vc]
            if len(buf) < router.buffer_depth:
                queue.popleft()
                ready = cycle + router.port_pipeline_depth[LOCAL]
                flit.ready_cycle = ready
                if not buf:
                    router._occupied_lanes += 1
                buf.append(flit)
                router.stats.buffer_writes += 1
                if ready < router.poll_again_at:
                    router.poll_again_at = ready
                router_flits[nid] = router_flits.get(nid, 0) + 1
                if not queue:
                    busy.discard(nid)

    def _route(self) -> None:
        """Switch-allocate and commit moves for every occupied router.

        Occupied routers whose ``poll_again_at`` hint lies in the future
        are skipped outright — the hint guarantees their ``plan_moves``
        would return no moves and make no observable state change, so
        skipping cannot perturb the move sequence (or the fault RNG draw
        order, which advances only on committed moves).  The commit path
        inlines ``Router.accept`` / ``return_credit`` and accumulates
        the global counters in locals; both are flat per-flit costs that
        dominate profiles at saturation.
        """
        router_flits = self._router_flits
        if not router_flits:
            return
        cycle = self.cycle
        routers = self.mesh.routers
        # two-phase: plan against cycle-start state (ascending id order,
        # matching the reference scan so fault RNG draws line up) ...
        all_moves = None
        stalled = 0
        for rid in sorted(router_flits):
            router = routers[rid]
            if router.poll_again_at > cycle:
                stalled += 1
                continue
            moves = router._plan_impl(cycle)
            if moves:
                if all_moves is None:
                    all_moves = [(rid, moves)]
                else:
                    all_moves.append((rid, moves))
        if stalled and self._obs_track:
            self.stalled_router_polls += stalled
        if all_moves is None:
            return
        # ... then commit (via the static per-port tables, which bundle
        # every object the inlined accept / credit return touches)
        nics = self.nics
        nodes = self.nodes
        stats = self.stats
        faults = self.faults
        link_flits = stats.link_flits
        hop_table = self._hop_info
        feed_table = self._feed_info
        node_idx = self._node_idx
        node_wake = self._node_wake
        node_heap = self._node_heap
        wake_cycle = cycle + 1
        buffer_reads = 0
        buffer_writes = 0
        flit_hops = 0
        ejected = 0
        for rid, moves in all_moves:
            router = routers[rid]
            hop_info = hop_table[rid]
            feed_info = feed_table[rid]
            router_flits[rid] -= len(moves)
            for in_port, out_port, flit in moves:
                buffer_reads += 1
                vc = flit.vc
                if out_port == LOCAL:
                    # ejection is an unbounded sink: no credit accounting.
                    # nic.eject is inlined; the completeness check uses
                    # ``flit.seq + 1``, which equals ``num_flits`` for a
                    # tail by packetize construction, avoiding the
                    # property's division per delivery
                    nic = nics[rid]
                    pending = nic._pending_flits
                    pid = flit.pid
                    seen = pending.get(pid, 0) + 1
                    router.credits[LOCAL][vc] += 1
                    ejected += 1
                    if flit.is_tail:
                        pending.pop(pid, None)
                        if seen != flit.seq + 1:
                            raise RuntimeError(
                                f"packet {pid}: tail after {seen} flits, "
                                f"expected {flit.seq + 1}"
                            )
                        packet = flit.packet
                        packet.delivered_cycle = cycle
                        nic.delivered_packets += 1
                        stats.record_delivery(packet)
                        node = nodes.get(rid)
                        if node is not None:
                            node.on_packet(packet, cycle)
                            # a delivery may unblock a parked node
                            # (e.g. a PE waiting on its inputs)
                            idx = node_idx[rid]
                            if node_wake[idx] > wake_cycle:
                                node_wake[idx] = wake_cycle
                                heappush(node_heap, (wake_cycle, idx))
                    else:
                        pending[pid] = seen
                else:
                    hop = hop_info[out_port]
                    if hop is None:
                        raise RuntimeError(
                            f"router {rid}: XY route fell off the mesh"
                        )
                    neighbor_id, nrouter, nbufs, pdepth, bdepth, nstats, link_key = hop
                    # inlined Router.accept
                    nbuf = nbufs[vc]
                    if len(nbuf) >= bdepth:
                        raise RuntimeError(
                            f"router {neighbor_id}: buffer overflow on port "
                            f"{PORT_NAMES[OPPOSITE[out_port]]} vc{vc} "
                            "(credit protocol violated)"
                        )
                    ready = cycle + pdepth
                    flit.ready_cycle = ready
                    if not nbuf:
                        nrouter._occupied_lanes += 1
                    nbuf.append(flit)
                    nstats.buffer_writes += 1
                    if ready < nrouter.poll_again_at:
                        nrouter.poll_again_at = ready
                    router_flits[neighbor_id] = (
                        router_flits.get(neighbor_id, 0) + 1
                    )
                    flit_hops += 1
                    if faults is not None and faults.corrupt_hop():
                        # link-level data damage: the flit train still
                        # flows (wormhole reservations must drain), but
                        # the payload arrives poisoned
                        flit.packet.corrupted = True
                        stats.flits_corrupted += 1
                    link_flits[link_key] += 1
                    buffer_writes += 1
                # return the credit upstream (the feeder of in_port);
                # NIC injection (in_port == LOCAL) is throttled by
                # buffer-depth checks instead
                if in_port != LOCAL:
                    feed = feed_info[in_port]
                    if feed is not None:
                        # inlined Router.return_credit
                        feeder, fcredits, fdepth = feed
                        held = fcredits[vc]
                        if held >= fdepth:
                            raise RuntimeError(
                                f"router {feeder.node_id}: credit overflow "
                                f"on port {PORT_NAMES[OPPOSITE[in_port]]} "
                                f"vc{vc}"
                            )
                        fcredits[vc] = held + 1
                        feeder.poll_again_at = 0
        stats.buffer_reads += buffer_reads
        stats.buffer_writes += buffer_writes
        stats.flit_hops += flit_hops
        self._inflight_flits -= ejected
        for rid, moves in all_moves:
            if not router_flits[rid]:
                del router_flits[rid]

    # -- main loop ---------------------------------------------------------
    @property
    def quiescent(self) -> bool:
        if self._inflight_flits:
            return False
        return all(node.idle for node in self._node_list)

    def step(self) -> None:
        cycle = self.cycle
        heap = self._node_heap
        if heap and heap[0][0] <= cycle:
            nodes = self._node_list
            wake = self._node_wake
            due: list[int] = []
            while heap and heap[0][0] <= cycle:
                w, idx = heappop(heap)
                if w == wake[idx]:
                    # claim the slot so an identical duplicate entry
                    # (delivery wake re-parked onto a cycle that already
                    # had a live entry) cannot step the node twice
                    wake[idx] = -1
                    due.append(idx)
            # attachment order — the reference stepper's order, so any
            # RNG drawn inside node steps (fault drop rolls) lines up
            due.sort()
            for idx in due:
                node = nodes[idx]
                node.step(cycle)
                nxt = node.next_event_cycle(cycle + 1)
                if nxt is None:
                    wake[idx] = NEVER
                else:
                    if nxt <= cycle:
                        nxt = cycle + 1
                    wake[idx] = nxt
                    heappush(heap, (nxt, idx))
        self._inject()
        self._route()
        self.cycle = cycle + 1

    def step_reference(self) -> None:
        """One cycle of the naive O(mesh-size) stepper.

        This is the frozen behavioral specification of :meth:`step`: it
        scans every NIC and every router each cycle exactly as the
        pre-fast-path simulator did.  The differential tests assert that
        both steppers produce identical :class:`NocStats`.  Interleaving
        the two on one simulator is supported — the activity sets are
        resynchronized from scratch after every reference step.
        """
        cycle = self.cycle
        for node in self._node_list:
            node.step(cycle)
        # inject: scan every NIC (the VC was assigned at enqueue)
        for nic in self.nics:
            if not nic.busy:
                continue
            router = self.mesh.routers[nic.node_id]
            flit = nic.next_flit()
            if router.can_accept(LOCAL, flit.vc):
                router.accept(nic.pop_flit(), LOCAL, cycle)
        # route: scan every router
        all_moves = []
        for router in self.mesh.routers:
            if router.occupancy:
                moves = router.plan_moves(cycle)
                if moves:
                    all_moves.append((router, moves))
        for router, moves in all_moves:
            for in_port, out_port, flit in moves:
                self.stats.buffer_reads += 1
                if out_port == LOCAL:
                    packet = self.nics[router.node_id].eject(flit, cycle)
                    router.credits[LOCAL][flit.vc] += 1
                    if packet is not None:
                        self.stats.record_delivery(packet)
                        node = self.nodes.get(router.node_id)
                        if node is not None:
                            node.on_packet(packet, cycle)
                else:
                    neighbor_id = self.mesh.neighbor(router.node_id, out_port)
                    if neighbor_id is None:
                        raise RuntimeError(
                            f"router {router.node_id}: XY route fell off the mesh"
                        )
                    self.mesh.routers[neighbor_id].accept(flit, OPPOSITE[out_port], cycle)
                    self.stats.flit_hops += 1
                    if self.faults is not None and self.faults.corrupt_hop():
                        flit.packet.corrupted = True
                        self.stats.flits_corrupted += 1
                    self.stats.link_flits[(router.node_id, out_port)] += 1
                    self.stats.buffer_writes += 1
                if in_port != LOCAL:
                    feeder_id = self.mesh.neighbor(router.node_id, in_port)
                    if feeder_id is not None:
                        self.mesh.routers[feeder_id].return_credit(
                            OPPOSITE[in_port], flit.vc
                        )
        self.cycle = cycle + 1
        self._resync_activity()

    def _resync_activity(self) -> None:
        """Rebuild the active sets from actual component state."""
        self._busy_nics.clear()
        self._busy_nics.update(nic.node_id for nic in self.nics if nic.busy)
        self._router_flits = {
            r.node_id: r.occupancy for r in self.mesh.routers if r.occupancy
        }
        self._inflight_flits = sum(
            nic.queued_flits for nic in self.nics
        ) + sum(self._router_flits.values())
        self._wake_all_nodes()

    def _wake_all_nodes(self) -> None:
        """Mark every node due now (hints re-establish themselves)."""
        cyc = self.cycle
        n = len(self._node_list)
        self._node_wake = [cyc] * n
        # equal keys with ascending indices already satisfy the heap
        # invariant — no heapify needed
        self._node_heap = [(cyc, i) for i in range(n)]

    def _network_wakeup(self, max_cycles: int) -> int:
        """Earliest cycle anything can move while flits sit in routers.

        Only meaningful when every NIC queue is empty: all in-flight
        flits then live in router buffers, so a cycle is dead unless
        some router's poll hint has come due or some node wants to step
        (nodes can only enqueue traffic from inside ``step``).  Routers
        are scanned first — during active drains one of them is almost
        always due, giving a cheap early exit.
        """
        cycle = self.cycle
        wake = max_cycles
        routers = self.mesh.routers
        for rid in self._router_flits:
            nxt = routers[rid].poll_again_at
            if nxt <= cycle:
                return cycle
            if nxt < wake:
                wake = nxt
        for nxt in self._node_wake:
            if nxt <= cycle:
                return cycle
            if nxt < wake:
                wake = nxt
        return wake

    def _next_wakeup(self, max_cycles: int) -> int:
        """Earliest cycle any node may act (network known to be empty).

        Returns the current cycle when some node wants to step now (or
        gave no hint), and ``max_cycles`` when no node will ever act
        again — the run loop then charges the naive stepper's budget in
        one jump and raises its usual liveness error.
        """
        cycle = self.cycle
        wake = max_cycles
        for nxt in self._node_wake:
            if nxt <= cycle:
                return cycle
            if nxt < wake:
                wake = nxt
        return wake

    #: (attribute, metric) pairs exported per run when observability is on
    _OBS_STATS = (
        ("flit_hops", "noc.flits.hops"),
        ("flits_delivered", "noc.flits.delivered"),
        ("packets_delivered", "noc.packets.delivered"),
        ("packets_dropped", "noc.packets.dropped"),
        ("flits_corrupted", "noc.flits.corrupted"),
        ("buffer_reads", "noc.buffer.reads"),
        ("buffer_writes", "noc.buffer.writes"),
        ("decode_overlap_cycles", "noc.decode.overlap_cycles"),
    )

    def _obs_base(self) -> tuple:
        """Snapshot of every exported counter, taken at run() entry so
        repeated runs on one simulator export per-run deltas."""
        stats = self.stats
        return (
            self.cycle,
            self.cycles_stepped,
            self.ff_cycles_idle,
            self.ff_cycles_stall,
            self.stalled_router_polls,
            tuple(getattr(stats, attr) for attr, _ in self._OBS_STATS),
        )

    def _obs_flush(self, o, base: tuple) -> None:
        """Export this run's counter deltas to the ambient obs scope."""
        cycle0, stepped0, idle0, stall0, polls0, stats0 = base
        m = o.metrics
        m.counter("noc.cycles.total").add(self.cycle - cycle0)
        m.counter("noc.cycles.stepped").add(self.cycles_stepped - stepped0)
        m.counter("noc.cycles.fast_forwarded", reason="network_empty").add(
            self.ff_cycles_idle - idle0
        )
        m.counter("noc.cycles.fast_forwarded", reason="pipeline_stall").add(
            self.ff_cycles_stall - stall0
        )
        m.counter("noc.routers.stalled_polls").add(
            self.stalled_router_polls - polls0
        )
        stats = self.stats
        for (attr, metric), before in zip(self._OBS_STATS, stats0):
            m.counter(metric).add(getattr(stats, attr) - before)
        m.gauge("noc.mean_packet_latency").set(stats.mean_packet_latency)

    def run(self, max_cycles: int = 10_000_000, reference: bool = False) -> NocStats:
        """Run until quiescent; raises if ``max_cycles`` is exceeded.

        ``reference=True`` drives the naive :meth:`step_reference` loop
        with no cycle skipping — the oracle for differential tests.

        With an enabled :mod:`repro.obs` scope installed, the run is
        wrapped in a ``noc.run`` span and per-phase counters (cycles
        stepped vs fast-forwarded by reason, stalled router polls, flit
        and buffer activity) are exported on completion.  With the
        default disabled scope this method takes the exact historical
        path — the in-loop stall census stays off (``_obs_track``) and
        no registry is touched.
        """
        o = obs.current()
        if not o.enabled:
            self._obs_track = False
            return self._run(max_cycles, reference)
        self._obs_track = True
        base = self._obs_base()
        try:
            with o.span(
                "noc.run",
                cat="noc",
                reference=reference,
                nodes=len(self._node_list),
            ):
                return self._run(max_cycles, reference)
        finally:
            self._obs_flush(o, base)
            self._obs_track = False

    def _run(self, max_cycles: int, reference: bool) -> NocStats:
        if reference:
            while not self.quiescent:
                if self.cycle >= max_cycles:
                    raise RuntimeError(
                        f"simulation did not quiesce within {max_cycles} cycles "
                        f"(possible deadlock or runaway traffic)"
                    )
                self.step_reference()
                self.cycles_stepped += 1
            self.stats.cycles = self.cycle
            return self.stats

        # anything may have been reprogrammed between runs (new PE
        # tasks, fresh DRAM schedules): start from a clean slate where
        # every node is due, and let the hints re-park them
        self._wake_all_nodes()
        nodes = self._node_list
        while True:
            if not self._inflight_flits:
                if all(node.idle for node in nodes):
                    break  # quiescent
                wake = self._next_wakeup(max_cycles)
                if wake > self.cycle:
                    # nothing can happen before ``wake``: skip the dead
                    # cycles (bounded by the liveness budget)
                    self.ff_cycles_idle += wake - self.cycle
                    self.cycle = wake
            elif not self._busy_nics:
                # flits in flight but all NIC queues drained: if every
                # occupied router is pipeline-stalled and no node wants
                # to step, the intervening cycles are provably dead too
                wake = self._network_wakeup(max_cycles)
                if wake > self.cycle:
                    self.ff_cycles_stall += wake - self.cycle
                    self.cycle = wake
            if self.cycle >= max_cycles:
                raise RuntimeError(
                    f"simulation did not quiesce within {max_cycles} cycles "
                    f"(possible deadlock or runaway traffic)"
                )
            self.step()
            self.cycles_stepped += 1
        self.stats.cycles = self.cycle
        return self.stats
