"""Network interface: packet injection queues and flit reassembly."""

from __future__ import annotations

from collections import deque

from .flit import Flit, Packet, packetize

__all__ = ["NetworkInterface"]


class NetworkInterface:
    """Per-node NIC.

    Injection: packets queue up, are expanded to flit trains and fed to
    the router's local input port at one flit per cycle (64-bit
    node-to-router interface, same width as the links).

    Ejection: flits arriving on the router's local output are collected
    per packet; when the tail lands the packet is delivered to the node.
    """

    def __init__(self, node_id: int, num_vcs: int = 1) -> None:
        self.node_id = node_id
        #: VC count of the attached router; packets keep one VC end to
        #: end, assigned here (once, at enqueue) from the packet id
        self.num_vcs = num_vcs
        self._inject_queue: deque[Flit] = deque()
        self._pending_flits: dict[int, int] = {}  # pid -> flits seen
        self.injected_packets = 0
        self.delivered_packets = 0

    # -- injection -------------------------------------------------------
    def enqueue(self, packet: Packet, cycle: int) -> None:
        if packet.src != self.node_id:
            raise ValueError(
                f"packet src {packet.src} does not match NIC node {self.node_id}"
            )
        packet.injected_cycle = cycle
        flits = packetize(packet)
        if self.num_vcs > 1:
            vc = packet.pid % self.num_vcs
            for flit in flits:
                flit.vc = vc
        self._inject_queue.extend(flits)
        self.injected_packets += 1

    def next_flit(self) -> Flit | None:
        """Peek the flit waiting to enter the router (None if idle)."""
        return self._inject_queue[0] if self._inject_queue else None

    def pop_flit(self) -> Flit:
        return self._inject_queue.popleft()

    @property
    def busy(self) -> bool:
        return bool(self._inject_queue)

    @property
    def queued_flits(self) -> int:
        return len(self._inject_queue)

    # -- ejection --------------------------------------------------------
    def eject(self, flit: Flit, cycle: int) -> Packet | None:
        """Absorb an arriving flit; returns the packet once complete."""
        pid = flit.packet.pid
        seen = self._pending_flits.get(pid, 0) + 1
        if flit.is_tail:
            self._pending_flits.pop(pid, None)
            expected = flit.packet.num_flits
            if seen != expected:
                raise RuntimeError(
                    f"packet {pid}: tail after {seen} flits, expected {expected}"
                )
            flit.packet.delivered_cycle = cycle
            self.delivered_packets += 1
            return flit.packet
        self._pending_flits[pid] = seen
        return None
