"""Routing algorithms for the mesh router.

Noxim-style selectable routing.  All three algorithms are *minimal*
(every hop reduces the Manhattan distance), so packet latency lower
bounds are identical; they differ in how they spread load:

* ``XYRouting`` — dimension order, x first.  Deterministic and
  deadlock-free with a single VC; the paper's default.
* ``YXRouting`` — dimension order, y first.  Same properties, rotated
  load pattern; useful as an ablation of routing-induced hotspots.
* ``WestFirstRouting`` — Glass/Ni turn-model partially adaptive
  routing: the two west-bound turns are forbidden, all other minimal
  turns are allowed, so a packet may choose between x and y moves based
  on local congestion (fewest-occupied-buffer output).  Deadlock-free
  with a single VC by the turn-model argument.
* ``OddEvenRouting`` — Chiu's odd-even turn model (the Noxim
  formulation): turn restrictions alternate by column parity, which
  spreads adaptivity more evenly across the mesh than west-first (whose
  forbidden turns concentrate load along the east edge).  Deadlock-free
  with a single VC.
"""

from __future__ import annotations

from .router import EAST, LOCAL, NORTH, SOUTH, WEST

__all__ = [
    "XYRouting",
    "YXRouting",
    "WestFirstRouting",
    "OddEvenRouting",
    "ROUTING_ALGORITHMS",
]


class _Base:
    name = "base"
    #: True when ``route(router, dst)`` is a pure function of ``dst`` for
    #: a fixed router — lets the router memoize dst -> out_port (see
    #: :attr:`repro.noc.router.Router._route_cache`).  Adaptive
    #: algorithms consult live congestion state and must stay False.
    static = False

    def candidates(self, router, dst: int) -> list[int]:  # pragma: no cover
        raise NotImplementedError

    def route(self, router, dst: int) -> int:
        """Pick one output port; adaptive algorithms use credit counts."""
        options = self.candidates(router, dst)
        if len(options) == 1:
            return options[0]
        # prefer the output with the most downstream credit (least congested)
        return max(options, key=lambda p: router.credit_total(p))


class XYRouting(_Base):
    name = "xy"
    static = True

    def candidates(self, router, dst: int) -> list[int]:
        dx = (dst % router.width) - router.x
        if dx > 0:
            return [EAST]
        if dx < 0:
            return [WEST]
        dy = (dst // router.width) - router.y
        if dy > 0:
            return [SOUTH]
        if dy < 0:
            return [NORTH]
        return [LOCAL]


class YXRouting(_Base):
    name = "yx"
    static = True

    def candidates(self, router, dst: int) -> list[int]:
        dy = (dst // router.width) - router.y
        if dy > 0:
            return [SOUTH]
        if dy < 0:
            return [NORTH]
        dx = (dst % router.width) - router.x
        if dx > 0:
            return [EAST]
        if dx < 0:
            return [WEST]
        return [LOCAL]


class WestFirstRouting(_Base):
    name = "west-first"

    def candidates(self, router, dst: int) -> list[int]:
        dx = (dst % router.width) - router.x
        dy = (dst // router.width) - router.y
        if dx == 0 and dy == 0:
            return [LOCAL]
        if dx < 0:
            # west moves must come first and are non-adaptive
            return [WEST]
        options = []
        if dx > 0:
            options.append(EAST)
        if dy > 0:
            options.append(SOUTH)
        elif dy < 0:
            options.append(NORTH)
        return options


class OddEvenRouting(_Base):
    """Odd-even turn model (Chiu), in Noxim's formulation.

    Column parity gates where a packet may change rows: eastbound
    packets may move north/south only in *odd* columns, westbound
    packets only in *even* columns.  (Noxim additionally allows the row
    move in the packet's source column; this implementation drops that
    exception — routing here is a function of the current router and
    the destination only, so routes stay a strict subset of Noxim's
    allowed turns and the deadlock-freedom argument carries over.)
    All routes are minimal.
    """

    name = "odd-even"

    def candidates(self, router, dst: int) -> list[int]:
        dx = (dst % router.width) - router.x
        dy = (dst // router.width) - router.y
        if dx == 0:
            if dy == 0:
                return [LOCAL]
            return [SOUTH] if dy > 0 else [NORTH]
        if dx > 0:  # eastbound
            if dy == 0:
                return [EAST]
            options = []
            if router.x % 2 == 1:
                options.append(SOUTH if dy > 0 else NORTH)
            # the final eastward hop into an even destination column
            # would force a forbidden EN/ES turn there, so East is only
            # offered when the destination column is odd or more than
            # one column away
            if (dst % router.width) % 2 == 1 or dx != 1:
                options.append(EAST)
            return options
        # westbound: West is always legal; row moves only in even columns
        options = [WEST]
        if dy != 0 and router.x % 2 == 0:
            options.append(SOUTH if dy > 0 else NORTH)
        return options


ROUTING_ALGORITHMS = {
    "xy": XYRouting,
    "yx": YXRouting,
    "west-first": WestFirstRouting,
    "odd-even": OddEvenRouting,
}
