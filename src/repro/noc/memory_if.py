"""Memory-interface node: the corner tiles of the paper's accelerator.

Each MC bridges the mesh to one main-memory channel.  Reads are driven
by a static per-layer *program* (the traffic schedule from
:mod:`repro.mapping.schedule`): each entry is a transfer of N bytes to a
PE.  The DRAM channel serves one job at a time, occupying the channel
for ``access_latency + ceil(bytes / bandwidth)`` cycles; when the read
completes, the data is injected as a train of packets (split at
``max_packet_bytes`` so the NoC interleaves flows).  Writes (OFMAP
packets arriving from PEs) occupy the channel the same way.

Busy cycles are tracked for the energy model's DRAM dynamic and leakage
accounting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .flit import Packet, TrafficClass
from .simulator import Node

__all__ = ["DramConfig", "ReadJob", "MemoryInterface"]


@dataclass(frozen=True)
class DramConfig:
    """Per-channel main-memory timing (cycles at the NoC clock)."""

    #: fixed per-request latency (row activation + controller)
    access_latency: int = 30
    #: sustained bytes per cycle (8 B/cycle = 8 GB/s at 1 GHz)
    bandwidth_bytes_per_cycle: float = 8.0
    #: transfers larger than this are split into multiple packets
    max_packet_bytes: int = 256

    def service_cycles(self, nbytes: int) -> int:
        """Channel occupancy of one request."""
        return self.access_latency + int(
            -(-nbytes // self.bandwidth_bytes_per_cycle)
        )


@dataclass
class ReadJob:
    """One DRAM read, fanned out to one or more PEs.

    ``nbytes`` is the DRAM-side volume (read once); every destination
    receives a full copy over the NoC.  Multi-destination jobs model the
    shared input-feature-map fetch: under a channel-partitioned layer
    all PEs need the same ifmap, so the memory interface reads it once
    and replicates it on chip (Simba-style multicast at the MC).
    """

    dst: int | tuple[int, ...]
    nbytes: int
    traffic_class: TrafficClass
    tag: object = None

    @property
    def dsts(self) -> tuple[int, ...]:
        return (self.dst,) if isinstance(self.dst, int) else tuple(self.dst)


class MemoryInterface(Node):
    def __init__(
        self, node_id: int, config: DramConfig | None = None, faults=None
    ) -> None:
        super().__init__(node_id)
        self.config = config if config is not None else DramConfig()
        #: optional FlitFaultInjector-protocol object; rolls
        #: ``corrupt_hop()`` once per staged packet, modeling soft errors
        #: in the DRAM read path before the data ever enters the mesh
        self.faults = faults
        self.packets_corrupted = 0
        self._read_queue: deque[ReadJob] = deque()
        self._write_queue: deque[int] = deque()  # byte counts
        self._busy_until = 0
        self._cycle_seen = 0
        #: (release_cycle, packet): data waiting for its DRAM read to end
        self._staged: deque[tuple[int, Packet]] = deque()
        self.busy_cycles = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- programming -------------------------------------------------------
    def schedule_read(self, job: ReadJob) -> None:
        if job.nbytes <= 0:
            raise ValueError(f"read of {job.nbytes} bytes")
        self._read_queue.append(job)
        if self.sim is not None:
            # the channel may be parked with nothing queued
            self.sim.wake_node(self.node_id)

    # -- node protocol -----------------------------------------------------
    def on_packet(self, packet: Packet, cycle: int) -> None:
        if packet.traffic_class is TrafficClass.OFMAP:
            self._write_queue.append(packet.payload_bytes)
        elif packet.traffic_class is TrafficClass.REQUEST:
            # demand mode: tag = (traffic-class name, byte count)
            tclass_name, nbytes = packet.tag
            self.schedule_read(
                ReadJob(
                    dst=packet.src,
                    nbytes=int(nbytes),
                    traffic_class=TrafficClass(tclass_name),
                )
            )

    def step(self, cycle: int) -> None:
        self._cycle_seen = cycle
        # release data whose DRAM read completed
        while self._staged and self._staged[0][0] <= cycle:
            self.send(self._staged.popleft()[1], cycle)
        if cycle < self._busy_until:
            return
        if self._write_queue:
            nbytes = self._write_queue.popleft()
            self.bytes_written += nbytes
            service = self.config.service_cycles(nbytes)
            self._busy_until = cycle + service
            self.busy_cycles += service
        elif self._read_queue:
            job = self._read_queue.popleft()
            self.bytes_read += job.nbytes
            service = self.config.service_cycles(job.nbytes)
            self._busy_until = cycle + service
            self.busy_cycles += service
            self._stage(job, release_cycle=cycle + service)

    def _stage(self, job: ReadJob, release_cycle: int) -> None:
        chunk = self.config.max_packet_bytes
        for dst in job.dsts:
            remaining = job.nbytes
            while remaining > 0:
                n = min(chunk, remaining)
                packet = Packet(
                    src=self.node_id,
                    dst=dst,
                    payload_bytes=n,
                    traffic_class=job.traffic_class,
                    tag=job.tag,
                )
                if self.faults is not None and self.faults.corrupt_hop():
                    packet.corrupted = True
                    self.packets_corrupted += 1
                self._staged.append((release_cycle, packet))
                remaining -= n

    @property
    def idle(self) -> bool:
        return (
            not self._read_queue
            and not self._write_queue
            and not self._staged
            and self._cycle_seen >= self._busy_until
        )

    def next_event_cycle(self, cycle: int) -> int | None:
        """Cycle-skipping hint: staged releases and channel dispatch.

        Mirrors :meth:`step` exactly — a staged packet is sent at its
        DRAM-release cycle, a queued job dispatches once the channel
        frees, and one final step at ``_busy_until`` is needed for
        :attr:`idle` to observe the channel going quiet.
        """
        events = []
        if self._staged:
            events.append(self._staged[0][0])
        if self._write_queue or self._read_queue:
            events.append(max(cycle, self._busy_until))
        elif self._cycle_seen < self._busy_until:
            events.append(self._busy_until)
        return min(events) if events else None
