"""Topology variants beyond the paper's single 4x4 mesh.

The scenario matrix asks whether the compression win survives when the
NoC itself becomes the bottleneck.  Two knobs scale the substrate:

* **bigger meshes** — plain :class:`~repro.noc.mesh.Mesh` already takes
  arbitrary ``width x height``; :func:`build_mesh` names the common
  sizes so experiments and configs can refer to topologies by string.
* **chiplet packages** — :class:`ChipletMesh` models a Simba-like
  multi-chiplet platform (the paper's own reference platform is a
  36-chiplet package): a ``chiplets_x x chiplets_y`` grid of
  ``chiplet_width x chiplet_height`` mesh dies, stitched into one
  routable mesh whose inter-die links are slower than on-die links.
  The die-to-die penalty is modelled through the routers'
  ``port_pipeline_depth``: a flit crossing a chiplet boundary becomes
  switch-eligible ``d2d_extra`` cycles later than an on-die hop, on
  both steppers (the reference stepper reads the same per-port table),
  so fast-path/reference :class:`~repro.noc.simulator.NocStats`
  identity holds on chiplet topologies too.

Memory interfaces stay at the *package* corners (the floorplan every
schedule and the transaction model assume), so traffic to a PE deep in
a far chiplet pays the boundary crossings — exactly the scaling
pressure the scenario matrix wants to measure.
"""

from __future__ import annotations

from .mesh import OPPOSITE, Mesh

__all__ = ["ChipletMesh", "build_mesh", "TOPOLOGIES"]


class ChipletMesh(Mesh):
    """A package of mesh chiplets exposed as one routable mesh.

    Geometry: ``chiplets_x * chiplet_width`` columns by
    ``chiplets_y * chiplet_height`` rows.  Routing, scheduling, and both
    simulator steppers treat it as a normal mesh; only the per-port
    pipeline depths differ, so every existing routing algorithm remains
    deadlock-free (turn rules are untouched).
    """

    def __init__(
        self,
        chiplets_x: int = 2,
        chiplets_y: int = 2,
        chiplet_width: int = 4,
        chiplet_height: int = 4,
        buffer_depth: int = 4,
        pipeline_depth: int = 2,
        routing: str = "xy",
        num_vcs: int = 1,
        d2d_extra: int = 2,
    ) -> None:
        if chiplets_x < 1 or chiplets_y < 1:
            raise ValueError("need at least one chiplet per package axis")
        if chiplet_width < 1 or chiplet_height < 1:
            raise ValueError("chiplet dimensions must be >= 1")
        if d2d_extra < 0:
            raise ValueError(f"d2d_extra must be >= 0, got {d2d_extra}")
        super().__init__(
            chiplets_x * chiplet_width,
            chiplets_y * chiplet_height,
            buffer_depth,
            pipeline_depth,
            routing=routing,
            num_vcs=num_vcs,
        )
        self.chiplets_x = chiplets_x
        self.chiplets_y = chiplets_y
        self.chiplet_width = chiplet_width
        self.chiplet_height = chiplet_height
        self.d2d_extra = d2d_extra
        # raise the arrival latency of every boundary-crossing input
        # port: the link from A to B lands on B's OPPOSITE[out] port
        for node in range(self.num_nodes):
            for out_port in range(4):
                neighbor = self.neighbor_table[node][out_port]
                if neighbor is None:
                    continue
                if self.chiplet_of(node) != self.chiplet_of(neighbor):
                    self.routers[neighbor].port_pipeline_depth[
                        OPPOSITE[out_port]
                    ] = pipeline_depth + d2d_extra

    def chiplet_of(self, node_id: int) -> tuple[int, int]:
        """(cx, cy) grid position of the chiplet hosting ``node_id``."""
        x, y = node_id % self.width, node_id // self.width
        return x // self.chiplet_width, y // self.chiplet_height

    def boundary_links(self) -> list[tuple[int, int]]:
        """Directed (src, dst) pairs that cross a chiplet boundary."""
        links = []
        for node in range(self.num_nodes):
            for out_port in range(4):
                neighbor = self.neighbor_table[node][out_port]
                if neighbor is not None and self.chiplet_of(
                    node
                ) != self.chiplet_of(neighbor):
                    links.append((node, neighbor))
        return links


#: named topology constructors for configs/CLIs (kwargs: buffer_depth,
#: pipeline_depth, routing, num_vcs — forwarded verbatim)
TOPOLOGIES = {
    "mesh-4x4": lambda **kw: Mesh(4, 4, **kw),
    "mesh-8x8": lambda **kw: Mesh(8, 8, **kw),
    "mesh-16x16": lambda **kw: Mesh(16, 16, **kw),
    "chiplet-2x2": lambda **kw: ChipletMesh(2, 2, 4, 4, **kw),
    "chiplet-3x3": lambda **kw: ChipletMesh(3, 3, 4, 4, **kw),
}


def build_mesh(topology: str, **kwargs) -> Mesh:
    """Construct a named topology (see :data:`TOPOLOGIES`)."""
    try:
        factory = TOPOLOGIES[topology]
    except KeyError:
        raise ValueError(
            f"unknown topology {topology!r}; use one of {sorted(TOPOLOGIES)}"
        ) from None
    return factory(**kwargs)
