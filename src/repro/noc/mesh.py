"""2-D mesh topology wiring.

The paper's accelerator is a 4x4 mesh whose four corner nodes host the
memory interfaces and whose remaining twelve nodes are PEs (Fig. 7).
``Mesh`` owns the routers and the neighbor wiring; traffic movement is
orchestrated by :class:`repro.noc.simulator.NocSimulator`.
"""

from __future__ import annotations

from .router import EAST, LOCAL, NORTH, SOUTH, WEST, Router

__all__ = ["Mesh", "OPPOSITE"]

#: the input port on the neighbor that our output port feeds
OPPOSITE = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}


class Mesh:
    """``width x height`` mesh of wormhole routers."""

    def __init__(
        self,
        width: int = 4,
        height: int = 4,
        buffer_depth: int = 4,
        pipeline_depth: int = 2,
        routing: str = "xy",
        num_vcs: int = 1,
    ) -> None:
        if width < 2 or height < 2:
            raise ValueError("mesh needs at least 2x2 nodes")
        from .routing import ROUTING_ALGORITHMS

        if routing not in ROUTING_ALGORITHMS:
            raise ValueError(
                f"unknown routing {routing!r}; use one of {sorted(ROUTING_ALGORITHMS)}"
            )
        self.width = width
        self.height = height
        self.routing_name = routing
        self.num_vcs = num_vcs
        algo_cls = ROUTING_ALGORITHMS[routing]
        self.routers = [
            Router(
                i,
                width,
                height,
                buffer_depth,
                pipeline_depth,
                routing=algo_cls(),
                num_vcs=num_vcs,
            )
            for i in range(width * height)
        ]
        # ejection is sink-buffered: effectively infinite credit
        for r in self.routers:
            r.credits[LOCAL] = [1 << 30] * num_vcs
        #: neighbor_table[node][port] -> neighbor id (None at the edge);
        #: precomputed so the per-flit commit path does a tuple index
        #: instead of re-deriving mesh geometry
        self.neighbor_table: list[tuple[int | None, ...]] = [
            tuple(self.neighbor(i, port) for port in range(5))
            for i in range(self.num_nodes)
        ]

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def corner_ids(self) -> list[int]:
        """Memory-interface positions in the paper's floorplan."""
        w, h = self.width, self.height
        return [0, w - 1, w * (h - 1), w * h - 1]

    def pe_ids(self) -> list[int]:
        corners = set(self.corner_ids())
        return [i for i in range(self.num_nodes) if i not in corners]

    def neighbor(self, node_id: int, out_port: int) -> int | None:
        """Node on the other end of an output port (None at mesh edge)."""
        x, y = node_id % self.width, node_id // self.width
        if out_port == NORTH:
            return node_id - self.width if y > 0 else None
        if out_port == SOUTH:
            return node_id + self.width if y < self.height - 1 else None
        if out_port == EAST:
            return node_id + 1 if x < self.width - 1 else None
        if out_port == WEST:
            return node_id - 1 if x > 0 else None
        return None

    def hop_count(self, src: int, dst: int) -> int:
        """Manhattan distance (the XY route length)."""
        sx, sy = src % self.width, src // self.width
        dx, dy = dst % self.width, dst // self.width
        return abs(sx - dx) + abs(sy - dy)

    def nearest_corner(self, node_id: int) -> int:
        """Memory interface closest to a node (ties by corner order)."""
        return min(self.corner_ids(), key=lambda c: self.hop_count(node_id, c))
