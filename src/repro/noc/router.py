"""Input-buffered wormhole router with virtual channels (Noxim-style).

Five ports (North, South, East, West, Local).  Each input port owns
``num_vcs`` FIFOs of ``buffer_depth`` flits; credit-based flow control
tracks free slots in the *downstream* input buffer per (port, VC).
Routing is pluggable (:mod:`repro.noc.routing`; dimension-order XY by
default, deadlock-free on a mesh).  Switch allocation is per-output
round-robin among requesting (input, VC) pairs, with wormhole locks:
once a head flit claims an output on its VC, body flits of the same
packet keep that (output, VC) until the tail releases it.

Virtual channels remove head-of-line blocking: a worm stalled on one VC
no longer blocks packets queued behind it on another VC of the same
physical port.  Packets keep one VC end to end (assigned at injection
from the packet id), which avoids per-hop VC allocation while retaining
most of the HoL-blocking benefit — the ``benchmarks/test_ablations.py``
VC sweep quantifies it.

The router pipeline depth (route computation + VC/switch allocation +
traversal) is modelled by stamping each arriving flit with a
``ready_cycle``; a flit is only eligible for switch allocation
``pipeline_depth`` cycles after it entered the buffer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .flit import Flit

__all__ = ["PORT_NAMES", "LOCAL", "Router", "RouterStats"]

# port indices
NORTH, SOUTH, EAST, WEST, LOCAL = range(5)
PORT_NAMES = ("north", "south", "east", "west", "local")

#: ``poll_again_at`` sentinel: no internal event will ever unblock this
#: router (an external accept or credit return must rearm it)
NEVER = 1 << 62


@dataclass
class RouterStats:
    flits_forwarded: int = 0
    buffer_writes: int = 0
    arbitration_conflicts: int = 0


class Router:
    """One mesh router.

    Coordinates ``(x, y)``: x grows eastward, y grows southward; node id
    is ``y * width + x``.
    """

    def __init__(
        self,
        node_id: int,
        width: int,
        height: int,
        buffer_depth: int = 4,
        pipeline_depth: int = 2,
        routing=None,
        num_vcs: int = 1,
    ) -> None:
        if buffer_depth < 1 or pipeline_depth < 1:
            raise ValueError("buffer_depth and pipeline_depth must be >= 1")
        if num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        self.node_id = node_id
        self.width = width
        self.height = height
        self.x = node_id % width
        self.y = node_id // width
        self.buffer_depth = buffer_depth
        self.pipeline_depth = pipeline_depth
        #: per-input-port pipeline latency, defaulting to the uniform
        #: ``pipeline_depth``.  Topologies with heterogeneous links
        #: (chiplet packages, where a die-to-die crossing costs extra
        #: cycles) raise individual entries; a flit arriving on port
        #: ``p`` becomes switch-eligible ``port_pipeline_depth[p]``
        #: cycles after acceptance.
        self.port_pipeline_depth: list[int] = [pipeline_depth] * 5
        self.num_vcs = num_vcs
        if routing is None:
            from .routing import XYRouting

            routing = XYRouting()
        self.routing = routing
        #: buffers[port][vc] -> FIFO of flits
        self.buffers: list[list[deque[Flit]]] = [
            [deque() for _ in range(num_vcs)] for _ in range(5)
        ]
        #: flattened (in_port, vc, fifo) view of ``buffers`` — the
        #: switch-allocation loop walks one list instead of two nested
        #: index chains (the fifos are shared, not copied)
        self._lanes: list[tuple[int, int, deque[Flit]]] = [
            (port, vc, self.buffers[port][vc])
            for port in range(5)
            for vc in range(num_vcs)
        ]
        #: dst -> out_port memo, only consulted under static routing
        #: (dimension-order algorithms), where the mapping never changes
        self._route_cache: dict[int, int] = {}
        #: reusable per-output request slots for :meth:`plan_moves`
        #: (cleared after every call; avoids a dict build per poll)
        self._req_slots: list[list[tuple[int, int]] | None] = [None] * 5
        self._routing_static: bool = bool(getattr(routing, "static", False))
        #: credits[out_port][vc] = free slots in the downstream buffer
        self.credits: list[list[int]] = [
            [buffer_depth] * num_vcs for _ in range(5)
        ]
        #: wormhole reservation: (output port, vc) -> (input port, vc)
        self.output_lock: dict[tuple[int, int], tuple[int, int]] = {}
        #: head-chosen output per in-flight packet, so body/tail flits of
        #: a worm follow their head even under adaptive routing
        self._worm_route: dict[int, int] = {}
        #: round-robin pointer per output port
        self._rr: list[int] = [0] * 5
        #: event-gated polling hint: earliest cycle at which
        #: :meth:`plan_moves` could possibly produce a move, assuming no
        #: external event (flit arrival, credit return) occurs first.
        #: Maintained by :meth:`plan_moves` and rearmed by
        #: :meth:`accept` / :meth:`return_credit`; the simulator skips
        #: planning while ``poll_again_at > cycle``.
        self.poll_again_at = 0
        self.stats = RouterStats()
        # -- single-VC fast path ------------------------------------------
        # with one VC (the default mesh), lanes are just ports: flat
        # per-port buffer/lock views replace the (port, vc) tuple
        # machinery in switch allocation.  ``output_lock`` stays the
        # canonical dict the tests read; ``_lock1`` mirrors it.
        self._bufs1: list[deque[Flit]] = [self.buffers[p][0] for p in range(5)]
        self._lock1: list[int | None] = [None] * 5
        self._req1: list[list[int] | None] = [None] * 5
        #: static (port, 0) tuples for dict keys/values — no allocation
        self._pairs1: list[tuple[int, int]] = [(p, 0) for p in range(5)]
        #: number of non-empty (port, vc) FIFOs; may read high (never
        #: low) if buffers are manipulated behind the router's back, in
        #: which case the streaming fast path just falls back to the
        #: full scan
        self._occupied_lanes = 0
        #: input port of the most recent grant — the streaming fast
        #: path's guess for the single occupied lane
        self._last_lane = 0
        #: hot-loop entry point: bound to the single-VC or generic
        #: allocator at construction (the public :meth:`plan_moves`
        #: delegates here; the simulator calls it directly)
        self._plan_impl = self._plan_vc1 if num_vcs == 1 else self._plan_generic

    # -- geometry ----------------------------------------------------------
    def route(self, dst: int) -> int:
        """Output port for ``dst`` under this router's routing algorithm."""
        return self.routing.route(self, dst)

    def _route_flit(self, flit: Flit) -> int:
        """Route with wormhole consistency: heads decide, bodies follow."""
        pid = flit.packet.pid
        if flit.is_head:
            if self._routing_static:
                dst = flit.dst
                port = self._route_cache.get(dst)
                if port is None:
                    port = self.routing.route(self, dst)
                    self._route_cache[dst] = port
            else:
                port = self.routing.route(self, flit.dst)
            if not flit.is_tail:
                self._worm_route[pid] = port
            return port
        port = self._worm_route.get(pid)
        if port is None:  # pragma: no cover - protocol violation guard
            raise RuntimeError(
                f"router {self.node_id}: body flit of packet {pid} arrived "
                "before its head"
            )
        return port

    # -- flow control --------------------------------------------------------
    def can_accept(self, in_port: int, vc: int = 0) -> bool:
        return len(self.buffers[in_port][vc]) < self.buffer_depth

    def accept(self, flit: Flit, in_port: int, cycle: int) -> None:
        """Enqueue an arriving flit (link traversal completes this cycle)."""
        if not self.can_accept(in_port, flit.vc):
            raise RuntimeError(
                f"router {self.node_id}: buffer overflow on port "
                f"{PORT_NAMES[in_port]} vc{flit.vc} (credit protocol violated)"
            )
        ready = cycle + self.port_pipeline_depth[in_port]
        flit.ready_cycle = ready
        buf = self.buffers[in_port][flit.vc]
        if not buf:
            self._occupied_lanes += 1
        buf.append(flit)
        self.stats.buffer_writes += 1
        # a new flit is an external event: wake the poll hint no later
        # than the cycle this flit clears the router pipeline
        if ready < self.poll_again_at:
            self.poll_again_at = ready

    # -- switch allocation ----------------------------------------------------
    def plan_moves(self, cycle: int) -> list[tuple[int, int, Flit]]:
        """Select up to one flit per output port to forward this cycle.

        Returns ``(in_port, out_port, flit)`` triples; the caller commits
        them (two-phase update keeps routers order-independent).  Credits
        are decremented here so a single cycle never oversubscribes a
        downstream buffer.

        Every call also refreshes :attr:`poll_again_at`: when nothing is
        eligible, the earliest pipeline-ready flit bounds the next cycle
        this router could act on its own.  Lock-blocked lanes need no
        poll of their own (the blocking worm drains via this router's own
        grants, which reset the hint), and credit-starved candidates wake
        via :meth:`return_credit`; new arrivals rearm in :meth:`accept`.

        Dispatches to the single-VC allocator (flat per-port state, the
        default mesh) or the generic multi-VC one; both implement the
        same allocation policy and ``tests/noc/test_fastpath.py`` checks
        them against each other.
        """
        return self._plan_impl(cycle)

    def _plan_vc1(self, cycle: int) -> list[tuple[int, int, Flit]]:
        """Single-VC switch allocation: lanes are just input ports."""
        # streaming fast path: exactly one occupied lane whose
        # head-of-line flit is a body/tail following its held lock —
        # the steady state of every router along a worm's path.  The
        # full scan would find this single candidate and grant it;
        # do so directly.  Any mismatch falls through to the scan.
        if self._occupied_lanes == 1:
            in_port = self._last_lane
            buf = self._bufs1[in_port]
            if buf:
                flit = buf[0]
                ready = flit.ready_cycle
                if ready > cycle:
                    self.poll_again_at = ready
                    return []
                if not flit.is_head:
                    out_port = self._worm_route.get(flit.pid)
                    if out_port is not None and self._lock1[out_port] == in_port:
                        port_credits = self.credits[out_port]
                        if port_credits[0] <= 0:
                            # starved: return_credit rearms the hint
                            self.poll_again_at = NEVER
                            return []
                        buf.popleft()
                        if not buf:
                            self._occupied_lanes -= 1
                        if flit.is_tail:
                            self._lock1[out_port] = None
                            self.output_lock.pop(self._pairs1[out_port], None)
                            self._worm_route.pop(flit.pid, None)
                        port_credits[0] -= 1
                        self._rr[out_port] = (in_port + 1) % 5
                        self.stats.flits_forwarded += 1
                        self.poll_again_at = cycle + 1
                        return [(in_port, out_port, flit)]
        # optimistic scan: collect eligible candidates into a flat list,
        # tracking claimed outputs in a bitmask.  Two candidates wanting
        # the same output (rare — it needs two worms converging in the
        # same cycle) restart in the slot-based allocator; until then
        # the scan has only (idempotently) recorded head worm routes, so
        # the restart is side-effect free.
        min_ready = NEVER
        lock = self._lock1
        worm_route = self._worm_route
        bufs = self._bufs1
        routing = self.routing
        route_cache = self._route_cache if self._routing_static else None
        cands: list[tuple[int, int, Flit]] | None = None
        outs = 0
        for in_port in range(5):
            buf = bufs[in_port]
            if not buf:
                continue
            flit = buf[0]
            ready = flit.ready_cycle
            if ready > cycle:
                if ready < min_ready:
                    min_ready = ready
                continue
            if flit.is_head:
                if route_cache is not None:
                    dst = flit.dst
                    out_port = route_cache.get(dst)
                    if out_port is None:
                        out_port = routing.route(self, dst)
                        route_cache[dst] = out_port
                else:
                    out_port = routing.route(self, flit.dst)
                holder = lock[out_port]
                if holder is not None and holder != in_port:
                    continue  # output busy with another worm
                if not flit.is_tail:
                    worm_route[flit.pid] = out_port
            else:
                out_port = worm_route.get(flit.pid)
                if out_port is None:  # pragma: no cover - protocol guard
                    raise RuntimeError(
                        f"router {self.node_id}: body flit of packet "
                        f"{flit.pid} arrived before its head"
                    )
                if lock[out_port] != in_port:
                    continue  # body/tail may only follow their own worm
            bit = 1 << out_port
            if outs & bit:
                return self._plan_vc1_conflict(cycle)
            outs |= bit
            if cands is None:
                cands = [(in_port, out_port, flit)]
            else:
                cands.append((in_port, out_port, flit))
        if cands is None:
            self.poll_again_at = min_ready
            return []

        # conflict-free grants: every candidate owns its output, so the
        # round-robin arbiter degenerates to a pass-through (candidate
        # order equals the slot allocator's first-seen output order)
        moves: list[tuple[int, int, Flit]] = []
        credits = self.credits
        rr = self._rr
        output_lock = self.output_lock
        pairs = self._pairs1
        for cand in cands:
            in_port, out_port, flit = cand
            port_credits = credits[out_port]
            if port_credits[0] <= 0:
                continue  # starved: return_credit rearms the hint
            rr[out_port] = (in_port + 1) % 5
            buf = bufs[in_port]
            buf.popleft()
            if not buf:
                self._occupied_lanes -= 1
            self._last_lane = in_port
            if flit.is_tail:
                lock[out_port] = None
                output_lock.pop(pairs[out_port], None)
                worm_route.pop(flit.pid, None)
            elif flit.is_head:
                lock[out_port] = in_port
                output_lock[pairs[out_port]] = pairs[in_port]
            port_credits[0] -= 1
            moves.append(cand)
        if moves:
            self.stats.flits_forwarded += len(moves)
            self.poll_again_at = cycle + 1
        else:
            self.poll_again_at = min_ready
        return moves

    def _plan_vc1_conflict(self, cycle: int) -> list[tuple[int, int, Flit]]:
        """Slot-based single-VC allocation (two worms contend an output)."""
        req = self._req1
        used: list[int] = []
        min_ready = NEVER
        lock = self._lock1
        worm_route = self._worm_route
        bufs = self._bufs1
        routing = self.routing
        route_cache = self._route_cache if self._routing_static else None
        for in_port in range(5):
            buf = bufs[in_port]
            if not buf:
                continue
            flit = buf[0]
            ready = flit.ready_cycle
            if ready > cycle:
                if ready < min_ready:
                    min_ready = ready
                continue
            if flit.is_head:
                if route_cache is not None:
                    dst = flit.dst
                    out_port = route_cache.get(dst)
                    if out_port is None:
                        out_port = routing.route(self, dst)
                        route_cache[dst] = out_port
                else:
                    out_port = routing.route(self, flit.dst)
                holder = lock[out_port]
                if holder is not None and holder != in_port:
                    continue  # output busy with another worm
                if not flit.is_tail:
                    worm_route[flit.pid] = out_port
            else:
                out_port = worm_route.get(flit.pid)
                if out_port is None:  # pragma: no cover - protocol guard
                    raise RuntimeError(
                        f"router {self.node_id}: body flit of packet "
                        f"{flit.pid} arrived before its head"
                    )
                if lock[out_port] != in_port:
                    continue  # body/tail may only follow their own worm
            slot = req[out_port]
            if slot is None:
                req[out_port] = [in_port]
                used.append(out_port)
            else:
                slot.append(in_port)
        if not used:
            self.poll_again_at = min_ready
            return []

        moves: list[tuple[int, int, Flit]] = []
        credits = self.credits
        rr = self._rr
        output_lock = self.output_lock
        pairs = self._pairs1
        for out_port in used:
            cands = req[out_port]
            req[out_port] = None
            port_credits = credits[out_port]
            # one VC -> one credit pool: starvation hits all candidates
            if port_credits[0] <= 0:
                continue
            if len(cands) == 1:
                chosen = cands[0]
            else:
                self.stats.arbitration_conflicts += len(cands) - 1
                # round-robin among requesting input ports
                start = rr[out_port]
                chosen = min(cands, key=lambda c: (c - start) % 5)
            rr[out_port] = (chosen + 1) % 5
            buf = bufs[chosen]
            flit = buf.popleft()
            if not buf:
                self._occupied_lanes -= 1
            self._last_lane = chosen
            # wormhole lock maintenance (mirror into the canonical dict)
            if flit.is_tail:
                lock[out_port] = None
                output_lock.pop(pairs[out_port], None)
                worm_route.pop(flit.pid, None)
            elif flit.is_head:
                lock[out_port] = chosen
                output_lock[pairs[out_port]] = pairs[chosen]
            port_credits[0] -= 1
            moves.append((chosen, out_port, flit))
        if moves:
            self.stats.flits_forwarded += len(moves)
            self.poll_again_at = cycle + 1
        else:
            self.poll_again_at = min_ready
        return moves

    def _plan_generic(self, cycle: int) -> list[tuple[int, int, Flit]]:
        """Multi-VC switch allocation over (port, vc) lanes."""
        # collect head-of-line candidates per output across (port, vc);
        # routing is inlined (heads decide, bodies follow their worm) —
        # this method dominates the simulator's hot loop.  Request lists
        # live in reusable per-output slots; ``used_ports`` preserves
        # first-seen output order (the grant order of the dict-based
        # implementation this replaces).
        req_slots = self._req_slots
        used_ports: list[int] = []
        min_ready = NEVER
        output_lock = self.output_lock
        worm_route = self._worm_route
        routing = self.routing
        route_cache = self._route_cache if self._routing_static else None
        for in_port, vc, buf in self._lanes:
            if not buf:
                continue
            flit = buf[0]
            ready = flit.ready_cycle
            if ready > cycle:
                if ready < min_ready:
                    min_ready = ready
                continue
            if flit.is_head:
                if route_cache is not None:
                    dst = flit.dst
                    out_port = route_cache.get(dst)
                    if out_port is None:
                        out_port = routing.route(self, dst)
                        route_cache[dst] = out_port
                else:
                    out_port = routing.route(self, flit.dst)
                if output_lock:
                    holder = output_lock.get((out_port, vc))
                    if holder is not None and holder != (in_port, vc):
                        continue  # (output, vc) busy with another worm
                if not flit.is_tail:
                    worm_route[flit.pid] = out_port
            else:
                out_port = worm_route.get(flit.pid)
                if out_port is None:  # pragma: no cover - protocol guard
                    raise RuntimeError(
                        f"router {self.node_id}: body flit of packet "
                        f"{flit.pid} arrived before its head"
                    )
                if output_lock.get((out_port, vc)) != (in_port, vc):
                    continue  # body/tail may only follow their own worm
            req = req_slots[out_port]
            if req is None:
                req_slots[out_port] = [(in_port, vc)]
                used_ports.append(out_port)
            else:
                req.append((in_port, vc))
        if not used_ports:
            self.poll_again_at = min_ready
            return []

        moves: list[tuple[int, int, Flit]] = []
        buffers = self.buffers
        credits = self.credits
        rr = self._rr
        stats = self.stats
        for out_port in used_ports:
            cands = req_slots[out_port]
            req_slots[out_port] = None
            # filter by downstream credit on each candidate's VC
            port_credits = credits[out_port]
            if len(cands) == 1:
                chosen_port, chosen_vc = cands[0]
                if port_credits[chosen_vc] <= 0:
                    continue
            else:
                cands = [c for c in cands if port_credits[c[1]] > 0]
                if not cands:
                    continue
                if len(cands) == 1:
                    chosen_port, chosen_vc = cands[0]
                else:
                    stats.arbitration_conflicts += len(cands) - 1
                    # round-robin among requesters (by input port, then vc)
                    start = rr[out_port]
                    chosen_port, chosen_vc = min(
                        cands, key=lambda c: ((c[0] - start) % 5, c[1])
                    )
            rr[out_port] = (chosen_port + 1) % 5
            buf = buffers[chosen_port][chosen_vc]
            flit = buf.popleft()
            if not buf:
                self._occupied_lanes -= 1
            # wormhole lock maintenance
            if flit.is_tail:
                output_lock.pop((out_port, chosen_vc), None)
                worm_route.pop(flit.pid, None)
            elif flit.is_head:
                output_lock[(out_port, chosen_vc)] = (chosen_port, chosen_vc)
            port_credits[chosen_vc] -= 1
            moves.append((chosen_port, out_port, flit))
        # a grant changes state (pops, locks, credits): poll next cycle;
        # all-candidates-starved sleeps until the earliest timed flit
        # (credit returns rearm the hint from outside)
        if moves:
            stats.flits_forwarded += len(moves)
            self.poll_again_at = cycle + 1
        else:
            self.poll_again_at = min_ready
        return moves

    def return_credit(self, out_port: int, vc: int = 0) -> None:
        """Downstream consumed a flit from the buffer we feed."""
        if self.credits[out_port][vc] >= self.buffer_depth:
            raise RuntimeError(
                f"router {self.node_id}: credit overflow on port "
                f"{PORT_NAMES[out_port]} vc{vc}"
            )
        self.credits[out_port][vc] += 1
        # a credit return may unblock a starved candidate: rearm the hint
        self.poll_again_at = 0

    @property
    def occupancy(self) -> int:
        return sum(len(b) for port in self.buffers for b in port)

    def port_occupancy(self, in_port: int) -> int:
        return sum(len(b) for b in self.buffers[in_port])

    def credit_total(self, out_port: int) -> int:
        """Aggregate downstream credit (used by adaptive routing)."""
        return sum(self.credits[out_port])
