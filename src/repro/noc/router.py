"""Input-buffered wormhole router with virtual channels (Noxim-style).

Five ports (North, South, East, West, Local).  Each input port owns
``num_vcs`` FIFOs of ``buffer_depth`` flits; credit-based flow control
tracks free slots in the *downstream* input buffer per (port, VC).
Routing is pluggable (:mod:`repro.noc.routing`; dimension-order XY by
default, deadlock-free on a mesh).  Switch allocation is per-output
round-robin among requesting (input, VC) pairs, with wormhole locks:
once a head flit claims an output on its VC, body flits of the same
packet keep that (output, VC) until the tail releases it.

Virtual channels remove head-of-line blocking: a worm stalled on one VC
no longer blocks packets queued behind it on another VC of the same
physical port.  Packets keep one VC end to end (assigned at injection
from the packet id), which avoids per-hop VC allocation while retaining
most of the HoL-blocking benefit — the ``benchmarks/test_ablations.py``
VC sweep quantifies it.

The router pipeline depth (route computation + VC/switch allocation +
traversal) is modelled by stamping each arriving flit with a
``ready_cycle``; a flit is only eligible for switch allocation
``pipeline_depth`` cycles after it entered the buffer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .flit import Flit

__all__ = ["PORT_NAMES", "LOCAL", "Router", "RouterStats"]

# port indices
NORTH, SOUTH, EAST, WEST, LOCAL = range(5)
PORT_NAMES = ("north", "south", "east", "west", "local")


@dataclass
class RouterStats:
    flits_forwarded: int = 0
    buffer_writes: int = 0
    arbitration_conflicts: int = 0


class Router:
    """One mesh router.

    Coordinates ``(x, y)``: x grows eastward, y grows southward; node id
    is ``y * width + x``.
    """

    def __init__(
        self,
        node_id: int,
        width: int,
        height: int,
        buffer_depth: int = 4,
        pipeline_depth: int = 2,
        routing=None,
        num_vcs: int = 1,
    ) -> None:
        if buffer_depth < 1 or pipeline_depth < 1:
            raise ValueError("buffer_depth and pipeline_depth must be >= 1")
        if num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        self.node_id = node_id
        self.width = width
        self.height = height
        self.x = node_id % width
        self.y = node_id // width
        self.buffer_depth = buffer_depth
        self.pipeline_depth = pipeline_depth
        self.num_vcs = num_vcs
        if routing is None:
            from .routing import XYRouting

            routing = XYRouting()
        self.routing = routing
        #: buffers[port][vc] -> FIFO of flits
        self.buffers: list[list[deque[Flit]]] = [
            [deque() for _ in range(num_vcs)] for _ in range(5)
        ]
        #: credits[out_port][vc] = free slots in the downstream buffer
        self.credits: list[list[int]] = [
            [buffer_depth] * num_vcs for _ in range(5)
        ]
        #: wormhole reservation: (output port, vc) -> (input port, vc)
        self.output_lock: dict[tuple[int, int], tuple[int, int]] = {}
        #: head-chosen output per in-flight packet, so body/tail flits of
        #: a worm follow their head even under adaptive routing
        self._worm_route: dict[int, int] = {}
        #: round-robin pointer per output port
        self._rr: list[int] = [0] * 5
        self.stats = RouterStats()

    # -- geometry ----------------------------------------------------------
    def route(self, dst: int) -> int:
        """Output port for ``dst`` under this router's routing algorithm."""
        return self.routing.route(self, dst)

    def _route_flit(self, flit: Flit) -> int:
        """Route with wormhole consistency: heads decide, bodies follow."""
        pid = flit.packet.pid
        if flit.is_head:
            port = self.routing.route(self, flit.dst)
            if not flit.is_tail:
                self._worm_route[pid] = port
            return port
        port = self._worm_route.get(pid)
        if port is None:  # pragma: no cover - protocol violation guard
            raise RuntimeError(
                f"router {self.node_id}: body flit of packet {pid} arrived "
                "before its head"
            )
        return port

    # -- flow control --------------------------------------------------------
    def can_accept(self, in_port: int, vc: int = 0) -> bool:
        return len(self.buffers[in_port][vc]) < self.buffer_depth

    def accept(self, flit: Flit, in_port: int, cycle: int) -> None:
        """Enqueue an arriving flit (link traversal completes this cycle)."""
        if not self.can_accept(in_port, flit.vc):
            raise RuntimeError(
                f"router {self.node_id}: buffer overflow on port "
                f"{PORT_NAMES[in_port]} vc{flit.vc} (credit protocol violated)"
            )
        flit.ready_cycle = cycle + self.pipeline_depth
        self.buffers[in_port][flit.vc].append(flit)
        self.stats.buffer_writes += 1

    # -- switch allocation ----------------------------------------------------
    def plan_moves(self, cycle: int) -> list[tuple[int, int, Flit]]:
        """Select up to one flit per output port to forward this cycle.

        Returns ``(in_port, out_port, flit)`` triples; the caller commits
        them (two-phase update keeps routers order-independent).  Credits
        are decremented here so a single cycle never oversubscribes a
        downstream buffer.
        """
        # collect head-of-line candidates per output across (port, vc)
        requests: dict[int, list[tuple[int, int]]] = {}
        for in_port in range(5):
            for vc in range(self.num_vcs):
                buf = self.buffers[in_port][vc]
                if not buf:
                    continue
                flit = buf[0]
                if flit.ready_cycle > cycle:
                    continue
                out_port = self._route_flit(flit)
                holder = self.output_lock.get((out_port, vc))
                if flit.is_head:
                    if holder is not None and holder != (in_port, vc):
                        continue  # (output, vc) busy with another worm
                else:
                    if holder != (in_port, vc):
                        continue  # body/tail may only follow their own worm
                requests.setdefault(out_port, []).append((in_port, vc))

        moves: list[tuple[int, int, Flit]] = []
        for out_port, cands in requests.items():
            # filter by downstream credit on each candidate's VC
            cands = [c for c in cands if self.credits[out_port][c[1]] > 0]
            if not cands:
                continue
            if len(cands) > 1:
                self.stats.arbitration_conflicts += len(cands) - 1
            # round-robin among requesters (by input port, then vc)
            start = self._rr[out_port]
            chosen_port, chosen_vc = min(
                cands, key=lambda c: ((c[0] - start) % 5, c[1])
            )
            self._rr[out_port] = (chosen_port + 1) % 5
            flit = self.buffers[chosen_port][chosen_vc].popleft()
            # wormhole lock maintenance
            if flit.is_head and not flit.is_tail:
                self.output_lock[(out_port, chosen_vc)] = (chosen_port, chosen_vc)
            if flit.is_tail:
                self.output_lock.pop((out_port, chosen_vc), None)
                self._worm_route.pop(flit.packet.pid, None)
            self.credits[out_port][chosen_vc] -= 1
            self.stats.flits_forwarded += 1
            moves.append((chosen_port, out_port, flit))
        return moves

    def return_credit(self, out_port: int, vc: int = 0) -> None:
        """Downstream consumed a flit from the buffer we feed."""
        if self.credits[out_port][vc] >= self.buffer_depth:
            raise RuntimeError(
                f"router {self.node_id}: credit overflow on port "
                f"{PORT_NAMES[out_port]} vc{vc}"
            )
        self.credits[out_port][vc] += 1

    @property
    def occupancy(self) -> int:
        return sum(len(b) for port in self.buffers for b in port)

    def port_occupancy(self, in_port: int) -> int:
        return sum(len(b) for b in self.buffers[in_port])

    def credit_total(self, out_port: int) -> int:
        """Aggregate downstream credit (used by adaptive routing)."""
        return sum(self.credits[out_port])
