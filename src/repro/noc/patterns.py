"""Synthetic traffic patterns and load-latency characterization.

The paper's NoC substrate is a Noxim-class simulator; the standard way
to validate such a simulator is the latency-vs-injection-rate curve
under the classic synthetic patterns (uniform random, transpose,
bit-reversal, hotspot).  This module provides those patterns, a
Bernoulli-injection traffic node, and :func:`characterize`, which sweeps
the injection rate and reports mean packet latency and delivered
throughput until saturation — the curves every NoC paper shows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .flit import Packet, TrafficClass
from .mesh import Mesh
from .simulator import Node, NocSimulator

__all__ = [
    "uniform_random",
    "transpose",
    "bit_reversal",
    "hotspot",
    "PatternNode",
    "LoadPoint",
    "characterize",
]


def uniform_random(src: int, num_nodes: int, rng: np.random.Generator) -> int:
    """Destination uniformly among the other nodes."""
    dst = int(rng.integers(0, num_nodes - 1))
    return dst if dst < src else dst + 1


def transpose(src: int, num_nodes: int, rng: np.random.Generator) -> int:
    """(x, y) -> (y, x) on a square mesh; self-pairs fall back to uniform."""
    side = int(round(num_nodes**0.5))
    if side * side != num_nodes:
        raise ValueError("transpose pattern needs a square mesh")
    x, y = src % side, src // side
    dst = x * side + y
    return dst if dst != src else uniform_random(src, num_nodes, rng)


def bit_reversal(src: int, num_nodes: int, rng: np.random.Generator) -> int:
    """Reverse the node-id bits; self-pairs fall back to uniform."""
    bits = max(1, (num_nodes - 1).bit_length())
    dst = int(f"{src:0{bits}b}"[::-1], 2) % num_nodes
    return dst if dst != src else uniform_random(src, num_nodes, rng)


def hotspot(src: int, num_nodes: int, rng: np.random.Generator,
            spot: int = 0, fraction: float = 0.3) -> int:
    """A fraction of traffic converges on one node (memory-like)."""
    if src != spot and rng.random() < fraction:
        return spot
    return uniform_random(src, num_nodes, rng)


class PatternNode(Node):
    """Bernoulli packet injection following a destination pattern.

    ``rate`` is the per-cycle probability of generating one
    ``payload_bytes`` packet during the warm/measurement window.

    The per-cycle Bernoulli coins are drawn **vectorized at
    construction** (one ``rng.random(duration)`` call) and reduced to
    the list of fire cycles.  The injection *process* is unchanged —
    i.i.d. per-cycle coins, same seed-reproducibility — but the node
    only needs stepping at its precomputed fire cycles, which
    :meth:`next_event_cycle` publishes so the simulator's node
    scheduler can skip it everywhere else.  Destination draws (and any
    pattern-internal draws) still happen at fire time, in fire order.
    """

    def __init__(
        self,
        node_id: int,
        num_nodes: int,
        pattern,
        rate: float,
        duration: int,
        payload_bytes: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__(node_id)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be a probability")
        self.num_nodes = num_nodes
        self.pattern = pattern
        self.rate = rate
        self.duration = duration
        self.payload_bytes = payload_bytes
        self.rng = np.random.default_rng(seed * 1009 + node_id)
        #: window cycles whose Bernoulli coin came up heads
        self._fires: list[int] = np.flatnonzero(
            self.rng.random(duration) < rate
        ).tolist()
        self._fire_pos = 0
        self.generated = 0
        self.received: int = 0

    def step(self, cycle: int) -> None:
        fires = self._fires
        pos = self._fire_pos
        # tolerate being stepped on non-fire cycles: the reference
        # stepper calls every node every cycle
        if pos < len(fires) and fires[pos] <= cycle:
            self._fire_pos = pos + 1
            dst = self.pattern(self.node_id, self.num_nodes, self.rng)
            self.send(
                Packet(self.node_id, dst, self.payload_bytes, TrafficClass.REQUEST),
                cycle,
            )
            self.generated += 1

    def on_packet(self, packet: Packet, cycle: int) -> None:
        self.received += 1

    @property
    def idle(self) -> bool:
        # hold the liveness token until the last fire has been injected;
        # in-flight flits then keep the simulator running on their own
        return self._fire_pos >= len(self._fires)

    def next_event_cycle(self, cycle: int) -> int | None:
        fires = self._fires
        pos = self._fire_pos
        if pos >= len(fires):
            return None  # window exhausted: never acts again
        return fires[pos]


@dataclass(frozen=True)
class LoadPoint:
    injection_rate: float  # packets / node / cycle offered
    mean_latency: float  # cycles
    throughput: float  # packets / node / cycle delivered
    delivered: int


def characterize(
    pattern,
    rates,
    mesh_factory=Mesh,
    duration: int = 2000,
    payload_bytes: int = 32,
    seed: int = 0,
    max_cycles: int = 200_000,
) -> list[LoadPoint]:
    """Latency/throughput vs offered load for one traffic pattern.

    ``mesh_factory`` builds a *fresh* mesh per load point (router state
    is not reusable across runs).
    """
    points = []
    for rate in rates:
        mesh_inst = mesh_factory()
        sim = NocSimulator(mesh_inst)
        nodes = [
            PatternNode(
                i,
                mesh_inst.num_nodes,
                pattern,
                rate=float(rate),
                duration=duration,
                payload_bytes=payload_bytes,
                seed=seed,
            )
            for i in range(mesh_inst.num_nodes)
        ]
        for n in nodes:
            sim.attach_node(n)
        stats = sim.run(max_cycles=max_cycles)
        delivered = stats.packets_delivered
        points.append(
            LoadPoint(
                injection_rate=float(rate),
                mean_latency=stats.mean_packet_latency,
                throughput=delivered / (mesh_inst.num_nodes * duration),
                delivered=delivered,
            )
        )
    return points
