"""Processing-element node.

Each PE (Fig. 7 of the paper) has 8 KB of local memory, eight parallel
lanes of 8-way vector MAC units (64 MACs/cycle), and — in the compressed
configuration — decompression units in front of the MAC datapath.

For one layer, a PE executes a :class:`PETask`: wait until the expected
weight and ifmap bytes have arrived from the memory interfaces, spend
``max(compute_cycles, decompress_cycles)`` cycles in the datapath
(decompression is pipelined with the MACs, so the slower of the two sets
the pace), then stream the output feature map back to its memory
interface.  Event counters feed the energy model.

With ``streamed=True`` (the fused decode+MAC timing of
:mod:`repro.core.provider`), the datapath additionally overlaps the
*fetch*: decoding starts on the first arriving input tile instead of
waiting for the whole compressed tile to land in local SRAM, so
datapath cycles elapsed while the fetch tail is still in flight are
hidden.  The hidden cycles are counted in
``NocStats.decode_overlap_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .flit import Packet, TrafficClass
from .simulator import Node

__all__ = ["PEConfig", "PETask", "ProcessingElement"]


@dataclass(frozen=True)
class PEConfig:
    local_memory_bytes: int = 8 * 1024
    #: 8 lanes x 8-way dot product
    macs_per_cycle: int = 64
    #: transfers larger than this are split into multiple packets
    max_packet_bytes: int = 256


@dataclass
class PETask:
    """One layer's work assignment for one PE."""

    expect_weight_bytes: int
    expect_ifmap_bytes: int
    ofmap_bytes: int
    ofmap_dst: int
    compute_cycles: int
    decompress_cycles: int = 0
    macs: int = 0
    #: demand mode: the PE requests its inputs from this memory
    #: interface instead of relying on a static schedule (None = static)
    request_mc: int | None = None
    #: streamed-decode timing: the fused decode+MAC pipeline starts on
    #: the first arriving input tile, so datapath cycles elapsed while
    #: the rest of the fetch is still in flight are hidden instead of
    #: serialized after it (False = classic materialize-then-compute)
    streamed: bool = False

    @property
    def datapath_cycles(self) -> int:
        return max(self.compute_cycles, self.decompress_cycles)


class ProcessingElement(Node):
    def __init__(self, node_id: int, config: PEConfig | None = None) -> None:
        super().__init__(node_id)
        self.config = config if config is not None else PEConfig()
        self.task: PETask | None = None
        self._got_weight = 0
        self._got_ifmap = 0
        self._compute_until: int | None = None
        self._first_input_cycle: int | None = None
        self._sent_output = False
        self._requested = False
        self.busy_cycles = 0
        self.local_mem_bytes_accessed = 0
        self.macs_done = 0

    def assign(self, task: PETask) -> None:
        if self.task is not None and not self._done():
            raise RuntimeError(f"PE {self.node_id}: task already in flight")
        self.task = task
        self._got_weight = 0
        self._got_ifmap = 0
        self._compute_until = None
        self._first_input_cycle: int | None = None
        self._requested = task.request_mc is None
        self._sent_output = task.ofmap_bytes == 0
        if self.sim is not None:
            # the node may be parked from a previous task's lifecycle
            self.sim.wake_node(self.node_id)

    def _done(self) -> bool:
        return self.task is None or (
            self._sent_output and self._compute_until is not None
        )

    def _inputs_ready(self) -> bool:
        assert self.task is not None
        return (
            self._got_weight >= self.task.expect_weight_bytes
            and self._got_ifmap >= self.task.expect_ifmap_bytes
        )

    # -- node protocol -----------------------------------------------------
    def on_packet(self, packet: Packet, cycle: int) -> None:
        if self.task is None:
            return
        # every arriving byte is written to (and later read from) local SRAM
        self.local_mem_bytes_accessed += 2 * packet.payload_bytes
        if packet.traffic_class is TrafficClass.WEIGHTS:
            self._got_weight += packet.payload_bytes
        elif packet.traffic_class is TrafficClass.IFMAP:
            self._got_ifmap += packet.payload_bytes
        else:
            return
        if self._first_input_cycle is None:
            self._first_input_cycle = cycle

    def step(self, cycle: int) -> None:
        task = self.task
        if task is None or self._sent_output and self._compute_until is not None:
            return
        if not self._requested:
            # demand mode: one request packet per expected input stream
            for nbytes, tclass in (
                (task.expect_weight_bytes, TrafficClass.WEIGHTS),
                (task.expect_ifmap_bytes, TrafficClass.IFMAP),
            ):
                if nbytes > 0:
                    self.send(
                        Packet(
                            src=self.node_id,
                            dst=task.request_mc,
                            payload_bytes=8,
                            traffic_class=TrafficClass.REQUEST,
                            tag=(str(tclass), nbytes),
                        ),
                        cycle,
                    )
            self._requested = True
            return
        if self._compute_until is None:
            if self._inputs_ready():
                dur = max(task.datapath_cycles, 1)
                if task.streamed and self._first_input_cycle is not None:
                    # fused decode+MAC: the datapath has been consuming
                    # tiles since the first input arrived, so the cycles
                    # elapsed during the fetch tail are already done
                    overlap = min(cycle - self._first_input_cycle, dur - 1)
                    if overlap > 0:
                        dur -= overlap
                        if self.sim is not None:
                            self.sim.stats.decode_overlap_cycles += overlap
                self._compute_until = cycle + dur
                self.busy_cycles += dur
                self.macs_done += task.macs
            return
        if cycle >= self._compute_until and not self._sent_output:
            remaining = task.ofmap_bytes
            chunk = self.config.max_packet_bytes
            # output writes hit local SRAM once on the way out
            self.local_mem_bytes_accessed += task.ofmap_bytes
            while remaining > 0:
                n = min(chunk, remaining)
                self.send(
                    Packet(
                        src=self.node_id,
                        dst=task.ofmap_dst,
                        payload_bytes=n,
                        traffic_class=TrafficClass.OFMAP,
                    ),
                    cycle,
                )
                remaining -= n
            self._sent_output = True

    @property
    def idle(self) -> bool:
        if self.task is None:
            return True
        if not self._requested:
            return False  # demand requests are still to be issued
        if not self._inputs_ready():
            # waiting on the network; the MCs/NICs hold the liveness token
            return True
        return self._compute_until is not None and self._sent_output

    def next_event_cycle(self, cycle: int) -> int | None:
        """Cycle-skipping hint: the compute timer is the only timed wait.

        Request issue and compute start want a step immediately; while
        the datapath runs, nothing happens until ``_compute_until``;
        waiting on inputs (or having finished) needs no step at all —
        a packet delivery re-activates the network anyway.
        """
        task = self.task
        if task is None or (self._sent_output and self._compute_until is not None):
            return None
        if not self._requested:
            return cycle
        if self._compute_until is None:
            return cycle if self._inputs_ready() else None
        return self._compute_until
