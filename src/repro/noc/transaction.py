"""Transaction-level fast model of the accelerator.

The flit-level simulator is the ground truth but costs ~1 us of host
time per flit-hop; a VGG-16 inference moves ~10^8 flits, far beyond
what is practical in pure Python.  This model evaluates the *same*
:class:`~repro.mapping.schedule.LayerSchedule` analytically, following
the pipeline structure the flit simulator exhibits:

* each memory channel serves its read chunks back to back, streaming
  data into the NoC at link rate (the NoC never backlogs because the
  per-MC injection bandwidth equals the DRAM channel bandwidth), so the
  read phase ends ~ one chunk-drain + route transit after the channel
  goes idle;
* PEs compute once their inputs are in (the slowest-fed PE bounds the
  phase);
* write-back serializes on the memory channels again.

Latency components are attributed exactly like the paper's Fig. 2/10
stacked bars: memory (DRAM channel busy), communication (serialization
+ transit not hidden behind DRAM), computation (PE datapath).
Agreement with the flit-level simulator is validated in
``tests/integration/test_transaction_vs_flit.py`` and quantified by the
calibration benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mapping.schedule import DRAM_CHUNK_BYTES, LayerSchedule
from .flit import FLIT_BYTES
from .memory_if import DramConfig
from .mesh import Mesh

__all__ = ["LatencyComponents", "TransactionModel"]


@dataclass(frozen=True)
class LatencyComponents:
    memory: int
    communication: int
    computation: int

    @property
    def total(self) -> int:
        return self.memory + self.communication + self.computation

    def __add__(self, other: "LatencyComponents") -> "LatencyComponents":
        return LatencyComponents(
            self.memory + other.memory,
            self.communication + other.communication,
            self.computation + other.computation,
        )


def _flits(nbytes: int, max_packet_bytes: int) -> int:
    """Payload + head flits for a transfer split into packets."""
    if nbytes <= 0:
        return 0
    packets = -(-nbytes // max_packet_bytes)
    return -(-nbytes // FLIT_BYTES) + packets


class TransactionModel:
    def __init__(
        self,
        mesh: Mesh | None = None,
        dram: DramConfig | None = None,
        dram_chunk_bytes: int = DRAM_CHUNK_BYTES,
    ) -> None:
        self.mesh = mesh or Mesh()
        self.dram = dram if dram is not None else DramConfig()
        self.chunk = dram_chunk_bytes

    # -- latency -----------------------------------------------------------
    def layer_latency(self, schedule: LayerSchedule) -> LatencyComponents:
        pipe = self.mesh.routers[0].pipeline_depth

        # read phase: per-channel busy time (shared operands read once);
        # with on-chip replication the MC's injection link (1 flit/cycle)
        # can out-demand the DRAM channel, so the phase is bounded by the
        # slower of the two per MC
        read_busy: dict[int, int] = {}
        inject_flits: dict[int, int] = {}
        max_hops = 0
        for job in schedule.dram_reads(self.chunk):
            read_busy[job.mc] = read_busy.get(job.mc, 0) + self.dram.service_cycles(
                job.nbytes
            )
            inject_flits[job.mc] = inject_flits.get(job.mc, 0) + len(job.dsts) * _flits(
                job.nbytes, self.dram.max_packet_bytes
            )
            for dst in job.dsts:
                max_hops = max(max_hops, self.mesh.hop_count(job.mc, dst))
        t_read = max(
            (max(read_busy[mc], inject_flits.get(mc, 0)) for mc in read_busy),
            default=0,
        )

        # write phase: ofmap packets serialize on their channel
        write_busy: dict[int, int] = {}
        for pe, (_, _, o_bytes, _, _, _) in schedule.pe_work.items():
            if o_bytes <= 0:
                continue
            mc = self.mesh.nearest_corner(pe)
            remaining = o_bytes
            while remaining > 0:
                n = min(self.dram.max_packet_bytes, remaining)
                write_busy[mc] = write_busy.get(mc, 0) + self.dram.service_cycles(n)
                remaining -= n
            max_hops = max(max_hops, self.mesh.hop_count(pe, mc))
        t_write = max(write_busy.values(), default=0)

        # communication not hidden behind DRAM: drain of the last chunk,
        # route transit for reads and writes, and the write serialization
        # of the slowest PE's ofmap into the network
        last_chunk_flits = _flits(
            min(self.chunk, max((t.nbytes for t in schedule.transfers), default=0)),
            self.dram.max_packet_bytes,
        )
        max_ofmap_flits = max(
            (_flits(w[2], self.dram.max_packet_bytes) for w in schedule.pe_work.values()),
            default=0,
        )
        t_comm = last_chunk_flits + max_ofmap_flits + 2 * max_hops * (pipe + 1)

        t_comp = max(
            (max(compute, decomp) for (_, _, _, compute, decomp, _) in schedule.pe_work.values()),
            default=0,
        )
        if schedule.streamed and t_comp > 0:
            # streamed decode: the fused decode+MAC pipeline starts on
            # the first arriving tile, so datapath cycles elapsed during
            # the read phase are hidden — only the tail past the fetch
            # is exposed (the first-tile ramp is already part of
            # ``t_comm``).  Mirrors the flit-level PE's streamed timing.
            t_comp = max(t_comp - t_read, 1)
        return LatencyComponents(
            memory=t_read + t_write, communication=t_comm, computation=t_comp
        )

    # -- event counts (for the energy model) --------------------------------
    def layer_events(self, schedule: LayerSchedule) -> dict[str, int]:
        flit_hops = 0
        nic_flits = 0
        for t in schedule.transfers:
            f = _flits(t.nbytes, self.dram.max_packet_bytes)
            flit_hops += f * self.mesh.hop_count(t.mc, t.pe)
            nic_flits += 2 * f
        local_mem = 0
        main_read = schedule.total_dram_read_bytes
        main_write = 0
        macs = 0
        decompressed = schedule.decompressed_weights_per_pe * len(schedule.pe_work)
        for pe, (w, i, o, _, _, m) in schedule.pe_work.items():
            if o > 0:
                f = _flits(o, self.dram.max_packet_bytes)
                flit_hops += f * self.mesh.hop_count(pe, self.mesh.nearest_corner(pe))
                nic_flits += 2 * f
            local_mem += 2 * (w + i) + o
            main_write += o
            macs += m
        return {
            "flit_hops": flit_hops,
            "nic_flits": nic_flits,
            "local_mem_bytes": local_mem,
            "main_mem_bytes": main_read + main_write,
            "macs": macs,
            "decompressed_weights": decompressed,
        }
