"""Flit-level cycle-accurate mesh NoC simulator (Noxim-style).

Components: :mod:`flit` (packets/flits), :mod:`router` (wormhole, XY,
credits), :mod:`mesh` (topology), :mod:`nic` (inject/eject),
:mod:`memory_if` (DRAM-channel corner nodes), :mod:`pe` (processing
elements), :mod:`simulator` (cycle loop) and :mod:`transaction` (the
calibrated fast model used for the paper's large networks).
"""

from .flit import FLIT_BYTES, Flit, FlitType, Packet, TrafficClass, packetize
from .memory_if import DramConfig, MemoryInterface, ReadJob
from .mesh import Mesh
from .nic import NetworkInterface
from .pe import PEConfig, PETask, ProcessingElement
from .router import Router
from .simulator import Node, NocSimulator, NocStats
from .topology import ChipletMesh, build_mesh

__all__ = [
    "FLIT_BYTES",
    "Flit",
    "FlitType",
    "Packet",
    "TrafficClass",
    "packetize",
    "DramConfig",
    "MemoryInterface",
    "ReadJob",
    "Mesh",
    "NetworkInterface",
    "PEConfig",
    "PETask",
    "ProcessingElement",
    "Router",
    "Node",
    "NocSimulator",
    "NocStats",
    "ChipletMesh",
    "build_mesh",
]
