"""Flits and packets for the wormhole-switched mesh NoC.

The paper's accelerator uses 64-bit links at 1 GHz, so one flit carries
8 bytes of payload.  A message of ``B`` bytes becomes a packet of
``ceil(B / 8)`` payload flits plus a head flit carrying routing/control
information (Noxim convention).  Wormhole switching reserves a path
port-by-port as the head advances; body flits follow in order and the
tail releases the reservation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["FLIT_BYTES", "FlitType", "TrafficClass", "Packet", "Flit", "packetize"]

#: 64-bit links -> 8 payload bytes per flit
FLIT_BYTES = 8


class FlitType(Enum):
    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    #: single-flit packet: head and tail at once
    HEADTAIL = "headtail"


class TrafficClass(str, Enum):
    """What a packet carries; used for per-class statistics."""

    WEIGHTS = "weights"
    IFMAP = "ifmap"
    OFMAP = "ofmap"
    REQUEST = "request"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One NoC message."""

    src: int
    dst: int
    payload_bytes: int
    traffic_class: TrafficClass
    #: opaque tag the destination node uses to match the transfer
    tag: object = None
    pid: int = field(default_factory=lambda: next(_packet_ids))
    injected_cycle: int = -1
    delivered_cycle: int = -1
    #: set by fault injection when any of the packet's flits was hit in
    #: flight or its data was corrupted at the memory interface
    corrupted: bool = False

    @property
    def num_flits(self) -> int:
        """Head flit + payload flits."""
        payload = -(-self.payload_bytes // FLIT_BYTES) if self.payload_bytes else 0
        return 1 + payload

    @property
    def latency(self) -> int:
        if self.injected_cycle < 0 or self.delivered_cycle < 0:
            raise ValueError(f"packet {self.pid} not yet delivered")
        return self.delivered_cycle - self.injected_cycle


@dataclass(slots=True)
class Flit:
    """One link-width unit in flight.

    ``dst``/``pid``/``is_head``/``is_tail`` are precomputed at
    construction: the switch-allocation loop reads them once per
    buffered flit per cycle, and attribute loads are several times
    cheaper than the chained lookups / property + ``Enum`` membership
    tests they replace.
    """

    packet: Packet
    ftype: FlitType
    seq: int
    #: earliest cycle the current router may forward this flit
    #: (models the router pipeline depth)
    ready_cycle: int = 0
    #: virtual channel the packet rides end to end (assigned at injection)
    vc: int = 0
    dst: int = field(init=False)
    pid: int = field(init=False)
    is_head: bool = field(init=False)
    is_tail: bool = field(init=False)

    def __post_init__(self) -> None:
        packet = self.packet
        self.dst = packet.dst
        self.pid = packet.pid
        ftype = self.ftype
        self.is_head = ftype is FlitType.HEAD or ftype is FlitType.HEADTAIL
        self.is_tail = ftype is FlitType.TAIL or ftype is FlitType.HEADTAIL


def packetize(packet: Packet) -> list[Flit]:
    """Expand a packet into its flit train."""
    n = packet.num_flits
    if n == 1:
        return [Flit(packet, FlitType.HEADTAIL, 0)]
    flits = [Flit(packet, FlitType.HEAD, 0)]
    flits += [Flit(packet, FlitType.BODY, i) for i in range(1, n - 1)]
    flits.append(Flit(packet, FlitType.TAIL, n - 1))
    return flits
