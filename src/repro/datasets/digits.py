"""Procedural MNIST-like digit dataset.

The paper evaluates LeNet-5 (and, in Tab. III, AlexNet) on MNIST.  With
no network access we synthesize an equivalent task: 28x28 grayscale
images of the ten digits, rendered procedurally from stroke templates
and perturbed per sample (translation, elastic jitter, stroke thickness,
pixel noise).  The task has the properties the evaluation needs: it is
learnable to high accuracy by LeNet-class models, and perturbing the
trained weights degrades accuracy smoothly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DIGIT_SEGMENTS", "render_digit", "make_digits"]

# Seven-segment-plus-diagonals stroke templates on a [0,1]^2 canvas.
# Each stroke is ((x0, y0), (x1, y1)) in canvas coordinates.
_T, _M, _B = 0.15, 0.5, 0.85  # top / middle / bottom rows
_L, _R = 0.25, 0.75  # left / right columns

DIGIT_SEGMENTS: dict[int, list[tuple[tuple[float, float], tuple[float, float]]]] = {
    0: [((_L, _T), (_R, _T)), ((_R, _T), (_R, _B)), ((_R, _B), (_L, _B)),
        ((_L, _B), (_L, _T))],
    1: [((0.5, _T), (0.5, _B)), ((0.38, 0.28), (0.5, _T))],
    2: [((_L, _T), (_R, _T)), ((_R, _T), (_R, _M)), ((_R, _M), (_L, _M)),
        ((_L, _M), (_L, _B)), ((_L, _B), (_R, _B))],
    3: [((_L, _T), (_R, _T)), ((_R, _T), (_R, _B)), ((_L, _M), (_R, _M)),
        ((_L, _B), (_R, _B))],
    4: [((_L, _T), (_L, _M)), ((_L, _M), (_R, _M)), ((_R, _T), (_R, _B))],
    5: [((_R, _T), (_L, _T)), ((_L, _T), (_L, _M)), ((_L, _M), (_R, _M)),
        ((_R, _M), (_R, _B)), ((_R, _B), (_L, _B))],
    6: [((_R, _T), (_L, _T)), ((_L, _T), (_L, _B)), ((_L, _B), (_R, _B)),
        ((_R, _B), (_R, _M)), ((_R, _M), (_L, _M))],
    7: [((_L, _T), (_R, _T)), ((_R, _T), (0.45, _B))],
    8: [((_L, _T), (_R, _T)), ((_R, _T), (_R, _B)), ((_R, _B), (_L, _B)),
        ((_L, _B), (_L, _T)), ((_L, _M), (_R, _M))],
    9: [((_R, _M), (_L, _M)), ((_L, _M), (_L, _T)), ((_L, _T), (_R, _T)),
        ((_R, _T), (_R, _B))],
}


def render_digit(
    digit: int,
    rng: np.random.Generator,
    size: int = 28,
    thickness: float | None = None,
) -> np.ndarray:
    """Render one digit as a ``(size, size)`` float32 image in [0, 1].

    Strokes are drawn as soft capsules (distance-to-segment falloff)
    with random per-sample translation, rotation-like shear, stroke
    thickness and additive noise.
    """
    if digit not in DIGIT_SEGMENTS:
        raise ValueError(f"digit must be 0..9, got {digit}")
    thickness = thickness if thickness is not None else rng.uniform(0.045, 0.08)
    dx, dy = rng.uniform(-0.08, 0.08, size=2)
    shear = rng.uniform(-0.15, 0.15)
    scale = rng.uniform(0.85, 1.1)

    ys, xs = np.mgrid[0:size, 0:size]
    # canvas coords of each pixel, inverse-transformed
    px = (xs + 0.5) / size
    py = (ys + 0.5) / size
    cx = (px - 0.5 - dx) / scale + 0.5
    cy = (py - 0.5 - dy) / scale + 0.5
    cx = cx - shear * (cy - 0.5)

    img = np.zeros((size, size), dtype=np.float64)
    for (x0, y0), (x1, y1) in DIGIT_SEGMENTS[digit]:
        # jitter stroke endpoints slightly
        jx0, jy0, jx1, jy1 = rng.uniform(-0.02, 0.02, size=4)
        ax, ay = x0 + jx0, y0 + jy0
        bx, by = x1 + jx1, y1 + jy1
        vx, vy = bx - ax, by - ay
        norm2 = vx * vx + vy * vy + 1e-12
        t = np.clip(((cx - ax) * vx + (cy - ay) * vy) / norm2, 0.0, 1.0)
        dist2 = (cx - (ax + t * vx)) ** 2 + (cy - (ay + t * vy)) ** 2
        img = np.maximum(img, np.exp(-dist2 / (2 * thickness**2)))

    img += rng.normal(0.0, 0.08, size=img.shape)
    return np.clip(img, 0.0, 1.0).astype(np.float32)


def make_digits(
    n: int,
    seed: int = 0,
    size: int = 28,
    channels: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``n`` labelled digit images, shape ``(n, channels, size, size)``.

    Labels are balanced across the ten classes.  ``channels > 1``
    replicates the grayscale image (for proxies expecting RGB input).
    """
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % 10
    rng.shuffle(labels)
    x = np.empty((n, 1, size, size), dtype=np.float32)
    for i, d in enumerate(labels):
        x[i, 0] = render_digit(int(d), rng, size=size)
    if channels > 1:
        x = np.repeat(x, channels, axis=1)
    return x, labels.astype(np.int64)
