"""Synthetic ImageNet-like classification dataset.

Stands in for the ImageNet evaluation data of the paper's larger
models.  Each class is defined by a random smooth *prototype* image
(low-frequency random field) plus a class-specific texture; samples are
prototypes under random gain/shift, spatial jitter and additive noise.
Class separation is controlled so that small CNNs reach high but not
saturated accuracy — weight perturbation then moves accuracy smoothly,
which is the property the delta-sweep experiments need.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SynthImageConfig", "make_synth_images"]

from dataclasses import dataclass


@dataclass(frozen=True)
class SynthImageConfig:
    num_classes: int = 10
    size: int = 32
    channels: int = 3
    #: prototype low-pass kernel width (larger = smoother class shapes)
    smoothness: int = 7
    #: per-sample iid pixel noise std (sensor-noise-like; spatially
    #: averaged away by any convnet, so it mostly slows training)
    noise: float = 0.35
    #: per-sample *low-frequency* distortion std — nuisance structure at
    #: the same spatial scale as the class prototypes, which cannot be
    #: averaged away and therefore genuinely confuses classes.  This is
    #: the knob that moves trained accuracy off saturation.
    structured_noise: float = 0.0
    #: per-sample spatial jitter in pixels
    jitter: int = 2


def _smooth_field(rng: np.random.Generator, c: int, h: int, w: int, k: int) -> np.ndarray:
    """Low-frequency random field via box-blurred white noise."""
    field = rng.normal(size=(c, h + 2 * k, w + 2 * k))
    kernel = np.ones(k) / k
    # separable blur along both spatial axes
    field = np.apply_along_axis(lambda r: np.convolve(r, kernel, mode="same"), 1, field)
    field = np.apply_along_axis(lambda r: np.convolve(r, kernel, mode="same"), 2, field)
    field = field[:, k : k + h, k : k + w]
    field -= field.mean()
    std = field.std()
    return field / (std if std > 0 else 1.0)


def make_synth_images(
    n: int,
    config: SynthImageConfig | None = None,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``n`` labelled images, shape ``(n, C, H, W)``, float32.

    The class prototypes are derived deterministically from ``seed``, so
    train/test splits built from different sample seeds share classes:
    use :func:`train_test` in :mod:`repro.datasets.loaders` for that.
    """
    config = config if config is not None else SynthImageConfig()
    c, h, w = config.channels, config.size, config.size
    proto_rng = np.random.default_rng(seed ^ 0x5EED)
    prototypes = np.stack(
        [
            _smooth_field(proto_rng, c, h, w, config.smoothness)
            for _ in range(config.num_classes)
        ]
    )

    rng = np.random.default_rng(seed)
    labels = np.arange(n) % config.num_classes
    rng.shuffle(labels)
    x = _render(prototypes, labels, config, rng)
    return x, labels.astype(np.int64)


def _render(
    prototypes: np.ndarray,
    labels: np.ndarray,
    config: SynthImageConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Prototype + jitter + gain/shift + noise, standardized to unit std.

    Standardization keeps training numerically stable at any task
    difficulty: the class signal-to-noise ratio shrinks with
    ``config.noise`` but the input variance the network sees does not.
    """
    n = len(labels)
    c, h, w = prototypes.shape[1:]
    x = np.empty((n, c, h, w), dtype=np.float32)
    j = config.jitter
    beta = config.structured_noise
    scale = 1.0 / np.sqrt(1.0 + config.noise**2 + beta**2)
    for i, lab in enumerate(labels):
        img = prototypes[lab]
        if j > 0:
            sy, sx = rng.integers(-j, j + 1, size=2)
            img = np.roll(img, (int(sy), int(sx)), axis=(1, 2))
        gain = rng.uniform(0.8, 1.2)
        shift = rng.uniform(-0.1, 0.1)
        sample = gain * img + shift + rng.normal(0.0, config.noise, size=img.shape)
        if beta > 0:
            sample = sample + beta * _smooth_field(rng, c, h, w, config.smoothness)
        x[i] = scale * sample
    return x
