"""Dataset splits, batching and per-model dataset selection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .digits import make_digits
from .synthimage import SynthImageConfig, make_synth_images

__all__ = ["Split", "train_test", "batches", "dataset_for_input"]


@dataclass(frozen=True)
class Split:
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(self.y_train.max()) + 1


def train_test(
    kind: str,
    n_train: int,
    n_test: int,
    seed: int = 0,
    **kwargs,
) -> Split:
    """Build a train/test split of a synthetic dataset.

    ``kind`` is ``"digits"`` or ``"synth"``.  Train and test samples are
    drawn with different sample seeds but (for ``synth``) identical class
    prototypes, so the test set measures generalization, not
    memorization.
    """
    if kind == "digits":
        x_tr, y_tr = make_digits(n_train, seed=seed, **kwargs)
        x_te, y_te = make_digits(n_test, seed=seed + 10_000, **kwargs)
    elif kind == "synth":
        config = kwargs.pop("config", SynthImageConfig())
        if kwargs:
            raise TypeError(f"unexpected kwargs for synth dataset: {kwargs}")
        x_tr, y_tr = make_synth_images(n_train, config=config, seed=seed)
        # same prototype seed (= same classes), different sample stream
        x_te, y_te = _synth_same_classes(n_test, config, seed)
    else:
        raise ValueError(f"unknown dataset kind {kind!r}")
    return Split(x_tr, y_tr, x_te, y_te)


def _synth_same_classes(n: int, config: SynthImageConfig, seed: int):
    """Synth samples reusing ``seed``'s prototypes with fresh noise."""
    from .synthimage import _render, _smooth_field

    c, h, w = config.channels, config.size, config.size
    proto_rng = np.random.default_rng(seed ^ 0x5EED)
    prototypes = np.stack(
        [_smooth_field(proto_rng, c, h, w, config.smoothness) for _ in range(config.num_classes)]
    )
    rng = np.random.default_rng(seed + 77_777)
    labels = np.arange(n) % config.num_classes
    rng.shuffle(labels)
    x = _render(prototypes, labels, config, rng)
    return x, labels.astype(np.int64)


def batches(
    x: np.ndarray, y: np.ndarray, batch_size: int, seed: int | None = None
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (x, y) minibatches, shuffled when ``seed`` is given."""
    n = len(x)
    order = np.arange(n)
    if seed is not None:
        np.random.default_rng(seed).shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        yield x[idx], y[idx]


def dataset_for_input(
    input_shape: tuple[int, ...],
    n_train: int,
    n_test: int,
    seed: int = 0,
    num_classes: int = 10,
    noise: float = 0.35,
    structured_noise: float = 0.0,
) -> Split:
    """Pick the dataset matching a proxy model's input shape.

    Grayscale inputs get the 10-class digits task (top-1 regime, like
    the paper's LeNet-5); RGB inputs get the synthetic ImageNet-like
    task with ``num_classes`` classes (top-5 regime).  ``noise``
    controls the task difficulty of the synthetic task.
    """
    c = input_shape[0]
    size = input_shape[1]
    if c == 1:
        return train_test("digits", n_train, n_test, seed=seed, size=size)
    return train_test(
        "synth",
        n_train,
        n_test,
        seed=seed,
        config=SynthImageConfig(
            size=size,
            channels=c,
            num_classes=num_classes,
            noise=noise,
            structured_noise=structured_noise,
        ),
    )
