"""Synthetic datasets standing in for MNIST / ImageNet (see DESIGN.md)."""

from .digits import make_digits, render_digit
from .loaders import Split, batches, dataset_for_input, train_test
from .synthimage import SynthImageConfig, make_synth_images

__all__ = [
    "make_digits",
    "render_digit",
    "Split",
    "batches",
    "dataset_for_input",
    "train_test",
    "SynthImageConfig",
    "make_synth_images",
]
