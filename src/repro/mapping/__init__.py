"""Layer-to-accelerator mapping: tiling, traffic schedules, execution."""

from .accelerator import (
    Accelerator,
    AcceleratorConfig,
    LayerResult,
    ModelResult,
    SIMULATED_KINDS,
)
from .schedule import CompressionEffect, LayerSchedule, Transfer, build_schedule
from .tiling import LayerPlan, PEPlan, plan_layer

__all__ = [
    "Accelerator",
    "AcceleratorConfig",
    "LayerResult",
    "ModelResult",
    "SIMULATED_KINDS",
    "CompressionEffect",
    "LayerSchedule",
    "Transfer",
    "build_schedule",
    "LayerPlan",
    "PEPlan",
    "plan_layer",
]
