"""Top-level accelerator model: run a network, get latency and energy.

``Accelerator`` reproduces the paper's experimental platform (Sec.
IV-A): a 4x4 mesh at 1 GHz with 64-bit links, memory interfaces in the
corners, twelve PEs with 8 KB local memories and 8x8-way vector MACs,
back-annotated with 45 nm-class energy numbers.

Layers execute sequentially (the standard dataflow for this class of
accelerator and the one the paper's per-layer breakdown implies); each
layer can run on the flit-level cycle-accurate simulator
(``mode="flit"``, used for LeNet-5-scale networks and for validating
the fast model) or on the calibrated transaction-level model
(``mode="txn"``, used for the five large networks).

Batch-norm and element-wise activation layers are folded into the
preceding convolution (their inference-time work is absorbed into the
MAC datapath, the standard deployment transformation), and merge nodes
move no data of their own — branch traffic is already accounted by the
producing and consuming layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.codecs import Codec, CompressedBlob, get_codec
from ..core.compression import CompressedStream
from ..core.provider import WeightProvider, provider_for
from ..energy.model import EnergyAccount, EnergyBreakdown
from ..energy.params import EnergyParams
from ..nn.arch import ArchSpec, LayerKind, LayerSpec
from ..noc.memory_if import DramConfig, MemoryInterface, ReadJob
from ..noc.mesh import Mesh
from ..noc.pe import PEConfig, PETask, ProcessingElement
from ..noc.topology import ChipletMesh
from ..noc.simulator import NocSimulator
from ..noc.transaction import LatencyComponents, TransactionModel
from .schedule import CompressionEffect, LayerSchedule, build_schedule

__all__ = ["AcceleratorConfig", "LayerResult", "ModelResult", "Accelerator", "SIMULATED_KINDS"]

#: layer kinds that occupy the accelerator (see module docstring)
SIMULATED_KINDS = {
    LayerKind.CONV,
    LayerKind.DWCONV,
    LayerKind.FC,
    LayerKind.POOL,
    LayerKind.GLOBALPOOL,
}


@dataclass(frozen=True)
class AcceleratorConfig:
    mesh_width: int = 4
    mesh_height: int = 4
    buffer_depth: int = 4
    pipeline_depth: int = 2
    #: routing algorithm (see ``repro.noc.routing.ROUTING_ALGORITHMS``)
    routing: str = "xy"
    #: "mesh" (a flat ``mesh_width x mesh_height`` die) or "chiplet" (a
    #: Simba-like package of ``chiplet_size``-square dies tiling the
    #: same ``mesh_width x mesh_height`` node grid, with ``d2d_extra``
    #: additional cycles on every die-to-die link)
    topology: str = "mesh"
    chiplet_size: int = 4
    d2d_extra: int = 2
    dram: DramConfig = field(default_factory=DramConfig)
    pe: PEConfig = field(default_factory=PEConfig)
    energy: EnergyParams = field(default_factory=EnergyParams)
    #: parallel decompression units per PE (one per vector MAC lane)
    decompressor_units: int = 8
    #: conv traffic model: "paper" (single-pass) or "banded" (see
    #: repro.mapping.tiling)
    refetch_model: str = "paper"
    #: flit-level scheduling: False = static MC programs (default, what
    #: the transaction model assumes), True = PE-issued request packets
    demand_mode: bool = False
    #: streamed-decode timing: compression effects built by this
    #: accelerator overlap the fused decode+MAC pipeline with the weight
    #: fetch (see ``repro.noc.pe`` / ``repro.noc.transaction``)
    streamed_decode: bool = False
    #: drive flit-level runs with the retained naive reference stepper
    #: (``NocSimulator.step_reference``) instead of the activity-scheduled
    #: fast path — an ``identical``-class ablation hook: results must be
    #: bit-equal either way, only wall time may differ
    reference_stepper: bool = False


@dataclass
class LayerResult:
    layer_name: str
    latency: LatencyComponents
    energy: EnergyBreakdown
    events: dict[str, int]


@dataclass
class ModelResult:
    model_name: str
    layers: list[LayerResult]

    @property
    def total_latency(self) -> LatencyComponents:
        total = LatencyComponents(0, 0, 0)
        for l in self.layers:
            total = total + l.latency
        return total

    @property
    def total_energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for l in self.layers:
            total = total + l.energy
        return total


class Accelerator:
    def __init__(self, config: AcceleratorConfig | None = None) -> None:
        # None sentinel, not an instantiated default: a call-site default
        # would be evaluated once at import and shared (with its
        # DramConfig/PEConfig/EnergyParams children) by every instance
        self.config = config if config is not None else AcceleratorConfig()
        self._txn = TransactionModel(self._make_mesh(), self.config.dram)

    def _make_mesh(self) -> Mesh:
        c = self.config
        if c.topology == "chiplet":
            if (
                c.mesh_width % c.chiplet_size
                or c.mesh_height % c.chiplet_size
            ):
                raise ValueError(
                    f"chiplet topology needs mesh dims divisible by "
                    f"chiplet_size={c.chiplet_size}, got "
                    f"{c.mesh_width}x{c.mesh_height}"
                )
            return ChipletMesh(
                c.mesh_width // c.chiplet_size,
                c.mesh_height // c.chiplet_size,
                c.chiplet_size,
                c.chiplet_size,
                c.buffer_depth,
                c.pipeline_depth,
                routing=c.routing,
                d2d_extra=c.d2d_extra,
            )
        if c.topology != "mesh":
            raise ValueError(
                f"unknown topology {c.topology!r}; use 'mesh' or 'chiplet'"
            )
        return Mesh(
            c.mesh_width,
            c.mesh_height,
            c.buffer_depth,
            c.pipeline_depth,
            routing=c.routing,
        )

    # -- schedule construction ------------------------------------------------
    def schedule_layer(
        self,
        layer: LayerSpec,
        compression: CompressionEffect | None = None,
        weight_bytes_per_word: int = 4,
        batch: int = 1,
    ) -> LayerSchedule:
        return build_schedule(
            layer,
            self._txn.mesh,
            compression=compression,
            macs_per_cycle=self.config.pe.macs_per_cycle,
            local_mem_bytes=self.config.pe.local_memory_bytes,
            weight_bytes_per_word=weight_bytes_per_word,
            refetch_model=self.config.refetch_model,
            batch=batch,
        )

    # -- execution -------------------------------------------------------------
    def run_layer(self, schedule: LayerSchedule, mode: str = "txn") -> LayerResult:
        if mode == "txn":
            return self._run_layer_txn(schedule)
        if mode == "flit":
            return self._run_layer_flit(schedule)
        raise ValueError(f"unknown mode {mode!r}; use 'flit' or 'txn'")

    def _energy(self, events: dict[str, int], cycles: int) -> EnergyBreakdown:
        mesh = self._txn.mesh
        account = EnergyAccount(
            params=self.config.energy,
            num_routers=mesh.num_nodes,
            num_pes=len(mesh.pe_ids()),
            flit_hops=events["flit_hops"],
            nic_flits=events["nic_flits"],
            macs=events["macs"],
            decompressed_weights=events["decompressed_weights"],
            local_mem_bytes=events["local_mem_bytes"],
            main_mem_bytes=events["main_mem_bytes"],
            cycles=cycles,
        )
        return account.breakdown()

    def _run_layer_txn(self, schedule: LayerSchedule) -> LayerResult:
        latency = self._txn.layer_latency(schedule)
        events = self._txn.layer_events(schedule)
        return LayerResult(
            layer_name=schedule.layer_name,
            latency=latency,
            energy=self._energy(events, latency.total),
            events=events,
        )

    def _run_layer_flit(self, schedule: LayerSchedule) -> LayerResult:
        c = self.config
        sim = NocSimulator(self._make_mesh())
        mcs: dict[int, MemoryInterface] = {}
        for corner in sim.mesh.corner_ids():
            mc = MemoryInterface(corner, c.dram)
            mcs[corner] = mc
            sim.attach_node(mc)
        pes: dict[int, ProcessingElement] = {}
        for pe_id, (w, i, o, compute, decomp, macs) in schedule.pe_work.items():
            pe = ProcessingElement(pe_id, c.pe)
            pe.assign(
                PETask(
                    expect_weight_bytes=w,
                    expect_ifmap_bytes=i,
                    ofmap_bytes=o,
                    ofmap_dst=sim.mesh.nearest_corner(pe_id),
                    compute_cycles=compute,
                    decompress_cycles=decomp,
                    macs=macs,
                    request_mc=sim.mesh.nearest_corner(pe_id) if c.demand_mode else None,
                    streamed=schedule.streamed,
                )
            )
            pes[pe_id] = pe
            sim.attach_node(pe)
        if not c.demand_mode:
            for job in schedule.dram_reads():
                mcs[job.mc].schedule_read(
                    ReadJob(job.dsts, job.nbytes, job.traffic_class)
                )

        stats = sim.run(reference=c.reference_stepper)
        for pe_id, pe in pes.items():
            if not pe._inputs_ready():  # noqa: SLF001 - deliberate invariant check
                raise RuntimeError(
                    f"PE {pe_id} never received its inputs (schedule mismatch)"
                )

        t_mem = max((mc.busy_cycles for mc in mcs.values()), default=0)
        t_comp = max((pe.busy_cycles for pe in pes.values()), default=0)
        t_comm = max(stats.cycles - t_mem - t_comp, 0)
        latency = LatencyComponents(memory=t_mem, communication=t_comm, computation=t_comp)

        total_flits = stats.flits_delivered
        events = {
            "flit_hops": stats.flit_hops,
            "nic_flits": 2 * total_flits,
            "macs": sum(pe.macs_done for pe in pes.values()),
            "decompressed_weights": schedule.decompressed_weights_per_pe
            * len(schedule.pe_work),
            "local_mem_bytes": sum(pe.local_mem_bytes_accessed for pe in pes.values()),
            "main_mem_bytes": sum(mc.bytes_read + mc.bytes_written for mc in mcs.values()),
        }
        return LayerResult(
            layer_name=schedule.layer_name,
            latency=latency,
            energy=self._energy(events, stats.cycles),
            events=events,
        )

    def run_model(
        self,
        spec: ArchSpec,
        compression: dict[
            str,
            CompressionEffect | CompressedBlob | CompressedStream | WeightProvider,
        ]
        | None = None,
        mode: str = "txn",
        weight_bytes_per_word: int = 4,
        batch: int = 1,
    ) -> ModelResult:
        """Run every traffic-bearing layer of a network.

        ``compression`` maps layer names to their compression effects;
        entries may also be :class:`~repro.core.codecs.CompressedBlob`,
        :class:`~repro.core.compression.CompressedStream` or
        :class:`~repro.core.provider.WeightProvider` values, which are
        normalized through :meth:`compression_effect` — so the output of
        *any* registered codec plugs in directly, and providers flow to
        the compute model without an intermediate full-size buffer.
        ``batch`` amortizes weight fetches over several inferences.
        """
        compression = {
            name: value
            if isinstance(value, CompressionEffect)
            else self.compression_effect(value)
            for name, value in (compression or {}).items()
        }
        unknown = set(compression) - {l.name for l in spec.layers}
        if unknown:
            raise ValueError(f"compression for unknown layers: {sorted(unknown)}")
        results = []
        for layer in spec.layers:
            if layer.kind not in SIMULATED_KINDS:
                continue
            schedule = self.schedule_layer(
                layer,
                compression=compression.get(layer.name),
                weight_bytes_per_word=weight_bytes_per_word,
                batch=batch,
            )
            results.append(self.run_layer(schedule, mode=mode))
        return ModelResult(model_name=spec.name, layers=results)

    def compression_effect(
        self,
        stream: CompressedStream | CompressedBlob | WeightProvider,
        units_per_pe: int | None = None,
        streamed: bool | None = None,
    ) -> CompressionEffect:
        """Effect of a compressed weight stream, from any API.

        Accepts the legacy :class:`CompressedStream` (line-fit only),
        any codec's :class:`CompressedBlob`, or a
        :class:`~repro.core.provider.WeightProvider`.  ``streamed``
        defaults to the accelerator's ``streamed_decode`` configuration.
        """
        units = (
            units_per_pe
            if units_per_pe is not None
            else self.config.decompressor_units
        )
        streamed = (
            self.config.streamed_decode if streamed is None else bool(streamed)
        )
        if isinstance(stream, WeightProvider):
            return CompressionEffect.from_provider(
                stream, units_per_pe=units, streamed=streamed
            )
        if isinstance(stream, CompressedBlob):
            return CompressionEffect.from_blob(
                stream, units_per_pe=units, streamed=streamed
            )
        return CompressionEffect.from_stream(
            stream, units_per_pe=units, streamed=streamed
        )

    def providers_for(
        self,
        spec: ArchSpec,
        assignments: dict[str, float],
        codec: str | Codec = "linefit",
        seed: int = 0,
    ) -> dict[str, WeightProvider]:
        """Per-layer :class:`WeightProvider`\\ s from delta assignments.

        Materializes each assigned layer's full-scale weights once to
        *encode* them, then wraps the compressed blob in a provider —
        downstream consumers (``run_model``, the fused nn forward paths)
        pull decoded tiles on demand instead of receiving a full-size
        decoded buffer.
        """
        known = {l.name for l in spec.parametric_layers()}
        unknown = set(assignments) - known
        if unknown:
            raise ValueError(f"assignments for unknown layers: {sorted(unknown)}")
        providers = {}
        for name, delta in assignments.items():
            codec_obj = (
                codec
                if isinstance(codec, Codec)
                else get_codec(codec, delta_pct=float(delta))
            )
            blob = codec_obj.encode(spec.materialize(name, seed=seed).ravel())
            providers[name] = provider_for(blob)
        return providers

    def effects_for(
        self,
        spec: ArchSpec,
        assignments: dict[str, float],
        codec: str | Codec = "linefit",
        seed: int = 0,
    ) -> dict[str, CompressionEffect]:
        """Build ``run_model``'s compression dict from delta assignments.

        Encodes each assigned layer with ``codec`` (any registry spec or
        instance; per-layer deltas parameterize string specs) via
        :meth:`providers_for` and returns the per-layer effects — the
        bridge from :func:`repro.core.multilayer.optimize_multilayer`
        output to the latency/energy simulation.  The compressed blobs
        travel as providers, so no full-size decoded buffer is built.
        """
        return {
            name: self.compression_effect(provider)
            for name, provider in self.providers_for(
                spec, assignments, codec=codec, seed=seed
            ).items()
        }
