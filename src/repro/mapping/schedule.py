"""Per-layer traffic schedules (the three arrows of the paper's Fig. 1).

A :class:`LayerSchedule` is the executable form of a
:class:`~repro.mapping.tiling.LayerPlan`: concrete DRAM read jobs per
memory interface ((1) load filters + ifmap), per-PE expectations
((2) dispatch to PEs) and write-back volumes ((3) store ofmap), plus the
datapath cycle counts — everything both the flit-level simulator and the
transaction-level model need.

Compression plugs in here: for the compressed layer, weight fetch
volumes shrink by the stream's compression ratio while the PEs gain
decompression cycles, exactly the mechanism the paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.codecs import CompressedBlob
from ..core.compression import CompressedStream
from ..core.decompressor import DecompressorTiming
from ..core.provider import WeightProvider
from ..nn.arch import LayerSpec
from ..noc.flit import TrafficClass
from ..noc.mesh import Mesh
from .tiling import LayerPlan, plan_layer

__all__ = ["CompressionEffect", "Transfer", "LayerSchedule", "build_schedule"]

#: DRAM reads are chunked so row-activation cost amortizes over long
#: streams while data still flows out pipelined with the NoC
DRAM_CHUNK_BYTES = 2048


@dataclass(frozen=True)
class CompressionEffect:
    """How compressing a layer changes its schedule.

    ``cr`` scales the weight-fetch volume down; ``segments_total`` sets
    the per-segment init cost of the decompression units;
    ``units_per_pe`` is the number of parallel decompressors in front of
    the MAC lanes (the paper's Fig. 7 places the unit inside each PE; we
    default to one per vector lane so decompression throughput matches
    the lanes' weight demand).
    """

    cr: float
    segments_total: int
    units_per_pe: int = 8
    timing: DecompressorTiming = field(default_factory=DecompressorTiming)
    #: streamed-decode timing: the fused decode+MAC pipeline starts on
    #: the first arriving tile, overlapping datapath cycles with the
    #: fetch (see ``repro.noc.pe`` / ``repro.noc.transaction``)
    streamed: bool = False

    @classmethod
    def from_stream(
        cls,
        stream: CompressedStream,
        units_per_pe: int = 8,
        streamed: bool = False,
    ) -> "CompressionEffect":
        return cls(
            cr=stream.compression_ratio,
            segments_total=stream.num_segments,
            units_per_pe=units_per_pe,
            streamed=streamed,
        )

    @classmethod
    def from_blob(
        cls,
        blob: CompressedBlob,
        units_per_pe: int = 8,
        streamed: bool = False,
    ) -> "CompressionEffect":
        """Effect of any registered codec's output (see ``repro.core.codecs``).

        Lossless codecs report no segments, so their effect models a
        volume-only change (weight fetch scaled by CR, zero per-segment
        decompressor init cost).
        """
        return cls(
            cr=blob.compression_ratio,
            segments_total=blob.num_segments,
            units_per_pe=units_per_pe,
            streamed=streamed,
        )

    @classmethod
    def from_provider(
        cls,
        provider: WeightProvider,
        units_per_pe: int = 8,
        streamed: bool = False,
    ) -> "CompressionEffect":
        """Effect of a :class:`~repro.core.provider.WeightProvider`.

        The provider carries the same accounting as the blob/stream it
        wraps, so compressed weights flow to the compute model without
        an intermediate full-size buffer.  ``streamed`` only takes
        effect when the provider can actually decode incrementally.
        """
        return cls(
            cr=provider.compression_ratio,
            segments_total=provider.num_segments,
            units_per_pe=units_per_pe,
            streamed=streamed and provider.streaming,
        )

    def decompress_cycles(self, weights_per_pe: int, segments_per_pe: int) -> int:
        t = self.timing
        serial = segments_per_pe * t.init_cycles + weights_per_pe * t.run_cycles_per_weight
        return -(-serial // max(self.units_per_pe, 1))


@dataclass(frozen=True)
class Transfer:
    """One logical DRAM->PE data stream (the NoC's view)."""

    mc: int
    pe: int
    nbytes: int
    traffic_class: TrafficClass


@dataclass(frozen=True)
class DramRead:
    """One physical DRAM read, possibly fanned out to several PEs.

    The *replicated* operand of a partitioned layer (the ifmap under a
    channel split, the weights under a spatial split) is identical for
    every PE behind a memory interface; the MC reads it from DRAM once
    and replicates it on chip.
    """

    mc: int
    dsts: tuple[int, ...]
    nbytes: int
    traffic_class: TrafficClass


@dataclass
class LayerSchedule:
    layer_name: str
    plan: LayerPlan
    transfers: list[Transfer]
    #: pe id -> (weight bytes, ifmap bytes, ofmap bytes, compute cycles,
    #:           decompress cycles, macs)
    pe_work: dict[int, tuple[int, int, int, int, int, int]]
    #: the traffic class whose data is shared behind each MC (None if
    #: every stream is private)
    shared_class: TrafficClass | None = None
    #: decompressed weight count per PE (for energy accounting)
    decompressed_weights_per_pe: int = 0
    #: streamed-decode timing mode (from the layer's CompressionEffect)
    streamed: bool = False

    @property
    def total_read_bytes(self) -> int:
        """NoC-side read volume (every PE copy counted)."""
        return sum(t.nbytes for t in self.transfers)

    @property
    def total_dram_read_bytes(self) -> int:
        """DRAM-side read volume (shared operands counted once per MC)."""
        return sum(j.nbytes for j in self.dram_reads(chunk=1 << 62))

    @property
    def total_write_bytes(self) -> int:
        return sum(w[2] for w in self.pe_work.values())

    def dram_reads(self, chunk: int = DRAM_CHUNK_BYTES) -> list[DramRead]:
        """Physical DRAM read jobs, chunked for pipelined service.

        Shared-class transfers behind the same MC collapse into one job
        with all their PEs as destinations.
        """
        grouped: dict[tuple[int, TrafficClass], list[Transfer]] = {}
        jobs: list[DramRead] = []
        for t in self.transfers:
            if t.traffic_class is self.shared_class:
                grouped.setdefault((t.mc, t.traffic_class), []).append(t)
            else:
                jobs.append(DramRead(t.mc, (t.pe,), t.nbytes, t.traffic_class))
        for (mc, tclass), ts in grouped.items():
            nbytes = ts[0].nbytes
            if any(x.nbytes != nbytes for x in ts):
                raise ValueError("shared transfers must have equal volume")
            jobs.append(DramRead(mc, tuple(x.pe for x in ts), nbytes, tclass))
        out: list[DramRead] = []
        for j in jobs:
            remaining = j.nbytes
            while remaining > 0:
                n = min(chunk, remaining)
                out.append(DramRead(j.mc, j.dsts, n, j.traffic_class))
                remaining -= n
        return out


def build_schedule(
    layer: LayerSpec,
    mesh: Mesh,
    compression: CompressionEffect | None = None,
    macs_per_cycle: int = 64,
    local_mem_bytes: int = 8 * 1024,
    weight_bytes_per_word: int = 4,
    refetch_model: str = "paper",
    batch: int = 1,
) -> LayerSchedule:
    """Build the executable schedule for one layer.

    ``compression`` applies to this layer's weight stream (already
    selected by the layer-selection policy); ``weight_bytes_per_word``
    is 4 for float32 models and 1 for int8-quantized ones.  ``batch``
    processes several inferences per weight fetch: activations and MACs
    scale with the batch while the weight traffic is amortized — which
    is exactly why the paper's single-inference edge scenario is where
    weight compression matters most.
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    pe_ids = mesh.pe_ids()
    plan = plan_layer(
        layer,
        num_pes=len(pe_ids),
        local_mem_bytes=local_mem_bytes,
        weight_bytes_per_word=weight_bytes_per_word,
        refetch_model=refetch_model,
    )
    if batch > 1:
        plan = LayerPlan(
            layer_name=plan.layer_name,
            partition=plan.partition,
            num_pes=plan.num_pes,
            pe=type(plan.pe)(
                weight_fetch_bytes=plan.pe.weight_fetch_bytes,
                ifmap_fetch_bytes=plan.pe.ifmap_fetch_bytes * batch,
                ofmap_bytes=plan.pe.ofmap_bytes * batch,
                macs=plan.pe.macs * batch,
            ),
            total_read_bytes=(
                plan.pe.weight_fetch_bytes + plan.pe.ifmap_fetch_bytes * batch
            )
            * plan.num_pes,
            total_write_bytes=plan.pe.ofmap_bytes * batch * plan.num_pes,
            refetch_factor=plan.refetch_factor,
        )

    weight_fetch = plan.pe.weight_fetch_bytes
    decompress_cycles = 0
    decompressed = 0
    if compression is not None and weight_fetch > 0:
        weight_fetch = max(1, int(round(weight_fetch / compression.cr)))
        weights_per_pe = plan.pe.weight_fetch_bytes // weight_bytes_per_word
        segments_per_pe = -(-compression.segments_total // len(pe_ids))
        decompress_cycles = compression.decompress_cycles(
            weights_per_pe, segments_per_pe
        )
        decompressed = weights_per_pe

    transfers: list[Transfer] = []
    pe_work: dict[int, tuple[int, int, int, int, int, int]] = {}
    for pe in pe_ids:
        mc = mesh.nearest_corner(pe)
        if weight_fetch > 0:
            transfers.append(Transfer(mc, pe, weight_fetch, TrafficClass.WEIGHTS))
        if plan.pe.ifmap_fetch_bytes > 0:
            transfers.append(
                Transfer(mc, pe, plan.pe.ifmap_fetch_bytes, TrafficClass.IFMAP)
            )
        compute = -(-plan.pe.macs // macs_per_cycle)
        pe_work[pe] = (
            weight_fetch,
            plan.pe.ifmap_fetch_bytes,
            plan.pe.ofmap_bytes,
            compute,
            decompress_cycles,
            plan.pe.macs,
        )

    shared = None
    if plan.partition == "channel" and plan.pe.ifmap_fetch_bytes > 0:
        shared = TrafficClass.IFMAP  # every PE needs the whole ifmap
    elif plan.partition == "spatial" and weight_fetch > 0:
        shared = TrafficClass.WEIGHTS  # every PE needs all the weights
    return LayerSchedule(
        layer_name=layer.name,
        plan=plan,
        transfers=transfers,
        pe_work=pe_work,
        shared_class=shared,
        decompressed_weights_per_pe=decompressed,
        streamed=compression.streamed if compression is not None else False,
    )
