"""Layer-to-PE work partitioning under the 8 KB local-memory budget.

For every layer the mapper chooses between the two classic partitions:

* **channel split** — each PE owns a slice of the output channels /
  neurons: the weight tensor is partitioned (fetched once in total) but
  every PE needs the whole input feature map (ifmap replicated);
* **spatial split** — each PE owns a band of output rows: the ifmap is
  partitioned but every PE needs all the weights (weights replicated).

The mapper picks the partition with the smaller total fetch volume, then
applies the local-memory constraint: the stationary operand (whichever
is smaller per PE) is kept resident if it fits in the 8 KB budget
(minus double-buffering headroom); otherwise the layer is processed in
bands and the *streaming* operand is re-fetched once per band.  Halo
overlap of spatial conv tiles is ignored (a few % of ifmap traffic).

FC layers degenerate to channel split with streamed single-use weights
and an output slice accumulating in place — FC traffic is always
single-pass — the regime the paper's motivational example (Fig. 2)
shows being completely dominated by main-memory weight traffic.

Two refetch models are provided for convolutions:

* ``"paper"`` (default) — single-pass traffic (weights + ifmap + ofmap
  with the partition's replication factors, no refetch).  This matches
  the traffic accounting of the paper's simulation platform [17], which
  models each layer's operand transfers once; it is an optimistic bound
  that assumes the PE array orchestrates row-streaming reuse across its
  aggregate buffer capacity.
* ``"banded"`` — conservative per-PE banding: when neither operand fits
  in the local memory, the streamed operand is re-fetched once per band
  of the resident one.  Exposes the local-memory sensitivity that the
  paper's model hides; the architecture-sweep benches use it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.arch import LayerKind, LayerSpec

__all__ = ["PEPlan", "LayerPlan", "plan_layer"]

#: bytes per activation/weight word (float32 datapath)
WORD_BYTES = 4
#: fraction of local memory reserved for stream double-buffering
_STREAM_HEADROOM = 0.25


@dataclass(frozen=True)
class PEPlan:
    """Per-PE fetch volumes and work for one layer."""

    weight_fetch_bytes: int
    ifmap_fetch_bytes: int
    ofmap_bytes: int
    macs: int


@dataclass(frozen=True)
class LayerPlan:
    """One layer's mapping onto the PE array."""

    layer_name: str
    partition: str  # "channel" | "spatial"
    num_pes: int
    pe: PEPlan  # identical per PE (uniform split; remainders ignored)
    #: total main-memory read volume (all PEs)
    total_read_bytes: int
    #: total main-memory write volume
    total_write_bytes: int
    #: refetch multiplier that tiling imposed on the streamed operand
    refetch_factor: int

    @property
    def total_macs(self) -> int:
        return self.pe.macs * self.num_pes


def _split(total: int, parts: int) -> int:
    """Per-part share, rounded up (uniform work assumption)."""
    return -(-total // parts)


REFETCH_MODELS = ("paper", "banded")


def plan_layer(
    layer: LayerSpec,
    num_pes: int = 12,
    local_mem_bytes: int = 8 * 1024,
    weight_bytes_per_word: int = WORD_BYTES,
    refetch_model: str = "paper",
) -> LayerPlan:
    """Map one layer onto the PE array.

    Non-parametric layers (pooling, merges) move activations but do no
    MACs; they are planned as spatial splits with zero weight traffic.
    See the module docstring for ``refetch_model``.
    """
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    if refetch_model not in REFETCH_MODELS:
        raise ValueError(
            f"unknown refetch_model {refetch_model!r}; use one of {REFETCH_MODELS}"
        )
    w_bytes = layer.weight_params * weight_bytes_per_word
    i_bytes = layer.in_activations * WORD_BYTES
    o_bytes = layer.out_activations * WORD_BYTES
    macs_pe = _split(layer.macs, num_pes)

    if layer.kind in (LayerKind.POOL, LayerKind.GLOBALPOOL, LayerKind.MERGE,
                      LayerKind.FLATTEN, LayerKind.NORM, LayerKind.ACT):
        pe = PEPlan(
            weight_fetch_bytes=0,
            ifmap_fetch_bytes=_split(i_bytes, num_pes),
            ofmap_bytes=_split(o_bytes, num_pes),
            macs=macs_pe,
        )
        return LayerPlan(
            layer_name=layer.name,
            partition="spatial",
            num_pes=num_pes,
            pe=pe,
            total_read_bytes=pe.ifmap_fetch_bytes * num_pes,
            total_write_bytes=pe.ofmap_bytes * num_pes,
            refetch_factor=1,
        )

    # fetch volume under each partition (before tiling refetch)
    channel_cost = w_bytes + num_pes * i_bytes
    spatial_cost = num_pes * w_bytes + i_bytes
    # FC layers cannot split the input spatially (every output needs the
    # whole input vector), so they always use the channel partition.
    if layer.kind is LayerKind.FC or channel_cost <= spatial_cost:
        partition = "channel"
        w_pe, i_pe, o_pe = _split(w_bytes, num_pes), i_bytes, _split(o_bytes, num_pes)
    else:
        partition = "spatial"
        w_pe, i_pe, o_pe = w_bytes, _split(i_bytes, num_pes), _split(o_bytes, num_pes)

    budget = int(local_mem_bytes * (1.0 - _STREAM_HEADROOM))
    refetch = 1
    if (
        refetch_model == "banded"
        and layer.kind is not LayerKind.FC  # FC weights are single-use:
        # stream input tiles against a resident output slice, one pass
        and min(w_pe, i_pe) + o_pe > budget
    ):
        # neither operand can stay resident with the output slice: band
        # the smaller operand and re-stream the other once per band
        bands = -(-(min(w_pe, i_pe) + o_pe) // budget)
        refetch = bands
    if i_pe <= w_pe:
        w_fetch, i_fetch = w_pe * refetch, i_pe
    else:
        w_fetch, i_fetch = w_pe, i_pe * refetch

    pe = PEPlan(
        weight_fetch_bytes=w_fetch,
        ifmap_fetch_bytes=i_fetch,
        ofmap_bytes=o_pe,
        macs=macs_pe,
    )
    return LayerPlan(
        layer_name=layer.name,
        partition=partition,
        num_pes=num_pes,
        pe=pe,
        total_read_bytes=(pe.weight_fetch_bytes + pe.ifmap_fetch_bytes) * num_pes,
        total_write_bytes=pe.ofmap_bytes * num_pes,
        refetch_factor=refetch,
    )
