"""Roofline-style bound analysis for the accelerator.

Classifies each layer as memory- or compute-bound by comparing its
*arithmetic intensity* (MACs per DRAM byte moved) against the machine
balance of the accelerator (peak MACs/cycle over peak DRAM bytes/cycle).
The paper's whole premise is that CNN inference on this class of
accelerator sits far below the balance point — weight traffic, not
arithmetic, is the wall — and that compressing the weight stream moves
layers *toward* the compute roof.  This module makes that quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mapping.schedule import LayerSchedule

__all__ = ["MachineBalance", "LayerRoofline", "roofline", "machine_balance"]


@dataclass(frozen=True)
class MachineBalance:
    """Peak compute and memory rates of one accelerator configuration."""

    peak_macs_per_cycle: int
    peak_dram_bytes_per_cycle: float

    @property
    def balance(self) -> float:
        """MACs per DRAM byte at which compute and memory roofs meet."""
        return self.peak_macs_per_cycle / self.peak_dram_bytes_per_cycle


@dataclass(frozen=True)
class LayerRoofline:
    layer: str
    macs: int
    dram_bytes: int
    intensity: float  # MACs per DRAM byte
    bound: str  # "memory" | "compute"
    #: attainable MACs/cycle under the roofline model
    attainable_macs_per_cycle: float


def machine_balance(
    num_pes: int = 12,
    macs_per_cycle: int = 64,
    num_channels: int = 4,
    channel_bytes_per_cycle: float = 8.0,
) -> MachineBalance:
    """The paper's configuration: 12 PEs x 64 MACs vs 4 x 8 B/cyc DRAM."""
    return MachineBalance(
        peak_macs_per_cycle=num_pes * macs_per_cycle,
        peak_dram_bytes_per_cycle=num_channels * channel_bytes_per_cycle,
    )


def roofline(
    schedule: LayerSchedule, balance: MachineBalance | None = None
) -> LayerRoofline:
    """Roofline classification of one scheduled layer."""
    balance = balance or machine_balance()
    macs = sum(w[5] for w in schedule.pe_work.values())
    dram = schedule.total_dram_read_bytes + schedule.total_write_bytes
    if dram <= 0:
        intensity = float("inf")
    else:
        intensity = macs / dram
    attainable = min(
        float(balance.peak_macs_per_cycle),
        intensity * balance.peak_dram_bytes_per_cycle,
    )
    return LayerRoofline(
        layer=schedule.layer_name,
        macs=macs,
        dram_bytes=dram,
        intensity=intensity,
        bound="compute" if intensity >= balance.balance else "memory",
        attainable_macs_per_cycle=attainable,
    )
