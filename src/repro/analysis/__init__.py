"""Entropy, breakdown and report-rendering utilities."""

from .breakdown import LayerBars, energy_bars, latency_bars, normalize_series
from .entropy import byte_entropy, english_like_text, random_bytes
from .linkstats import LinkUtilization, link_utilization, render_link_report
from .report import render_bars, render_table
from .roofline import LayerRoofline, MachineBalance, machine_balance, roofline

__all__ = [
    "LayerBars",
    "energy_bars",
    "latency_bars",
    "normalize_series",
    "byte_entropy",
    "english_like_text",
    "random_bytes",
    "render_bars",
    "render_table",
    "LinkUtilization",
    "link_utilization",
    "render_link_report",
    "LayerRoofline",
    "MachineBalance",
    "machine_balance",
    "roofline",
]
