"""Per-link utilization analysis of a NoC run.

XY routing on a corner-memory floorplan concentrates traffic on the
links around the corners; this module turns the simulator's per-link
flit counters into a utilization report so that hotspot structure is
visible (and testable).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..noc.mesh import Mesh
from ..noc.router import PORT_NAMES
from ..noc.simulator import NocStats

__all__ = ["LinkUtilization", "link_utilization", "render_link_report"]


@dataclass(frozen=True)
class LinkUtilization:
    src: int
    dst: int
    port: str
    flits: int
    #: flits per cycle over the measured window
    utilization: float


def link_utilization(stats: NocStats, mesh: Mesh) -> list[LinkUtilization]:
    """Sorted (desc) utilization of every link that carried traffic."""
    if stats.cycles <= 0:
        raise ValueError("stats carry no completed run (cycles == 0)")
    out = []
    for (src, port), flits in stats.link_flits.items():
        dst = mesh.neighbor(src, port)
        if dst is None:
            continue
        out.append(
            LinkUtilization(
                src=src,
                dst=dst,
                port=PORT_NAMES[port],
                flits=flits,
                utilization=flits / stats.cycles,
            )
        )
    return sorted(out, key=lambda l: l.flits, reverse=True)


def render_link_report(links: list[LinkUtilization], top: int = 10) -> str:
    lines = [f"{'link':<12}{'flits':>10}{'util':>8}"]
    lines.extend(
        f"{l.src:>2} -> {l.dst:<5}{l.flits:>10,}{l.utilization:>8.3f}"
        for l in links[:top]
    )
    return "\n".join(lines)
