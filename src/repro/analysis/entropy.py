"""Byte-level Shannon entropy (the paper's Fig. 3).

The paper motivates its bespoke compressor by showing that CNN weights
are statistically indistinguishable from random bytes (entropy ~ 8
bits/byte), unlike text (~4.5 bits/byte), so dictionary/statistical
compressors cannot help.  We reproduce the measurement on the zoo
models' weight streams, uniform random data, and a procedurally
generated English-like text (no corpus files are shipped).
"""

from __future__ import annotations

import numpy as np

__all__ = ["byte_entropy", "english_like_text", "random_bytes"]

# Letter frequencies of English (per mille), space-heavy like real prose.
_ALPHABET = " etaoinshrdlcumwfgypbvkjxqz"
_FREQS = np.array(
    [18.3, 10.2, 7.5, 6.6, 6.1, 5.8, 5.5, 5.2, 4.9, 4.8, 3.5, 3.3, 2.7,
     2.4, 2.3, 2.1, 1.9, 1.7, 1.6, 1.6, 1.3, 0.8, 0.6, 0.1, 0.1, 0.1, 0.1]
)
_FREQS = _FREQS / _FREQS.sum()


def byte_entropy(data: bytes | np.ndarray) -> float:
    """Shannon entropy of the byte histogram, in bits per byte.

    NumPy arrays are measured over their raw memory (C-order), which for
    float32 weights is exactly the serialized stream the paper measures.
    """
    if isinstance(data, np.ndarray):
        buf = np.ascontiguousarray(data).view(np.uint8).ravel()
    else:
        buf = np.frombuffer(data, dtype=np.uint8)
    if buf.size == 0:
        return 0.0
    counts = np.bincount(buf, minlength=256).astype(np.float64)
    p = counts[counts > 0] / buf.size
    return float(-(p * np.log2(p)).sum())


def random_bytes(n: int, seed: int = 0) -> bytes:
    """Uniform random bytes: the paper's entropy upper bound."""
    return np.random.default_rng(seed).integers(0, 256, size=n, dtype=np.uint8).tobytes()


def english_like_text(n: int, seed: int = 0) -> bytes:
    """ASCII text with English letter statistics (entropy ~ 4.2 b/byte)."""
    rng = np.random.default_rng(seed)
    letters = rng.choice(list(_ALPHABET), size=n, p=_FREQS)
    return "".join(letters).encode("ascii")
