"""Latency/energy breakdown structures for Figs. 2 and 10."""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.model import COMPONENTS
from ..mapping.accelerator import ModelResult

__all__ = ["LayerBars", "latency_bars", "energy_bars", "normalize_series"]

LATENCY_PARTS = ("memory", "communication", "computation")


@dataclass(frozen=True)
class LayerBars:
    """One stacked bar: a label plus named non-negative parts."""

    label: str
    parts: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.parts.values())


def latency_bars(result: ModelResult, normalize: bool = True) -> list[LayerBars]:
    """Per-layer latency breakdown (the paper's Fig. 2, left).

    With ``normalize=True`` each bar is scaled by the largest layer
    total, matching the paper's normalized y-axis.
    """
    bars = [
        LayerBars(
            label=l.layer_name,
            parts={
                "memory": float(l.latency.memory),
                "communication": float(l.latency.communication),
                "computation": float(l.latency.computation),
            },
        )
        for l in result.layers
    ]
    return _maybe_normalize(bars, normalize)


def energy_bars(result: ModelResult, normalize: bool = True) -> list[LayerBars]:
    """Per-layer energy breakdown with dyn/leak split (Fig. 2, right)."""
    bars = []
    for l in result.layers:
        parts: dict[str, float] = {}
        for c in COMPONENTS:
            parts[f"{c} (dyn)"] = l.energy.dynamic[c]
            parts[f"{c} (leak)"] = l.energy.leakage[c]
        bars.append(LayerBars(label=l.layer_name, parts=parts))
    return _maybe_normalize(bars, normalize)


def _maybe_normalize(bars: list[LayerBars], normalize: bool) -> list[LayerBars]:
    if not normalize or not bars:
        return bars
    peak = max(b.total for b in bars)
    if peak <= 0:
        return bars
    return [
        LayerBars(label=b.label, parts={k: v / peak for k, v in b.parts.items()})
        for b in bars
    ]


def normalize_series(values: list[float], baseline: float | None = None) -> list[float]:
    """Scale a series by its first element (Fig. 10's normalized axes)."""
    if not values:
        return []
    base = baseline if baseline is not None else values[0]
    if base == 0:
        raise ValueError("cannot normalize by zero")
    return [v / base for v in values]
