"""Plain-text rendering of tables and stacked-bar figures.

Every experiment prints through these helpers so the benchmark harness
output reads like the paper's tables/figures.
"""

from __future__ import annotations

from .breakdown import LayerBars

__all__ = ["render_table", "render_bars"]


def render_table(
    headers: list[str],
    rows: list[list[object]],
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Fixed-width ASCII table."""

    def fmt(v: object) -> str:
        if isinstance(v, float):
            if v != 0 and (abs(v) < 1e-3 or abs(v) >= 1e5):
                return f"{v:.2e}"
            return float_fmt.format(v)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(
        "  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells
    )
    return "\n".join(lines)


def render_bars(bars: list[LayerBars], title: str = "", width: int = 50) -> str:
    """Horizontal stacked bars with a per-part legend table."""
    if not bars:
        return title
    part_names = list(bars[0].parts)
    glyphs = "#=+*o.%@&"
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(part_names)
    )
    peak = max(b.total for b in bars) or 1.0
    lines = [title, legend] if title else [legend]
    label_w = max(len(b.label) for b in bars)
    for b in bars:
        bar = ""
        for i, name in enumerate(part_names):
            n = int(round(b.parts.get(name, 0.0) / peak * width))
            bar += glyphs[i % len(glyphs)] * n
        lines.append(f"{b.label.ljust(label_w)} |{bar} ({b.total:.3f})")
    return "\n".join(lines)
