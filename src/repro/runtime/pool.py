"""Parallel execution of independent sweep grid points.

Every headline artifact is a serial ``(model x delta x codec)`` grid
whose points are independent: compress a stream, evaluate a proxy, run
the accelerator model.  :func:`run_tasks` fans such a grid over a
``ProcessPoolExecutor`` while keeping three invariants:

* **order** — results come back in task order, whatever finishes first;
* **identity** — ``jobs=1`` (the default) runs the exact serial loop,
  and parallel workers execute the same pure functions on the same
  pickled inputs, so records are identical byte for byte;
* **cache-before-dispatch** — with a :class:`~repro.runtime.cache.
  ResultCache`, hits are resolved *before* any worker is spawned, so a
  fully warm sweep runs zero tasks (and the timing counters show it).

Job count resolution: explicit ``jobs=`` kwarg, else the ``REPRO_JOBS``
environment variable, else 1.  Task functions must be module-level
(picklable) and deterministic; exceptions propagate to the caller.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable

from .cache import MISS, ResultCache

__all__ = ["GridTask", "Timings", "default_jobs", "run_tasks"]


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (unset/invalid/<1 -> serial)."""
    raw = os.environ.get("REPRO_JOBS", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


@dataclass(frozen=True)
class GridTask:
    """One grid point: a picklable function, its arguments, and an
    optional content-addressed cache key (``None`` = never cached)."""

    fn: Callable[..., Any]
    args: tuple = ()
    key: str | None = None


@dataclass
class Timings:
    """Per-sweep work accounting, surfaced in experiment output.

    ``tasks`` counts grid points submitted, ``tasks_run`` the points
    actually executed (misses), ``task_seconds`` the summed in-worker
    execution time, ``wall_seconds`` the end-to-end grid time.  A warm
    cache shows ``tasks_run == 0`` and ``task_seconds == 0.0`` — the
    proof that no encode/evaluate work re-ran.
    """

    counters: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    @contextmanager
    def timer(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def merge(self, other: "Timings") -> None:
        for name, value in other.counters.items():
            self.add(name, value)

    def summary(self) -> str:
        def fmt(name: str) -> str:
            v = self.counters.get(name, 0.0)
            return f"{v:.2f}s" if name.endswith("_seconds") else f"{v:g}"

        names = ["tasks", "tasks_run", "cache_hits", "task_seconds", "wall_seconds"]
        extra = sorted(set(self.counters) - set(names) - {"cache_misses", "cache_puts"})
        return "  ".join(f"{n}={fmt(n)}" for n in names + extra)


def _timed_call(fn: Callable[..., Any], args: tuple) -> tuple[Any, float]:
    """Worker-side wrapper: run one grid point, report its CPU-side time."""
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def run_tasks(
    tasks: list[GridTask],
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timings: Timings | None = None,
) -> list[Any]:
    """Run a grid, in order, with optional parallelism and caching."""
    timings = timings if timings is not None else Timings()
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    start = time.perf_counter()

    results: list[Any] = [None] * len(tasks)
    pending: list[int] = []
    for i, task in enumerate(tasks):
        hit = MISS
        if cache is not None and task.key is not None:
            hit = cache.get(task.key)
        if hit is MISS:
            pending.append(i)
        else:
            results[i] = hit
            timings.add("cache_hits")

    if pending:
        if jobs == 1 or len(pending) == 1:
            outcomes = [_timed_call(tasks[i].fn, tasks[i].args) for i in pending]
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                outcomes = list(
                    pool.map(
                        _timed_call,
                        [tasks[i].fn for i in pending],
                        [tasks[i].args for i in pending],
                    )
                )
        for i, (result, seconds) in zip(pending, outcomes):
            results[i] = result
            timings.add("tasks_run")
            timings.add("task_seconds", seconds)
            if cache is not None and tasks[i].key is not None:
                cache.put(tasks[i].key, result)

    timings.add("tasks", len(tasks))
    timings.add("wall_seconds", time.perf_counter() - start)
    return results
