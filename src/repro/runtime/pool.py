"""Parallel execution of independent sweep grid points.

Every headline artifact is a serial ``(model x delta x codec)`` grid
whose points are independent: compress a stream, evaluate a proxy, run
the accelerator model.  :func:`run_tasks` fans such a grid over a
``ProcessPoolExecutor`` while keeping three invariants:

* **order** — results come back in task order, whatever finishes first;
* **identity** — ``jobs=1`` (the default) runs the exact serial loop,
  and parallel workers execute the same pure functions on the same
  pickled inputs, so records are identical byte for byte;
* **cache-before-dispatch** — with a :class:`~repro.runtime.cache.
  ResultCache`, hits are resolved *before* any worker is spawned, so a
  fully warm sweep runs zero tasks (and the timing counters show it).

Job count resolution: explicit ``jobs=`` kwarg, else the ``REPRO_JOBS``
environment variable, else 1.  Task functions must be module-level
(picklable) and deterministic; exceptions propagate to the caller.

Resilience: pass a :class:`RunPolicy` to opt into fault handling —
per-task timeouts (a hung worker no longer wedges the sweep), bounded
retry with exponential backoff, ``BrokenProcessPool`` recovery (a killed
worker's unfinished tasks re-dispatch serially, completed results are
salvaged from the abandoned pool), and optional partial-result salvage
(``salvage=True`` turns an exhausted task into a ``None`` slot instead
of an exception).  Without a policy the original strict semantics hold:
the first task exception propagates unchanged.

Observability: when an ambient :class:`repro.obs.Obs` scope is enabled,
the strict path dispatches every pending task under a fresh worker-side
capture (:func:`repro.obs.capture`) and, as results arrive, re-parents
the recorded spans onto per-task trace tracks and merges the worker
metric rows in task order — so ``jobs=1`` and ``jobs=N`` produce
identical merged metrics (modulo wall-clock values).  With the default
:data:`repro.obs.NULL` scope the dispatch path is byte-for-byte the
historical one.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from .. import obs
from ..obs import MetricsRegistry
from .cache import MISS, ResultCache

__all__ = ["GridTask", "RunPolicy", "Timings", "default_jobs", "run_tasks"]

#: marks a task that exhausted its attempts under ``salvage=True``
_FAILED = object()


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (unset/invalid/<1 -> serial)."""
    raw = os.environ.get("REPRO_JOBS", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


@dataclass(frozen=True)
class GridTask:
    """One grid point: a picklable function, its arguments, and an
    optional content-addressed cache key (``None`` = never cached)."""

    fn: Callable[..., Any]
    args: tuple = ()
    key: str | None = None


@dataclass(frozen=True)
class RunPolicy:
    """Fault-handling contract for one :func:`run_tasks` call.

    Parameters
    ----------
    timeout:
        Per-task wall-clock budget in seconds, measured from *pool
        submission* (``None`` = wait forever, the strict default).
        Every task's deadline is ``submission + timeout``, and the
        collection loop waits only for the *remaining* deadline when it
        reaches a task — so a hung task is declared within ~``timeout``
        of submission no matter where it sits in the futures list,
        instead of inheriting its predecessors' runtimes on top of its
        own budget.  On expiry the pool is *abandoned* — already-
        finished results are salvaged, unfinished tasks (including any
        that were still queued behind busy workers) re-dispatch
        serially in the caller's process — because a hung worker cannot
        be reliably killed through ``concurrent.futures``.  Only
        effective with ``jobs > 1``; a serial run executes in-process
        where no watchdog exists.
    retries:
        Extra attempts granted to a task whose attempt *raised* (crash
        injection, flaky I/O).  ``0`` keeps fail-fast semantics.
    backoff:
        Base sleep before retry ``k`` (``backoff * 2**k`` seconds);
        keep at 0 in tests.
    max_backoff:
        Cap on the exponential term (``None`` = uncapped).  Long-lived
        retry loops (the replica supervisor) use this so the wait never
        grows past a bounded recovery window.
    jitter:
        With ``True``, each retry sleeps ``uniform(0, capped_backoff)``
        (full jitter) instead of the deterministic exponential — a fleet
        of clients retrying the same incident spreads out instead of
        thundering back in lockstep.  Seed the draw with ``jitter_seed``
        for reproducible schedules; ``backoff=0`` stays 0 regardless.
    jitter_seed:
        Seed of the jitter RNG (``None`` = fresh OS entropy per run).
    salvage:
        With ``True``, a task that exhausts every attempt yields
        ``None`` in the result list (and a ``tasks_failed`` count)
        instead of raising — the sweep completes on the surviving grid
        points.
    """

    timeout: float | None = None
    retries: int = 0
    backoff: float = 0.0
    max_backoff: float | None = None
    jitter: bool = False
    jitter_seed: int | None = None
    salvage: bool = False

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.max_backoff is not None and self.max_backoff <= 0:
            raise ValueError(
                f"max_backoff must be positive, got {self.max_backoff}"
            )

    def rng(self) -> np.random.Generator:
        """A jitter RNG seeded by ``jitter_seed`` (new stream per call)."""
        return np.random.default_rng(self.jitter_seed)

    def backoff_for(
        self, attempt: int, rng: np.random.Generator | None = None
    ) -> float:
        """Sleep before retry ``attempt`` (0-based): capped exponential,
        optionally full-jittered.

        Pass a shared ``rng`` to draw successive retries from one
        stream (deterministic under a fixed ``jitter_seed``); without
        one a fresh stream is seeded per call.
        """
        base = self.backoff * (2 ** int(attempt))
        if self.max_backoff is not None:
            base = min(base, self.max_backoff)
        if base <= 0:
            return 0.0
        if self.jitter:
            rng = self.rng() if rng is None else rng
            return float(base * rng.uniform())
        return float(base)


class Timings:
    """Per-sweep work accounting, surfaced in experiment output.

    ``tasks`` counts grid points submitted, ``tasks_run`` the points
    actually executed (misses), ``task_seconds`` the summed in-worker
    execution time of *successful* attempts (a failed attempt that is
    later retried lands in ``task_failed_seconds`` instead),
    ``wall_seconds`` the end-to-end grid time.  A warm cache shows
    ``tasks_run == 0`` and ``task_seconds == 0.0`` — the proof that no
    encode/evaluate work re-ran.

    This class is a thin compatibility facade over a
    :class:`repro.obs.MetricsRegistry`: ``counters`` is a read-only
    name → value view of the underlying counters, and the registry can
    be merged into an experiment's metrics dump wholesale.
    """

    #: wall clocks of merged sub-sweeps overlap, so summing them
    #: overstates elapsed time — these counters merge as max instead
    _MAX_MERGED = frozenset({"wall_seconds"})

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    @property
    def counters(self) -> dict[str, float]:
        """Flat ``name -> value`` view (the historical dict shape)."""
        return {
            row["name"]: row["value"]
            for row in self.registry.snapshot()
            if row["kind"] == "counter" and not row["labels"]
        }

    def add(self, name: str, value: float = 1.0) -> None:
        self.registry.counter(name).add(value)

    @contextmanager
    def timer(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def merge(self, other: "Timings") -> None:
        mine = self.counters
        for name, value in other.counters.items():
            if name in self._MAX_MERGED:
                # overlapping intervals: the merged elapsed time is the
                # envelope, never the sum
                self.add(name, max(0.0, value - mine.get(name, 0.0)))
            else:
                self.add(name, value)

    def summary(self) -> str:
        counters = self.counters

        def fmt(name: str) -> str:
            v = counters.get(name, 0.0)
            return f"{v:.2f}s" if name.endswith("_seconds") else f"{v:g}"

        names = ["tasks", "tasks_run", "cache_hits", "task_seconds", "wall_seconds"]
        extra = sorted(set(counters) - set(names) - {"cache_misses", "cache_puts"})
        return "  ".join(f"{n}={fmt(n)}" for n in names + extra)


def _timed_call(fn: Callable[..., Any], args: tuple) -> tuple[Any, float]:
    """Worker-side wrapper: run one grid point, report its CPU-side time."""
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def _captured_call(fn: Callable[..., Any], args: tuple) -> tuple[Any, float, dict]:
    """:func:`_timed_call` plus observability capture.

    The task runs under a fresh recording scope whose spans and metric
    rows ship home with the result for the parent to adopt.  The serial
    path uses the same wrapper, so serial and parallel sweeps merge to
    identical output.
    """
    start = time.perf_counter()
    with obs.capture() as captured:
        result = fn(*args)
    return result, time.perf_counter() - start, captured.export()


def _attempt_call(fn: Callable[..., Any], args: tuple) -> tuple[bool, Any, float]:
    """Policy-path worker wrapper: failures return instead of raising.

    Returning ``(False, exc, seconds)`` lets the parent account the
    failed attempt's duration under ``task_failed_seconds`` before
    handing the exception to the retry budget — a raise through the
    future would discard the timing.
    """
    start = time.perf_counter()
    try:
        result = fn(*args)
    except Exception as exc:  # noqa: BLE001 - shipped to the retry budget
        return False, exc, time.perf_counter() - start
    return True, result, time.perf_counter() - start


def _serial_attempts(
    task: GridTask,
    policy: RunPolicy,
    timings: Timings,
    prior_exc: BaseException | None = None,
) -> tuple[Any, float]:
    """Run one task in-process under the retry budget.

    ``prior_exc`` carries a failure from an earlier pool attempt: it
    consumes the *first* attempt, so the serial passes are retries (and
    with ``retries=0`` the original exception re-raises immediately).
    """
    attempts = policy.retries if prior_exc is not None else 1 + policy.retries
    exc = prior_exc
    rng = policy.rng() if policy.jitter else None
    for k in range(attempts):
        if exc is not None:
            timings.add("task_retries")
            delay = policy.backoff_for(k, rng)
            if delay:
                time.sleep(delay)
        attempt_start = time.perf_counter()
        try:
            return _timed_call(task.fn, task.args)
        except Exception as e:  # noqa: BLE001 - retry boundary
            # a failed attempt's time must not vanish (nor pollute
            # task_seconds, which counts only successful work)
            timings.add("task_failed_seconds", time.perf_counter() - attempt_start)
            exc = e
    if policy.salvage:
        timings.add("tasks_failed")
        return _FAILED, 0.0
    raise exc


def _run_with_policy(
    tasks: list[GridTask],
    pending: list[int],
    jobs: int,
    policy: RunPolicy,
    timings: Timings,
) -> dict[int, tuple[Any, float]]:
    """Fault-tolerant execution of the pending grid points.

    One pool attempt per task; the first timeout or broken-pool event
    abandons the pool (salvaging finished futures) and everything still
    unfinished re-dispatches serially under the retry budget.
    """
    outcomes: dict[int, tuple[Any, float]] = {}
    failures: dict[int, BaseException] = {}

    def _settle(i: int, outcome: tuple[bool, Any, float]) -> None:
        ok, payload, seconds = outcome
        if ok:
            outcomes[i] = (payload, seconds)
        else:
            timings.add("task_failed_seconds", seconds)
            failures[i] = payload

    if jobs > 1 and len(pending) > 1:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
        futures = {i: pool.submit(_attempt_call, tasks[i].fn, tasks[i].args) for i in pending}
        # every task's deadline runs from submission, not from when the
        # sequential collection loop happens to reach its future — a
        # task late in the list must not get ``timeout`` *plus* the sum
        # of its predecessors' runtimes before being declared hung
        deadline = (
            None if policy.timeout is None else time.perf_counter() + policy.timeout
        )
        healthy = True
        for i in pending:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.perf_counter())
            )
            try:
                _settle(i, futures[i].result(timeout=remaining))
            except (FuturesTimeout, TimeoutError):
                timings.add("task_timeouts")
                healthy = False
                break
            except BrokenProcessPool:
                timings.add("pool_restarts")
                healthy = False
                break
            except Exception as exc:  # noqa: BLE001 - handed to the retry budget
                failures[i] = exc
        if healthy:
            pool.shutdown()
        else:
            # salvage results that finished before the pool went bad,
            # then walk away — a hung/killed worker can't be joined
            for i, fut in futures.items():
                if (
                    i not in outcomes
                    and i not in failures
                    and fut.done()
                    and not fut.cancelled()
                ):
                    try:
                        _settle(i, fut.result(timeout=0))
                    except Exception as exc:  # noqa: BLE001
                        if not isinstance(exc, BrokenProcessPool):
                            failures[i] = exc
            pool.shutdown(wait=False, cancel_futures=True)
    # serial (re-)dispatch: everything never pooled, timed out,
    # cancelled, lost to the broken pool, or failed and owed retries
    for i in pending:
        if i not in outcomes:
            outcomes[i] = _serial_attempts(tasks[i], policy, timings, failures.get(i))
    return outcomes


def run_tasks(
    tasks: list[GridTask],
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timings: Timings | None = None,
    policy: RunPolicy | None = None,
    *,
    shards: int | None = None,
    shard_workers: int = 1,
) -> list[Any]:
    """Run a grid, in order, with optional parallelism and caching.

    ``policy`` opts into fault handling (timeouts, retries, salvage);
    see :class:`RunPolicy`.  Without one, the first exception propagates
    and no recovery is attempted — the strict historical contract.

    ``shards`` switches to the resumable sharded runtime
    (:func:`repro.runtime.shard.run_sharded`): the grid is split into
    that many lease-claimed ranges drained by ``shard_workers``
    processes, every task must be keyed, and ``cache`` is mandatory —
    results travel between workers through it.  The returned list (and
    the cache entry bytes) are identical to a plain serial run.
    """
    if shards is not None:
        from .shard import run_sharded  # late: shard imports this module

        return run_sharded(
            tasks,
            shards,
            cache=cache,
            jobs=1 if jobs is None else max(1, int(jobs)),
            policy=policy,
            timings=timings,
            workers=max(1, int(shard_workers)),
        )
    timings = timings if timings is not None else Timings()
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    start = time.perf_counter()

    results: list[Any] = [None] * len(tasks)
    pending: list[int] = []
    for i, task in enumerate(tasks):
        hit = MISS
        if cache is not None and task.key is not None:
            hit = cache.get(task.key)
        if hit is MISS:
            pending.append(i)
        else:
            results[i] = hit
            timings.add("cache_hits")

    if pending:
        o = obs.current()
        if policy is not None:
            outcomes = _run_with_policy(tasks, pending, jobs, policy, timings)
            ordered = [outcomes[i] for i in pending]
        elif o.enabled:
            # capture-mode dispatch: every task (serial or pooled) runs
            # under its own recording scope; worker spans are re-parented
            # onto per-task tracks and metric rows merged in task order,
            # so jobs=1 and jobs=N dumps are identical
            with o.span(
                "pool.run_tasks",
                cat="pool",
                tasks=len(tasks),
                pending=len(pending),
                jobs=jobs,
            ):
                if jobs == 1 or len(pending) == 1:
                    captured = [
                        _captured_call(tasks[i].fn, tasks[i].args) for i in pending
                    ]
                else:
                    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                        captured = list(
                            pool.map(
                                _captured_call,
                                [tasks[i].fn for i in pending],
                                [tasks[i].args for i in pending],
                            )
                        )
                ordered = []
                for i, (result, seconds, exported) in zip(pending, captured):
                    o.adopt(exported, tid=i + 1, track_name=f"task {i}")
                    o.observe("pool.task_run_seconds", seconds)
                    ordered.append((result, seconds))
        elif jobs == 1 or len(pending) == 1:
            ordered = [_timed_call(tasks[i].fn, tasks[i].args) for i in pending]
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                ordered = list(
                    pool.map(
                        _timed_call,
                        [tasks[i].fn for i in pending],
                        [tasks[i].args for i in pending],
                    )
                )
        for i, (result, seconds) in zip(pending, ordered):
            if result is _FAILED:
                continue  # salvage mode: leave the slot as None, never cache
            results[i] = result
            timings.add("tasks_run")
            timings.add("task_seconds", seconds)
            if cache is not None and tasks[i].key is not None:
                cache.put(tasks[i].key, result)

    timings.add("tasks", len(tasks))
    timings.add("wall_seconds", time.perf_counter() - start)
    return results
