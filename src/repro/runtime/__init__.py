"""Sweep-execution runtime: parallel grid running + result caching.

The experiment sweeps — Tab. II, Tab. III, Fig. 10, the multi-layer
optimizer, and :meth:`repro.core.pipeline.CompressionPipeline.sweep` —
are grids of independent points.  This package owns how those grids
execute:

* :func:`run_tasks` / :class:`GridTask` fan a grid over a process pool
  (``REPRO_JOBS`` env var or ``jobs=`` kwarg; ``jobs=1`` is the exact
  serial loop) with order-preserving, deterministic results;
* :class:`ResultCache` is a content-addressed on-disk store (SHA-256 of
  weight-stream bytes + codec spec + delta + storage format +
  evaluation-set fingerprint) living next to the trained-weight cache,
  consulted *before* dispatch so warm sweeps run zero tasks;
* :class:`Timings` counts tasks run, cache hits, and in-task seconds —
  the counters experiments print so you can see what was skipped;
* :class:`RunPolicy` opts a :func:`run_tasks` call into fault handling:
  per-task timeouts, bounded retry with backoff, ``BrokenProcessPool``
  recovery via serial re-dispatch, and partial-result salvage;
* :func:`run_sharded` (or ``run_tasks(shards=...)``) drains a keyed
  grid cooperatively across processes via lease-claimed shard ranges
  under the cache dir — resumable after ``kill -9``, convergent to the
  exact serial result set (see :mod:`repro.runtime.shard`).
"""

from .cache import MISS, ResultCache, results_cache_enabled
from .keys import (
    codec_spec,
    fingerprint_array,
    fingerprint_arrays,
    fingerprint_bytes,
    result_key,
)
from .pool import GridTask, RunPolicy, Timings, default_jobs, run_tasks

_SHARD_EXPORTS = {
    "LeaseManager",
    "ShardStore",
    "grid_id",
    "run_sharded",
    "shard_ranges",
}


def __getattr__(name: str):
    # lazy: ``python -m repro.runtime.shard`` imports this package first,
    # and an eager ``from .shard import ...`` here would double-import
    # the very module runpy is about to execute
    if name in _SHARD_EXPORTS:
        from . import shard

        return getattr(shard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "MISS",
    "ResultCache",
    "results_cache_enabled",
    "codec_spec",
    "fingerprint_array",
    "fingerprint_arrays",
    "fingerprint_bytes",
    "result_key",
    "GridTask",
    "RunPolicy",
    "Timings",
    "default_jobs",
    "run_tasks",
    "LeaseManager",
    "ShardStore",
    "grid_id",
    "run_sharded",
    "shard_ranges",
]
