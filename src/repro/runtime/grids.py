"""Named sweep grids for the shard-runner CLI and benchmarks.

The sharded runner (:mod:`repro.runtime.shard`) coordinates *any* keyed
grid, but its CLI, the CI smoke, and the sweep benchmark need concrete
grids that are deterministic (so digests agree across processes),
self-contained (no dataset downloads), and cost-tunable (so the
benchmark can size a task to ~100 ms while the smoke stays instant).

Each task runs a miniature of the paper's per-layer pipeline on
synthetic weights — delta-threshold duplicate collapsing, histogram
entropy of the surviving values, and an energy-flavored checksum —
purely in NumPy, seeded by the task index.  The result dict is small,
JSON-serializable, and bit-stable, so cached entries are byte-identical
wherever and whenever the task executes.
"""

from __future__ import annotations

import numpy as np

from .keys import result_key
from .pool import GridTask

__all__ = ["bench_point", "bench_grid", "demo_grid"]


def bench_point(seed: int, n: int, reps: int) -> dict:
    """One deterministic grid point: compress-ish work on fake weights.

    ``n`` scales the array, ``reps`` the repeated passes — together the
    CPU-cost knob.  Everything derives from ``seed`` through a fixed
    RNG stream, so the result (and hence the cached entry bytes) is a
    pure function of the arguments.
    """
    rng = np.random.default_rng(seed)
    weights = rng.standard_normal(n).astype(np.float32)
    delta = 0.02
    kept = zeros = entropy = checksum = 0.0
    for _ in range(reps):
        # delta-collapse: values within +/-delta of a codebook level
        # snap onto it (the paper's lossy dedup, one level per pass)
        levels = np.round(weights / (2 * delta)) * (2 * delta)
        survivors = np.unique(levels)
        kept += float(survivors.size)
        zeros += float(np.count_nonzero(levels == 0.0))
        hist, _ = np.histogram(levels, bins=64)
        p = hist[hist > 0] / levels.size
        entropy += float(-(p * np.log2(p)).sum())
        checksum += float(np.abs(levels).sum())
        weights = np.tanh(levels * 1.003)  # perturb for the next pass
    return {
        "seed": int(seed),
        "n": int(n),
        "reps": int(reps),
        "kept": kept,
        "zeros": zeros,
        "entropy": entropy,
        "checksum": checksum,
    }


def _grid(kind: str, size: int, n: int, reps: int) -> list[GridTask]:
    return [
        GridTask(
            fn=bench_point,
            args=(seed, n, reps),
            key=result_key(kind, seed=seed, n=n, reps=reps),
        )
        for seed in range(size)
    ]


def bench_grid(size: int = 32, n: int = 200_000, reps: int = 12) -> list[GridTask]:
    """The sweep-benchmark grid: ``size`` points of tunable real work."""
    return _grid("shard-bench", size, n, reps)


def demo_grid(size: int = 8, n: int = 4_096, reps: int = 2) -> list[GridTask]:
    """A near-instant grid for smokes and the CLI default."""
    return _grid("shard-demo", size, n, reps)
