"""Sharded, resumable sweep execution over the content-addressed keyspace.

A sweep grid is a list of :class:`~repro.runtime.pool.GridTask` whose
results land in a :class:`~repro.runtime.cache.ResultCache` under keys
that depend only on *what* each point computes.  That makes the grid a
work queue any number of processes can drain cooperatively — as long as
no two workers waste time on the same range and a dead worker's range
is eventually taken over.  This module supplies that coordination:

* **grid identity** — :func:`grid_id` hashes the ordered task keys, so
  every run of the same grid (any process, any machine sharing the
  cache dir) agrees on one namespace under ``<cache>/shards/<gid>/``;
* **shard-claim protocol** — the grid is split into contiguous task
  ranges (:func:`shard_ranges`); a worker claims shard ``i`` by
  ``O_CREAT | O_EXCL``-creating ``shard-%04d.lease`` (exactly one
  winner per filesystem semantics) and keeps the claim alive with a
  heartbeat thread that bumps the lease mtime.  A lease whose mtime is
  older than the TTL belongs to a dead worker: reclaim renames it to a
  unique tombstone (``shard-%04d.reclaimed-<nonce>``), and since only
  one ``os.rename`` of a given source can succeed, the takeover is
  exactly-once even with many greedy survivors;
* **resumability** — a finished shard persists an atomic
  ``shard-%04d.done.json`` marker carrying its task keys, its
  :mod:`repro.obs` export, and its timing counters.  Kill any worker at
  any point and relaunch: done shards are skipped, the victim's lease
  expires and its shard re-runs.  Tasks are deterministic and results
  content-addressed, so duplicated execution converges — the re-run
  ``put`` writes byte-identical entries and last-writer-wins;
* **convergent assembly** — once every shard is done, the driver adopts
  the per-shard obs exports (in shard order, so merges are
  deterministic), folds the shard timing counters through the
  wall-clock-envelope merge rule, and materializes the result list with
  a warm serial :func:`~repro.runtime.pool.run_tasks` pass — which is
  also the quarantine-aware reconciliation: an entry that rotted on
  disk is quarantined by the cache and simply re-executed in-process.

The module doubles as a CLI so independent OS processes (or hosts
sharing a filesystem) can cooperate on one grid::

    python -m repro.runtime.shard --grid bench --shards 8 \\
        --cache /tmp/sweep-cache --worker-id w0

Run it twice concurrently with different ``--worker-id`` values and the
two processes split the shards between them; the printed ``digest`` —
the SHA-256 over the cached result entries in task order — is identical
to a ``--workers 1`` run, which is the byte-identity contract in
executable form.
"""

from __future__ import annotations

import argparse
import hashlib
import importlib
import json
import multiprocessing as mp
import os
import tempfile
import threading
import time
import uuid
from pathlib import Path

from .. import obs
from .cache import ResultCache
from .pool import GridTask, RunPolicy, Timings, run_tasks

__all__ = [
    "grid_id",
    "shard_ranges",
    "ShardStore",
    "LeaseManager",
    "run_sharded",
]


def grid_id(tasks: list[GridTask]) -> str:
    """Stable identity of a grid: SHA-256 over its ordered task keys.

    Every task must carry a key — uncached tasks have no cross-process
    identity and cannot participate in a sharded run.
    """
    keys = []
    for i, task in enumerate(tasks):
        if task.key is None:
            raise ValueError(
                f"task {i} has no cache key; sharded execution requires "
                "every task to be content-addressed"
            )
        keys.append(task.key)
    payload = json.dumps(keys, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def shard_ranges(n_tasks: int, num_shards: int) -> list[tuple[int, int]]:
    """Split ``n_tasks`` into ``num_shards`` contiguous ``(start, stop)``
    ranges, sizes differing by at most one (earlier shards get the
    remainder) — a pure function of the two integers, so every worker
    computes the same partition."""
    num_shards = max(1, min(num_shards, n_tasks)) if n_tasks else 1
    base, rem = divmod(n_tasks, num_shards)
    ranges, start = [], 0
    for s in range(num_shards):
        stop = start + base + (1 if s < rem else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


class ShardStore:
    """Filesystem layout of one grid's coordination state.

    Everything lives flat under ``root`` (``<cache>/shards/<gid>/``):
    ``shard-%04d.lease`` (claim files), ``shard-%04d.done.json``
    (atomic completion markers), ``shard-%04d.reclaimed-<nonce>``
    (tombstones of expired leases — their count is the audit trail of
    how many takeovers each shard suffered).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    @classmethod
    def for_grid(cls, cache: ResultCache, gid: str) -> "ShardStore":
        return cls(Path(cache.root) / "shards" / gid)

    def lease_path(self, shard: int) -> Path:
        return self.root / f"shard-{shard:04d}.lease"

    def done_path(self, shard: int) -> Path:
        return self.root / f"shard-{shard:04d}.done.json"

    def new_tomb_path(self, shard: int) -> Path:
        """A fresh, collision-free tombstone name for ``shard``."""
        return self.root / f"shard-{shard:04d}.reclaimed-{uuid.uuid4().hex}"

    def tombs(self, shard: int) -> list[Path]:
        return sorted(self.root.glob(f"shard-{shard:04d}.reclaimed-*"))

    def is_done(self, shard: int) -> bool:
        return self.done_path(shard).exists()

    def write_done(self, shard: int, doc: dict) -> None:
        """Atomically persist the completion marker (temp + fsync +
        replace — the same durability discipline as cache puts, so a
        crash mid-write never leaves a truncated marker that would make
        the shard look finished)."""
        path = self.done_path(shard)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(doc, f)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def read_done(self, shard: int) -> dict | None:
        """The completion marker, or ``None`` if absent/unreadable.

        A corrupt marker is moved aside (``.corrupt``) so the shard
        reads as not-done and simply re-runs — the same quarantine
        stance the result cache takes.
        """
        path = self.done_path(shard)
        try:
            with open(path, encoding="utf-8") as f:
                return json.load(f)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            try:
                os.replace(path, path.with_suffix(".corrupt"))
            except OSError:
                pass
            return None


class LeaseManager:
    """Claim, heartbeat, and reclaim shard leases for one worker.

    ``try_claim`` creates the lease with ``O_CREAT | O_EXCL`` — the
    filesystem arbitrates exactly one winner.  While held, a daemon
    thread refreshes the mtime of every held lease each
    ``heartbeat`` seconds; a lease whose mtime age exceeds ``ttl`` is
    considered abandoned and eligible for :meth:`reclaim_if_stale`,
    which renames it to a unique tombstone — at most one renamer of a
    given lease file can succeed, so concurrent survivors cannot both
    take over the same claim.
    """

    def __init__(
        self,
        store: ShardStore,
        worker: str,
        ttl: float = 30.0,
        heartbeat: float | None = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.store = store
        self.worker = worker
        self.ttl = float(ttl)
        self.heartbeat = (
            max(0.02, self.ttl / 4.0) if heartbeat is None else float(heartbeat)
        )
        self._held: set[int] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._probe = self.store.root / f".clock-probe-{worker}"

    def _beat(self) -> None:
        while not self._stop.wait(self.heartbeat):
            with self._lock:
                held = list(self._held)
            for shard in held:
                try:
                    os.utime(self.store.lease_path(shard))
                except OSError:
                    pass  # reclaimed out from under us; the run is still safe

    def try_claim(self, shard: int) -> bool:
        """Attempt to own ``shard``; False if someone else holds it."""
        path = self.store.lease_path(shard)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump({"worker": self.worker, "pid": os.getpid()}, f)
        with self._lock:
            self._held.add(shard)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._beat, name="shard-heartbeat", daemon=True
                )
                self._thread.start()
        return True

    def release(self, shard: int) -> None:
        with self._lock:
            self._held.discard(shard)
        try:
            os.unlink(self.store.lease_path(shard))
        except OSError:
            pass

    def _fs_now(self) -> float:
        """"Now" on the clock that stamps lease mtimes.

        Lease staleness is an mtime-age comparison, and on a shared
        (network) filesystem mtimes come from the *server's* clock.
        Measuring age against the local ``time.time()`` mixes the two
        clock domains: a server clock lagging by more than ``ttl``
        makes every freshly-heartbeated lease read as abandoned, and
        survivors tombstone live claims.  Touching a probe file in the
        store and reading its mtime keeps both sides of the comparison
        on the one clock that stamped the lease.  Falls back to the
        local clock when the probe cannot be written.
        """
        try:
            self._probe.touch()
            os.utime(self._probe)
            return os.stat(self._probe).st_mtime
        except OSError:
            return time.time()

    def is_stale(self, shard: int) -> bool:
        """True when the lease exists but its heartbeat has lapsed."""
        # probe first, then stat the lease: a heartbeat landing between
        # the two can only make the lease *newer* than "now", which
        # reads as fresh — the safe direction
        now = self._fs_now()
        try:
            st = os.stat(self.store.lease_path(shard))
        except OSError:
            return False  # absent: claimable the normal way, not stale
        return (now - st.st_mtime) > self.ttl

    def reclaim_if_stale(self, shard: int) -> bool:
        """Tombstone an expired lease; True if *this* call won the rename."""
        if not self.is_stale(shard):
            return False
        try:
            os.rename(self.store.lease_path(shard), self.store.new_tomb_path(shard))
        except OSError:
            return False  # another survivor renamed it first
        obs.current().count("shard.reclaimed")
        return True

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        with self._lock:
            held = list(self._held)
        for shard in held:
            self.release(shard)
        try:
            os.unlink(self._probe)
        except OSError:
            pass


def _run_shard(
    shard: int,
    start: int,
    stop: int,
    tasks: list[GridTask],
    store: ShardStore,
    cache: ResultCache,
    jobs: int,
    policy: RunPolicy | None,
    worker: str,
) -> None:
    """Execute one claimed range and persist its completion marker.

    The shard runs under its own :func:`repro.obs.capture` scope so its
    spans and metric rows ship home inside the done marker — the
    assembly step adopts them in shard order, giving serial and sharded
    runs identical merged metrics (modulo wall-clock values)."""
    local = Timings()
    with obs.capture() as cap:
        with cap.span("shard.run", cat="shard", shard=shard, start=start, stop=stop):
            run_tasks(
                tasks[start:stop], jobs=jobs, cache=cache, timings=local, policy=policy
            )
    store.write_done(
        shard,
        {
            "shard": shard,
            "range": [start, stop],
            "keys": [t.key for t in tasks[start:stop]],
            "worker": worker,
            "obs": cap.export(),
            "timings": local.counters,
        },
    )


def work_loop(
    tasks: list[GridTask],
    ranges: list[tuple[int, int]],
    store: ShardStore,
    cache: ResultCache,
    *,
    jobs: int = 1,
    policy: RunPolicy | None = None,
    worker: str | None = None,
    lease_ttl: float = 30.0,
    heartbeat: float | None = None,
    poll: float = 0.2,
) -> None:
    """Drain shards until every one has a done marker.

    The loop claims greedily; when nothing is claimable it checks the
    remaining leases for staleness (reclaiming any expired one so the
    *next* pass can claim it) and sleeps ``poll`` seconds.  Exit means
    the whole grid is complete — possibly thanks to other workers."""
    worker = worker if worker is not None else f"pid-{os.getpid()}"
    leases = LeaseManager(store, worker, ttl=lease_ttl, heartbeat=heartbeat)
    try:
        while True:
            progress = False
            for shard, (start, stop) in enumerate(ranges):
                if store.is_done(shard) or not leases.try_claim(shard):
                    continue
                try:
                    # claim won a race against a done marker written just
                    # after our is_done check: re-check before working
                    if not store.is_done(shard):
                        progress = True
                        _run_shard(
                            shard, start, stop, tasks, store, cache, jobs,
                            policy, worker,
                        )
                finally:
                    leases.release(shard)
            undone = [s for s in range(len(ranges)) if not store.is_done(s)]
            if not undone:
                return
            if not progress:
                for shard in undone:
                    leases.reclaim_if_stale(shard)
                time.sleep(poll)
    finally:
        leases.close()


def _worker_main(
    tasks: list[GridTask],
    ranges: list[tuple[int, int]],
    store_root: str,
    cache_root: str,
    jobs: int,
    policy: RunPolicy | None,
    worker: str,
    lease_ttl: float,
    heartbeat: float | None,
    poll: float,
) -> None:
    """Child-process entry: rebuild the store/cache handles and drain."""
    work_loop(
        tasks,
        ranges,
        ShardStore(store_root),
        ResultCache(root=cache_root),
        jobs=jobs,
        policy=policy,
        worker=worker,
        lease_ttl=lease_ttl,
        heartbeat=heartbeat,
        poll=poll,
    )


def _mp_context():
    """Fork when the platform has it (cheap, inherits closures), else spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def assemble(
    tasks: list[GridTask],
    store: ShardStore,
    cache: ResultCache,
    num_shards: int,
    *,
    timings: Timings,
    policy: RunPolicy | None = None,
) -> list:
    """Fold the done markers into the ambient obs/timings and
    materialize the ordered result list from the shared cache.

    Obs exports merge in ascending shard order — a deterministic order
    independent of which worker finished when — so any completion
    interleaving produces the same merged registry (counters and
    histograms are commutative; the fixed order also pins gauge
    last-writer-wins).  Result materialization is a warm serial
    :func:`run_tasks` pass: every healthy entry is a cache hit, and an
    entry that went unreadable since its shard ran is quarantined by
    the cache and transparently re-executed in-process — the
    reconciliation path that keeps the final list complete even after
    on-disk damage.
    """
    o = obs.current()
    for shard in range(num_shards):
        marker = store.read_done(shard)
        if marker is None:
            continue  # unreadable marker: its tasks re-run below anyway
        o.adopt(marker["obs"], tid=shard + 1, track_name=f"shard {shard}")
        shard_timings = Timings()
        for name, value in marker["timings"].items():
            # "tasks" counts submissions; the assembly pass below counts
            # every task exactly once, and shard re-runs after a crash
            # would inflate a summed version — so it is not merged
            if name != "tasks":
                shard_timings.add(name, value)
        timings.merge(shard_timings)
    return run_tasks(tasks, jobs=1, cache=cache, timings=timings, policy=policy)


def run_sharded(
    tasks: list[GridTask],
    num_shards: int | None = None,
    *,
    cache: ResultCache,
    jobs: int = 1,
    policy: RunPolicy | None = None,
    timings: Timings | None = None,
    workers: int = 1,
    worker: str | None = None,
    lease_ttl: float = 30.0,
    heartbeat: float | None = None,
    poll: float = 0.2,
) -> list:
    """Run a keyed grid cooperatively and return ordered results.

    Equivalent to ``run_tasks(tasks, cache=cache)`` in its output —
    same results, byte-identical cache entries — but execution is split
    into ``num_shards`` lease-claimed ranges drained by this process
    plus ``workers - 1`` forked helpers (and any concurrently launched
    processes pointing at the same cache dir).  Killing any worker and
    relaunching resumes from the done markers; no task is lost, and
    duplicated work converges onto identical cache entries.

    ``jobs`` is the *within-shard* parallelism each worker applies
    (usually 1: sharding already provides the process-level fan-out).
    """
    if cache is None:
        raise ValueError("sharded execution requires a ResultCache")
    if not cache.enabled:
        raise ValueError(
            "sharded execution requires an enabled result cache; "
            "results travel between workers through it"
        )
    timings = timings if timings is not None else Timings()
    if not tasks:
        return run_tasks([], jobs=1, cache=cache, timings=timings, policy=policy)
    gid = grid_id(tasks)
    store = ShardStore.for_grid(cache, gid)
    if num_shards is None:
        num_shards = min(len(tasks), max(4 * workers, 8))
    ranges = shard_ranges(len(tasks), num_shards)
    worker = worker if worker is not None else f"pid-{os.getpid()}"

    procs = []
    if workers > 1:
        ctx = _mp_context()
        for w in range(1, workers):
            p = ctx.Process(
                target=_worker_main,
                args=(
                    tasks, ranges, str(store.root), str(cache.root), jobs,
                    policy, f"{worker}-w{w}", lease_ttl, heartbeat, poll,
                ),
            )
            p.start()
            procs.append(p)
    try:
        work_loop(
            tasks, ranges, store, cache,
            jobs=jobs, policy=policy, worker=worker,
            lease_ttl=lease_ttl, heartbeat=heartbeat, poll=poll,
        )
    finally:
        for p in procs:
            p.join()
    return assemble(
        tasks, store, cache, len(ranges), timings=timings, policy=policy
    )


# ---------------------------------------------------------------------------
# CLI


def results_digest(tasks: list[GridTask], cache: ResultCache) -> str:
    """SHA-256 over the raw cache-entry bytes of the grid, in task order.

    Two runs agree on this digest iff their result sets are
    byte-identical — the check CI's two-shard smoke performs against a
    serial baseline.  Raises if any entry is missing (the grid has not
    finished)."""
    h = hashlib.sha256()
    for task in tasks:
        path = cache._path(task.key)
        h.update(path.read_bytes())
    return h.hexdigest()


def _resolve_grid(spec: str, size: int | None):
    """A grid factory from ``bench``/``demo`` or ``module:callable``."""
    if ":" in spec:
        mod_name, fn_name = spec.split(":", 1)
        factory = getattr(importlib.import_module(mod_name), fn_name)
    else:
        from . import grids

        try:
            factory = getattr(grids, f"{spec}_grid")
        except AttributeError:
            raise SystemExit(
                f"unknown grid {spec!r}; use bench, demo, or module:callable"
            ) from None
    return factory(size=size) if size is not None else factory()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.shard",
        description="Drain one sweep grid as a cooperating shard worker.",
    )
    parser.add_argument(
        "--grid", default="demo",
        help="named grid (bench, demo) or module:callable returning GridTasks",
    )
    parser.add_argument("--size", type=int, default=None, help="grid size override")
    parser.add_argument("--shards", type=int, default=None, help="shard count")
    parser.add_argument("--cache", default=None, help="result-cache directory")
    parser.add_argument("--worker-id", default=None, help="worker name in leases")
    parser.add_argument("--jobs", type=int, default=1, help="within-shard jobs")
    parser.add_argument(
        "--workers", type=int, default=1, help="extra forked workers in-process"
    )
    parser.add_argument("--lease-ttl", type=float, default=30.0)
    parser.add_argument("--poll", type=float, default=0.2)
    args = parser.parse_args(argv)

    tasks = _resolve_grid(args.grid, args.size)
    cache = ResultCache(root=args.cache, enabled=True)
    timings = Timings()
    run_sharded(
        tasks,
        args.shards,
        cache=cache,
        jobs=args.jobs,
        timings=timings,
        workers=args.workers,
        worker=args.worker_id,
        lease_ttl=args.lease_ttl,
        poll=args.poll,
    )
    try:
        print(
            f"grid={grid_id(tasks)} tasks={len(tasks)} "
            f"digest={results_digest(tasks, cache)}"
        )
        print(timings.summary())
    except BrokenPipeError:  # downstream (e.g. `| head`) closed stdout
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
