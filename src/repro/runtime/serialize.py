"""JSON round-tripping of result dataclasses for the on-disk cache.

The result cache stores grid-point outputs — ``DeltaRecord``,
``CompressionReport``, accelerator ``LayerResult``/``ModelResult`` — as
JSON.  Dataclasses are tagged with their import path so decoding needs
no registry imports here (keeping :mod:`repro.runtime` free of static
dependencies on the packages that *use* it).

Fidelity contract: a value that went through ``decode(encode(v))``
compares equal to the original — Python's JSON float formatting uses
``repr``, which round-trips IEEE doubles exactly, so cached records are
byte-identical to freshly computed ones (the warm-cache identity the
sweep tests assert).  Tuples come back as lists; none of the cached
result types carry tuple fields.
"""

from __future__ import annotations

import dataclasses
import importlib

__all__ = ["encode", "decode", "SerializationError"]

_TAG = "__dataclass__"


class SerializationError(ValueError):
    """A value (or tag) the cache codec refuses to handle."""


def encode(value):
    """Recursively convert ``value`` into JSON-serializable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        fields = {
            f.name: encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {_TAG: f"{cls.__module__}:{cls.__qualname__}", "fields": fields}
    if isinstance(value, dict):
        if _TAG in value:
            raise SerializationError(f"dict key collides with tag {_TAG!r}")
        return {str(k): encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise SerializationError(f"cannot cache value of type {type(value).__name__}")


def _resolve(path: str) -> type:
    module_name, _, qualname = path.partition(":")
    if not module_name.startswith("repro.") and module_name != "repro":
        raise SerializationError(f"refusing to import {module_name!r} from cache")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
        raise SerializationError(f"{path!r} is not a dataclass")
    return obj


def decode(value):
    """Inverse of :func:`encode`."""
    if isinstance(value, dict):
        if _TAG in value:
            cls = _resolve(value[_TAG])
            fields = {k: decode(v) for k, v in value.get("fields", {}).items()}
            return cls(**fields)
        return {k: decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode(v) for v in value]
    return value
