"""Content-addressed cache keys for sweep grid points.

A grid point is identified by *what* it computes on, not *when* it ran:
the SHA-256 of the weight-stream bytes, the codec spec (name plus
constructor parameters), the tolerance delta, the storage format, and a
fingerprint of the evaluation set (plus, for accuracy points, the full
model state — accuracy depends on every layer, not just the compressed
one).  Any change to any ingredient changes the key; identical inputs
collide onto the same entry regardless of process, job count, or run
order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

__all__ = [
    "fingerprint_bytes",
    "fingerprint_array",
    "fingerprint_arrays",
    "codec_spec",
    "result_key",
]


def fingerprint_bytes(data: bytes) -> str:
    """SHA-256 hex digest of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def fingerprint_array(arr: np.ndarray) -> str:
    """Content hash of one array: dtype, shape, and C-order bytes."""
    a = np.ascontiguousarray(np.asarray(arr))
    h = hashlib.sha256()
    h.update(str(a.dtype).encode())
    h.update(repr(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


def fingerprint_arrays(*arrays: np.ndarray) -> str:
    """Content hash of an ordered collection of arrays.

    Used for evaluation-set fingerprints (``x_test``, ``y_test``) and
    whole-model state (the ``state_dict`` values in key order).
    """
    h = hashlib.sha256()
    for arr in arrays:
        h.update(fingerprint_array(arr).encode())
    return h.hexdigest()


def _jsonable(value):
    """Normalize spec ingredients into canonically serializable values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}")


def codec_spec(codec) -> dict:
    """Canonical, hashable description of a codec argument.

    String specs hash as themselves (their per-delta parameters enter
    the key separately); :class:`~repro.core.codecs.Codec` instances
    hash as registry name plus their ``params()``, so two instances
    with equal construction are the same configuration.  (Duck-typed so
    :mod:`repro.runtime` carries no static import of the core package.)
    """
    if isinstance(codec, str):
        return {"name": codec, "params": None}
    return {"name": codec.name, "params": _jsonable(codec.params())}


def result_key(kind: str, **ingredients) -> str:
    """SHA-256 key over a canonical JSON encoding of the ingredients.

    ``kind`` namespaces the grid-point type (``"delta-record"``,
    ``"tab2-report"``, ``"accel-run"``, ...) so results of different
    shapes never alias even if their ingredients coincide.
    """
    doc = {"kind": kind, "ingredients": _jsonable(ingredients)}
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()
