"""Content-addressed on-disk cache of sweep grid-point results.

Entries live next to the trained-weight cache, under
``$REPRO_CACHE/results/`` (``~/.cache/repro-weights/results/`` by
default), one JSON file per key, sharded by the first two hex digits.
Keys come from :func:`repro.runtime.keys.result_key` — the SHA-256 of
everything the result depends on — so invalidation is automatic: change
the weights, the delta, the codec spec, the storage format, or the
evaluation set and you address a different entry; stale files are never
*wrong*, merely unreachable.

Writes are atomic (temp file + flush + fsync + ``os.replace``), so a
sweep killed mid-write never leaves a truncated entry behind, and two
processes racing a ``put`` on the same key both land a readable entry
(each writes its own temp file; the replaces serialize, last writer
wins).  An entry that exists
but cannot be read back (truncated by an external writer, bit-rotted,
hand-edited) is *quarantined* — moved aside to ``<key>.corrupt`` — and
treated as a miss, so the next ``put`` rebuilds it and the damaged bytes
stay on disk for inspection instead of being silently clobbered.

``REPRO_RESULT_CACHE=0`` disables the cache process-wide (every ``get``
misses, every ``put`` is dropped) — the knob for forcing cold runs.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from .. import obs
from .serialize import SerializationError, decode, encode

__all__ = ["ResultCache", "results_cache_enabled", "MISS"]

#: sentinel distinguishing "no entry" from a cached ``None``
MISS = object()


def results_cache_enabled() -> bool:
    return os.environ.get("REPRO_RESULT_CACHE", "") not in ("0",)


class ResultCache:
    """Keyed store of JSON-serializable result objects.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``results/`` inside the weight
        cache dir (``REPRO_CACHE`` or ``~/.cache/repro-weights``).
    enabled:
        Force-enable/disable; defaults to the ``REPRO_RESULT_CACHE``
        environment switch.

    The ``hits``/``misses``/``puts`` counters feed the sweep timing
    summaries, which is how a warm rerun *proves* it skipped the
    encode/evaluate work.
    """

    def __init__(self, root: str | Path | None = None, enabled: bool | None = None):
        if root is None:
            # late import: common owns the REPRO_CACHE resolution
            from ..experiments.common import cache_dir

            root = cache_dir() / "results"
        self.root = Path(root)
        self.enabled = results_cache_enabled() if enabled is None else enabled
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable entry aside so it stops shadowing the key."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            return  # racing readers: someone else already moved it
        self.quarantined += 1
        obs.current().count("cache.quarantined")

    def _miss(self):
        self.misses += 1
        obs.current().count("cache.misses")
        return MISS

    def get(self, key: str):
        """The cached value for ``key``, or :data:`MISS`.

        A present-but-unreadable entry (truncated JSON, undecodable
        document) is quarantined to ``<key>.corrupt`` and reported as a
        miss; a simply absent entry is a plain miss.
        """
        if not self.enabled:
            return self._miss()
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            value = decode(doc["value"])
        except FileNotFoundError:
            return self._miss()
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            self._quarantine(path)
            return self._miss()
        self.hits += 1
        obs.current().count("cache.hits")
        return value

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` (atomic, last writer wins)."""
        if not self.enabled:
            return
        try:
            doc = {"key": key, "value": encode(value)}
        except SerializationError:
            return  # uncacheable result shapes silently skip the cache
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(doc, f)
                # flush + fsync *before* the rename: os.replace is atomic
                # against concurrent readers, but without the fsync a
                # crash can reorder the metadata ahead of the data and
                # leave a truncated entry under the final name — which a
                # later get() would quarantine as corruption
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
            self.puts += 1
            obs.current().count("cache.puts")
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def merge(self, other: "ResultCache | str | Path") -> dict[str, int]:
        """Fold another cache's entries into this one, byte for byte.

        The workflow this serves: N workers sweep into N *separate*
        cache dirs (no shared filesystem), then one process merges them
        and the union is indistinguishable from a single-cache run.
        Raw entry bytes are copied (atomic temp + ``os.replace``), so a
        merged entry is byte-identical to its source; an entry already
        present locally is skipped (same key ⇒ same content, and
        skipping preserves whatever bytes a concurrent reader may have
        mapped).  Unreadable source entries — truncated JSON, a
        filename that disagrees with the recorded key, an undecodable
        document — are quarantined *in the source tree* and never
        imported, the same stance :meth:`get` takes locally.

        Returns ``{"merged": .., "skipped": .., "corrupt": ..}``.
        """
        src_root = Path(other.root if isinstance(other, ResultCache) else other)
        counts = {"merged": 0, "skipped": 0, "corrupt": 0}
        for src in sorted(src_root.glob("??/*.json")):
            key = src.stem
            try:
                raw = src.read_bytes()
                doc = json.loads(raw)
                if doc.get("key") != key:
                    raise ValueError("entry/key filename mismatch")
                decode(doc["value"])
            except (OSError, ValueError, KeyError, TypeError, AttributeError):
                try:
                    os.replace(src, src.with_suffix(".corrupt"))
                except OSError:
                    pass
                counts["corrupt"] += 1
                obs.current().count("cache.merge_corrupt")
                continue
            dest = self._path(key)
            if dest.exists():
                counts["skipped"] += 1
                continue
            dest.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=dest.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(raw)
                    f.flush()
                    os.fsync(f.fileno())
                os.replace(tmp, dest)
                counts["merged"] += 1
                obs.current().count("cache.merged")
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        return counts

    def counters(self) -> dict[str, int]:
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_puts": self.puts,
            "cache_quarantined": self.quarantined,
        }
