"""Named, deterministic workloads the ablation features run on.

Two kinds:

* **streams** — 1-D float32 weight streams for the codec-side features:
  the selected LeNet-5 layer (``lenet-dense``), a seeded Gaussian
  stream (``gaussian``), and the paper's Fig. 5 adversarial
  alternating-pairs ramp (``adversarial``).  ``fast`` truncates them so
  the CI smoke stays cheap.
* **accelerator runs** — :func:`layer_run` executes the selected
  LeNet-5 layer (or a named one) on the flit-level simulator with an
  :class:`~repro.mapping.accelerator.AcceleratorConfig` override dict;
  the NoC-side features diff its cycles/latency/energy.

Everything here is a pure function of ``(name, fast)`` — workloads must
be bit-reproducible across processes and hosts, because their outputs
feed content-addressed cache keys and the serial == sharded identity
contract.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..mapping import Accelerator
from ..mapping.accelerator import AcceleratorConfig, ModelResult
from ..nn import zoo
from ..runtime import fingerprint_array

__all__ = [
    "STREAM_WORKLOADS",
    "stream",
    "stream_fingerprint",
    "layer_run",
    "result_metrics",
    "decoded_digest",
]

#: stream size caps: full vs fast (CI smoke)
_FULL_N = 16_384
_FAST_N = 4_096


def _lenet_dense(n: int) -> np.ndarray:
    module = zoo.lenet5
    w = module.full().materialize(module.SELECTED_LAYER).ravel()
    return w[:n].astype(np.float32)


def _gaussian(n: int) -> np.ndarray:
    return np.random.default_rng(7).normal(size=n).astype(np.float32)


def _adversarial(n: int) -> np.ndarray:
    # pairwise-alternating worst case of the paper's Fig. 5a: strict
    # monotonicity yields CR ~ 1, the weak rule recovers one long ramp
    idx = np.arange(n)
    return (idx * 0.01 + (idx % 2) * 0.5).astype(np.float32)


STREAM_WORKLOADS = {
    "lenet-dense": _lenet_dense,
    "gaussian": _gaussian,
    "adversarial": _adversarial,
}


def stream(name: str, fast: bool = False) -> np.ndarray:
    """The named weight stream (deterministic; ``fast`` truncates)."""
    try:
        factory = STREAM_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown stream workload {name!r}; "
            f"available: {sorted(STREAM_WORKLOADS)}"
        ) from None
    return factory(_FAST_N if fast else _FULL_N)


def stream_fingerprint(name: str, fast: bool = False) -> str:
    """Content fingerprint of a stream workload (for cache keys)."""
    return fingerprint_array(stream(name, fast))


def layer_run(
    overrides: dict | None = None,
    *,
    delta_pct: float | None = 10.0,
    layer: str | None = None,
    mode: str = "flit",
) -> ModelResult:
    """One LeNet-5 layer on the accelerator, config-overridable.

    The spec is trimmed to the target layer (the fig_scale_matrix
    pattern), compressed at ``delta_pct`` (``None`` = uncompressed) with
    the paper's line-fit codec, and run in ``mode`` on an
    :class:`Accelerator` built from the default config plus
    ``overrides`` — the NoC/mapping toggle hooks are all
    ``AcceleratorConfig`` fields, so every feature variant is one
    override away.
    """
    from ..core.codecs import LineFitCodec
    from ..core.segmentation import delta_from_percent

    module = zoo.lenet5
    spec = module.full()
    layer = layer or module.SELECTED_LAYER
    spec = dataclasses.replace(spec, layers=[spec.layer(layer)])
    config = dataclasses.replace(AcceleratorConfig(), **(overrides or {}))
    acc = Accelerator(config)
    compression = None
    if delta_pct is not None:
        weights = module.full().materialize(layer).ravel()
        delta = delta_from_percent(weights, delta_pct)
        blob = LineFitCodec(delta=float(delta)).encode(weights)
        compression = {layer: blob}
    return acc.run_model(spec, compression, mode=mode)


def result_metrics(result: ModelResult) -> dict:
    """Flatten a :class:`ModelResult` into the ablation metric mapping."""
    lat = result.total_latency
    en = result.total_energy
    events: dict[str, int] = {}
    for layer in result.layers:
        for key, value in layer.events.items():
            events[key] = events.get(key, 0) + value
    return {
        "cycles": float(lat.total),
        "lat_memory": float(lat.memory),
        "lat_communication": float(lat.communication),
        "lat_computation": float(lat.computation),
        "energy_j": float(en.total),
        "flit_hops": float(events.get("flit_hops", 0)),
        "main_mem_bytes": float(events.get("main_mem_bytes", 0)),
    }


def decoded_digest(decoded: np.ndarray) -> str:
    """Bitwise identity witness of a decoded weight array."""
    return fingerprint_array(np.ascontiguousarray(decoded))
