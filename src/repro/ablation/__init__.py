"""Ablation harness: feature-flag every design choice and measure it.

DESIGN.md §4 lists the paper's design-choice ablations; several shipped
subsystems additionally carry "must be identical when toggled"
contracts (the cycle-skip fast path, the result cache, streamed decode,
CRC framing).  This package turns both into one measured, standing
harness:

* :mod:`repro.ablation.registry` — :class:`Feature` /
  :class:`FeatureRegistry` / :class:`AblationConfig`: every feature
  names its toggle point and its expected delta class (``identical``
  vs ``measured``);
* :mod:`repro.ablation.toggles` — the registered features, each driving
  the subsystem's real toggle hook;
* :mod:`repro.ablation.runner` — baseline-vs-variant execution over the
  grid runner (pool / cache / shard-aware) emitting a delta table
  (JSON, CSV, markdown) with per-comparison wall-time cost, plus the
  zero-delta assertion :meth:`AblationReport.check_identical`.

``python -m repro.experiments fig_ablation`` runs the whole table;
``tests/ablation/test_smoke.py`` keeps the ``identical`` class pinned
at bitwise zero in tier-1.
"""

from .registry import (
    IDENTICAL,
    MEASURED,
    AblationConfig,
    AblationError,
    DuplicateFeatureError,
    Feature,
    FeatureRegistry,
    UnknownFeatureError,
)
from .runner import (
    AblationReport,
    ArmCost,
    DeltaRow,
    IdenticalDeltaViolation,
    run_ablation,
)
from .toggles import DEFAULT_FEATURES

__all__ = [
    "IDENTICAL",
    "MEASURED",
    "AblationConfig",
    "AblationError",
    "AblationReport",
    "ArmCost",
    "DEFAULT_FEATURES",
    "DeltaRow",
    "DuplicateFeatureError",
    "Feature",
    "FeatureRegistry",
    "IdenticalDeltaViolation",
    "UnknownFeatureError",
    "run_ablation",
]
