"""Baseline-vs-variant execution and the delta table.

:func:`run_ablation` expands an :class:`~repro.ablation.registry.
AblationConfig` into a grid of ``(feature, workload, arm)`` tasks and
drives them through :func:`repro.runtime.run_tasks` — so the grid fans
out over the process pool (``jobs=``), consults the content-addressed
result cache, and scales onto the sharded resumable runtime
(``shards=``) exactly like every other sweep in the repo.  Each task
records its wall time (also exported as the ``ablation.arm_seconds``
histogram via :mod:`repro.obs`), so the delta table reports the *cost*
of every design choice next to its metric deltas.

The report is the correctness net: :meth:`AblationReport.violations`
lists every ``identical``-class row whose delta is not bitwise zero,
and :meth:`AblationReport.check_identical` raises
:class:`IdenticalDeltaViolation` on the first one — the assertion CI
and the tier-1 smoke stand on.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from .. import obs
from ..runtime import GridTask, ResultCache, Timings, result_key, run_tasks
from . import workloads as wl
from .registry import (
    IDENTICAL,
    AblationConfig,
    AblationError,
    Feature,
    FeatureRegistry,
)

__all__ = [
    "DeltaRow",
    "ArmCost",
    "AblationReport",
    "IdenticalDeltaViolation",
    "run_ablation",
]

#: bump to invalidate cached arm results when runner semantics change
KEY_VERSION = 1


class IdenticalDeltaViolation(AblationError):
    """An ``identical``-class feature produced a nonzero delta."""


@dataclass(frozen=True)
class DeltaRow:
    """One (feature, workload, metric) comparison."""

    feature: str
    workload: str
    delta_class: str
    metric: str
    baseline: float | str
    variant: float | str
    #: numeric difference (variant - baseline); None for digest metrics
    delta: float | None
    #: bitwise equality of the two arms for this metric
    identical: bool


@dataclass(frozen=True)
class ArmCost:
    """Wall-time cost of one feature x workload comparison."""

    feature: str
    workload: str
    baseline_seconds: float
    variant_seconds: float


def _run_arm(feature_name: str, workload: str, on: bool, fast: bool) -> dict:
    """Execute one arm; module-level so pool/shard workers can pickle it.

    The feature is resolved from the default registry inside the worker
    (custom registries run serially in-process; see
    :func:`run_ablation`).  Returns ``{"metrics": ..., "wall_seconds":
    ...}`` — wall time measured around the runner only, and mirrored
    into the ambient obs scope.
    """
    from .toggles import DEFAULT_FEATURES

    feature = DEFAULT_FEATURES.get(feature_name)
    return _execute_arm(feature, workload, on, fast)


def _execute_arm(feature: Feature, workload: str, on: bool, fast: bool) -> dict:
    o = obs.current()
    with o.span(
        "ablation.arm",
        cat="ablation",
        feature=feature.name,
        workload=workload,
        on=on,
    ):
        start = time.perf_counter()
        metrics = feature.runner(workload, on, fast)
        seconds = time.perf_counter() - start
    if not isinstance(metrics, dict) or not metrics:
        raise AblationError(
            f"feature {feature.name!r} runner returned "
            f"{type(metrics).__name__}; expected a non-empty metric dict"
        )
    o.observe("ablation.arm_seconds", seconds)
    o.count("ablation.arms")
    return {"metrics": metrics, "wall_seconds": float(seconds)}


def _diff_rows(
    feature: Feature, workload: str, baseline: dict, variant: dict
) -> list[DeltaRow]:
    if set(baseline) != set(variant):
        raise AblationError(
            f"feature {feature.name!r} on {workload!r} returned mismatched "
            f"metric keys: baseline {sorted(baseline)} vs variant "
            f"{sorted(variant)}"
        )
    rows = []
    for metric in sorted(baseline):
        b, v = baseline[metric], variant[metric]
        numeric = isinstance(b, (int, float)) and isinstance(v, (int, float))
        rows.append(
            DeltaRow(
                feature=feature.name,
                workload=workload,
                delta_class=feature.delta_class,
                metric=metric,
                baseline=b,
                variant=v,
                delta=float(v) - float(b) if numeric else None,
                identical=b == v,
            )
        )
    return rows


class AblationReport:
    """Delta table plus per-comparison wall-time costs."""

    def __init__(
        self,
        config: AblationConfig,
        rows: list[DeltaRow],
        costs: list[ArmCost],
    ) -> None:
        self.config = config
        self.rows = rows
        self.costs = costs

    # -- the correctness net -------------------------------------------------

    def violations(self) -> list[DeltaRow]:
        """``identical``-class rows whose delta is not bitwise zero."""
        return [
            r for r in self.rows if r.delta_class == IDENTICAL and not r.identical
        ]

    def check_identical(self) -> None:
        bad = self.violations()
        if bad:
            lines = "; ".join(
                f"{r.feature}[{r.workload}].{r.metric}: "
                f"baseline={r.baseline!r} variant={r.variant!r}"
                for r in bad
            )
            raise IdenticalDeltaViolation(
                f"{len(bad)} identical-class delta(s) are nonzero — "
                f"this is a correctness bug, not a measurement: {lines}"
            )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "config": json.loads(self.config.to_json()),
            "rows": [asdict(r) for r in self.rows],
            "costs": [asdict(c) for c in self.costs],
            "violations": len(self.violations()),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_csv(self) -> str:
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(
            [
                "feature",
                "workload",
                "delta_class",
                "metric",
                "baseline",
                "variant",
                "delta",
                "identical",
            ]
        )
        for r in self.rows:
            writer.writerow(
                [
                    r.feature,
                    r.workload,
                    r.delta_class,
                    r.metric,
                    r.baseline,
                    r.variant,
                    "" if r.delta is None else repr(r.delta),
                    int(r.identical),
                ]
            )
        return out.getvalue()

    def digest(self) -> str:
        """SHA-256 over the metric rows (costs excluded — wall time is
        the one legitimately nondeterministic column), the witness the
        determinism and serial == sharded identity tests compare."""
        payload = json.dumps(
            [asdict(r) for r in self.rows], sort_keys=True
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def render(self) -> str:
        """The delta table as a GitHub-flavored markdown table."""

        def fmt(value: float | str) -> str:
            if isinstance(value, str):
                return value[:12]  # digest prefix is plenty for a table
            if isinstance(value, float) and not value.is_integer():
                return f"{value:.6g}"
            return f"{value:.0f}"

        cost = {
            (c.feature, c.workload): c for c in self.costs
        }
        lines = [
            "| feature | workload | class | metric | baseline | variant "
            "| delta | cost (base/var s) |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for r in self.rows:
            if r.delta is None:
                delta = "0 (bitwise)" if r.identical else "DIFFERS"
            else:
                delta = fmt(r.delta)
            c = cost[(r.feature, r.workload)]
            lines.append(
                f"| {r.feature} | {r.workload} | {r.delta_class} "
                f"| {r.metric} | {fmt(r.baseline)} | {fmt(r.variant)} "
                f"| {delta} "
                f"| {c.baseline_seconds:.3f}/{c.variant_seconds:.3f} |"
            )
        return "\n".join(lines)

    def write(self, out_dir: str | Path) -> Path:
        """Persist ablation.json / ablation.csv / ablation.md."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "ablation.json").write_text(self.to_json() + "\n")
        (out / "ablation.csv").write_text(self.to_csv())
        (out / "ablation.md").write_text(self.render() + "\n")
        return out


def run_ablation(
    config: AblationConfig | None = None,
    *,
    registry: FeatureRegistry | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timings: Timings | None = None,
    policy=None,
    shards: int | None = None,
    shard_workers: int = 1,
) -> AblationReport:
    """Execute baseline-vs-variant for every selected feature.

    With the default registry the grid rides :func:`run_tasks` — pool
    parallelism, result caching, and (``shards=``) the resumable
    sharded runtime all apply, and arm results are content-addressed by
    ``(feature, workload, arm, fast)`` plus the workload fingerprint.
    A custom ``registry`` (tests) runs serially in-process, since its
    features cannot be resolved by name inside a worker.
    """
    from .toggles import DEFAULT_FEATURES

    config = config if config is not None else AblationConfig()
    custom = registry is not None
    registry = registry if custom else DEFAULT_FEATURES
    config.validate(registry)
    features = config.selected(registry)

    grid: list[tuple[Feature, str, bool]] = []
    for feature in features:
        names = feature.workloads
        if config.workloads:
            names = tuple(n for n in names if n in config.workloads)
        for workload in names:
            for on in (feature.default_on, not feature.default_on):
                grid.append((feature, workload, on))

    with obs.current().span(
        "ablation.run", cat="ablation", features=len(features), arms=len(grid)
    ):
        if custom:
            payloads = [
                _execute_arm(f, w, on, config.fast) for f, w, on in grid
            ]
        else:
            keys: list[str | None] = [None] * len(grid)
            if cache is not None:
                keys = [
                    result_key(
                        "ablation-arm",
                        version=KEY_VERSION,
                        feature=f.name,
                        workload=w,
                        on=on,
                        fast=config.fast,
                        stream=wl.stream_fingerprint(w, config.fast)
                        if w in wl.STREAM_WORKLOADS
                        else w,
                    )
                    for f, w, on in grid
                ]
            tasks = [
                GridTask(fn=_run_arm, args=(f.name, w, on, config.fast), key=k)
                for (f, w, on), k in zip(grid, keys)
            ]
            payloads = run_tasks(
                tasks,
                jobs=jobs,
                cache=cache,
                timings=timings,
                policy=policy,
                shards=shards,
                shard_workers=shard_workers,
            )

    by_arm = {
        (f.name, w, on): p for (f, w, on), p in zip(grid, payloads)
    }
    rows: list[DeltaRow] = []
    costs: list[ArmCost] = []
    seen: set[tuple[str, str]] = set()
    for feature, workload, _ in grid:
        if (feature.name, workload) in seen:
            continue
        seen.add((feature.name, workload))
        base = by_arm[(feature.name, workload, feature.default_on)]
        var = by_arm[(feature.name, workload, not feature.default_on)]
        rows.extend(
            _diff_rows(feature, workload, base["metrics"], var["metrics"])
        )
        costs.append(
            ArmCost(
                feature=feature.name,
                workload=workload,
                baseline_seconds=base["wall_seconds"],
                variant_seconds=var["wall_seconds"],
            )
        )
    return AblationReport(config, rows, costs)
