"""Feature registry and ablation configuration.

Every design choice the repo ships (DESIGN.md §4 and the subsystems
grown since) is registered here as a :class:`Feature` naming its toggle
point and its **expected delta class**:

* ``identical`` — turning the feature off must change *nothing* about
  the computed results (the cycle-skip fast path, the result cache,
  streamed decode, CRC framing's decoded bytes, the vectorized
  segmenter).  Any nonzero delta on an ``identical`` feature is a
  correctness bug, which makes the ablation harness a standing bug
  detector: :meth:`repro.ablation.runner.AblationReport.check_identical`
  raises on the first violation.
* ``measured`` — the delta *is* the result (the weak-monotonicity rule,
  storage format, routing algorithm, flit vs transaction NoC model,
  conv traffic model, memory scheduling, streamed-decode timing).

A :class:`Feature` carries its runner: a picklable module-level
callable ``runner(workload, on, fast) -> dict`` returning a flat metric
mapping (floats, ints, or digest strings).  The harness executes the
baseline arm (``on = default_on``) and the ablated arm (``on = not
default_on``) per workload and diffs the two mappings.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

__all__ = [
    "IDENTICAL",
    "MEASURED",
    "AblationError",
    "DuplicateFeatureError",
    "UnknownFeatureError",
    "Feature",
    "FeatureRegistry",
    "AblationConfig",
]

IDENTICAL = "identical"
MEASURED = "measured"
_DELTA_CLASSES = (IDENTICAL, MEASURED)


class AblationError(Exception):
    """Base error of the ablation layer."""


class DuplicateFeatureError(AblationError):
    """Two registrations claimed the same feature name."""


class UnknownFeatureError(AblationError, KeyError):
    """A name that matches no registered feature."""

    def __str__(self) -> str:  # KeyError quotes its arg; read as a sentence
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class Feature:
    """One toggleable design choice.

    Parameters
    ----------
    name:
        Registry key, ``<subsystem>.<choice>`` by convention.
    delta_class:
        ``"identical"`` or ``"measured"`` (see module docstring).
    toggle:
        Human-readable name of the actual toggle point (config field,
        codec parameter, API flag) the runner flips.
    runner:
        Module-level callable ``(workload, on, fast) -> dict`` —
        module-level so process pools and shard workers can pickle it.
    workloads:
        Default workload names this feature is measured on.
    default_on:
        The shipped default of the toggle.  The baseline arm runs with
        ``on = default_on``; the variant arm flips it.
    """

    name: str
    delta_class: str
    description: str
    toggle: str
    runner: Callable[[str, bool, bool], dict]
    workloads: tuple[str, ...]
    default_on: bool = True

    def __post_init__(self) -> None:
        if self.delta_class not in _DELTA_CLASSES:
            raise AblationError(
                f"feature {self.name!r}: delta_class must be one of "
                f"{_DELTA_CLASSES}, got {self.delta_class!r}"
            )
        if not self.workloads:
            raise AblationError(f"feature {self.name!r} declares no workloads")


class FeatureRegistry:
    """Name-keyed collection of :class:`Feature` registrations."""

    def __init__(self) -> None:
        self._features: dict[str, Feature] = {}

    def register(self, feature: Feature) -> Feature:
        if feature.name in self._features:
            raise DuplicateFeatureError(
                f"feature {feature.name!r} is already registered"
            )
        self._features[feature.name] = feature
        return feature

    def get(self, name: str) -> Feature:
        try:
            return self._features[name]
        except KeyError:
            raise UnknownFeatureError(
                f"unknown feature {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._features)

    def features(self, delta_class: str | None = None) -> list[Feature]:
        """Registered features, name-sorted; optionally one class only."""
        if delta_class is not None and delta_class not in _DELTA_CLASSES:
            raise AblationError(
                f"delta_class must be one of {_DELTA_CLASSES}, got {delta_class!r}"
            )
        return [
            self._features[name]
            for name in self.names()
            if delta_class is None
            or self._features[name].delta_class == delta_class
        ]

    def __iter__(self) -> Iterator[Feature]:
        return iter(self.features())

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, name: object) -> bool:
        return name in self._features


@dataclass(frozen=True)
class AblationConfig:
    """What one ablation run covers.

    ``features`` empty means *every* registered feature; ``workloads``
    empty means each feature's own default workload list.  The config
    round-trips through JSON (:meth:`to_json` / :meth:`from_json`) so a
    run's coverage can be persisted next to its delta table.
    """

    features: tuple[str, ...] = ()
    workloads: tuple[str, ...] = ()
    fast: bool = False
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "features", tuple(self.features))
        object.__setattr__(self, "workloads", tuple(self.workloads))

    def validate(self, registry: FeatureRegistry) -> None:
        for name in self.features:
            registry.get(name)  # raises UnknownFeatureError

    def selected(self, registry: FeatureRegistry) -> list[Feature]:
        """The features this config runs, in registry (name) order."""
        if not self.features:
            return registry.features()
        return [registry.get(name) for name in self.features]

    def to_json(self) -> str:
        return json.dumps(
            {
                "features": list(self.features),
                "workloads": list(self.workloads),
                "fast": self.fast,
                "extra": self.extra,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "AblationConfig":
        try:
            doc = json.loads(payload)
        except ValueError as exc:
            raise AblationError(f"unparseable ablation config: {exc}") from exc
        if not isinstance(doc, dict):
            raise AblationError(
                f"ablation config must be a JSON object, got {type(doc).__name__}"
            )
        unknown = set(doc) - {"features", "workloads", "fast", "extra"}
        if unknown:
            raise AblationError(f"unknown config keys: {sorted(unknown)}")
        return cls(
            features=tuple(doc.get("features", ())),
            workloads=tuple(doc.get("workloads", ())),
            fast=bool(doc.get("fast", False)),
            extra=dict(doc.get("extra", {})),
        )
