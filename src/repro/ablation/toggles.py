"""The registered features: one runner per toggleable design choice.

Every runner is a module-level function ``(workload, on, fast) ->
dict`` (picklable for pool/shard workers) that executes the workload
with the feature ``on`` or ``off`` through the subsystem's *real*
toggle hook — codec parameters (``framing``, ``segmenter``,
``delta_pct``, ``fmt``), :class:`~repro.mapping.accelerator.
AcceleratorConfig` fields (``reference_stepper``, ``routing``,
``streamed_decode``, ``refetch_model``, ``demand_mode``), or the
:mod:`repro.runtime` cache API — never a reimplementation of the
feature, so a delta here is a delta in shipped code paths.

``DEFAULT_FEATURES`` is the registry the ``fig_ablation`` experiment
and the tier-1 zero-delta smoke run against.
"""

from __future__ import annotations

import hashlib
import json
import tempfile

import numpy as np

from ..core.codecs import LineFitCodec
from ..core.compression import StorageFormat, compress_percent
from ..core.provider import provider_for
from ..runtime import GridTask, ResultCache, result_key, run_tasks
from . import workloads as wl
from .registry import IDENTICAL, MEASURED, Feature, FeatureRegistry

__all__ = ["DEFAULT_FEATURES"]

_DELTA_PCT = 10.0  # the shared operating point of the codec-side features

STREAMS = ("lenet-dense", "gaussian", "adversarial")


def _codec_metrics(codec: LineFitCodec, w: np.ndarray) -> dict:
    """CR / MSE / segment count plus the decoded-bytes identity witness."""
    blob = codec.encode(w)
    decoded = codec.decode(blob)
    return {
        "cr": float(blob.compression_ratio),
        "mse": float(codec.reconstruction_mse(blob, w)),
        "num_segments": float(blob.num_segments),
        "decoded": wl.decoded_digest(decoded),
    }


# -- identical-class runners -------------------------------------------------


def run_crc_framing(workload: str, on: bool, fast: bool) -> dict:
    """v3 CRC-framed wire format vs the pre-integrity v2 layout.

    Framing adds detection, never content: decoded bytes, CR (the cost
    model excludes the trailer) and MSE must all be unchanged.
    """
    w = wl.stream(workload, fast)
    codec = LineFitCodec(delta_pct=_DELTA_PCT, framing="crc" if on else "legacy")
    return _codec_metrics(codec, w)


def run_segmenter(workload: str, on: bool, fast: bool) -> dict:
    """Vectorized partitioning rule vs the sequential greedy reference."""
    w = wl.stream(workload, fast)
    codec = LineFitCodec(
        delta_pct=_DELTA_PCT, segmenter="vectorized" if on else "reference"
    )
    return _codec_metrics(codec, w)


def run_streamed_decode(workload: str, on: bool, fast: bool) -> dict:
    """Tile-cursor streamed decode vs materializing the full array.

    ``on`` pulls the blob through a :class:`~repro.core.provider.
    BlobProvider` cursor in deliberately uneven chunks (the fused
    forward's access pattern); ``off`` decodes the whole stream at
    once.  The reassembled bytes must be identical.
    """
    w = wl.stream(workload, fast)
    codec = LineFitCodec(delta_pct=_DELTA_PCT)
    blob = codec.encode(w)
    if on:
        cursor = provider_for(blob).cursor(dtype=np.float32)
        chunks, sizes, i = [], (1, 3, 17, 64, 251, 1024), 0
        while cursor.remaining:
            chunks.append(cursor.read(min(sizes[i % len(sizes)], cursor.remaining)))
            i += 1
        decoded = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.float32)
        )
    else:
        decoded = codec.decode(blob)
    return {
        "decoded": wl.decoded_digest(decoded),
        "num_weights": float(decoded.size),
    }


def _cache_point(workload: str, fast: bool, delta_pct: float) -> dict:
    """One grid point of the result-cache feature's inner sweep."""
    w = wl.stream(workload, fast)
    stream = compress_percent(w, delta_pct)
    return {
        "delta_pct": delta_pct,
        "cr": float(stream.compression_ratio),
        "mse": float(stream.mse(w)),
        "num_segments": float(stream.num_segments),
    }


def run_result_cache(workload: str, on: bool, fast: bool) -> dict:
    """Content-addressed result cache on (warm read-back) vs off.

    ``on`` runs a small sweep grid twice against a private cache — the
    second pass returns every record from disk — and reports the
    *warm* results; ``off`` computes the same grid uncached.  Any delta
    is a serialization-fidelity bug in the cache codec.
    """
    deltas = (0.0, 5.0, 15.0)
    fp = wl.stream_fingerprint(workload, fast)

    def _tasks(keyed: bool) -> list[GridTask]:
        return [
            GridTask(
                fn=_cache_point,
                args=(workload, fast, d),
                key=result_key(
                    "ablation-cache-point",
                    workload=workload,
                    fast=fast,
                    delta_pct=d,
                    stream=fp,
                )
                if keyed
                else None,
            )
            for d in deltas
        ]

    if on:
        with tempfile.TemporaryDirectory(prefix="ablation-cache-") as root:
            cache = ResultCache(root=root, enabled=True)
            run_tasks(_tasks(True), jobs=1, cache=cache)  # cold fill
            records = run_tasks(_tasks(True), jobs=1, cache=cache)  # warm
    else:
        records = run_tasks(_tasks(False), jobs=1)
    payload = json.dumps(records, sort_keys=True)
    return {
        "records": hashlib.sha256(payload.encode()).hexdigest(),
        "num_records": float(len(records)),
    }


def run_cycle_skip(workload: str, on: bool, fast: bool) -> dict:
    """Activity-scheduled cycle-skipping fast path vs ``step_reference``."""
    del workload, fast  # one canonical flit-level layer run
    return wl.result_metrics(wl.layer_run({"reference_stepper": not on}))


# -- measured-class runners --------------------------------------------------


def run_monotonicity(workload: str, on: bool, fast: bool) -> dict:
    """Weak-monotonic rule (delta > 0) vs strict sense (delta = 0)."""
    w = wl.stream(workload, fast)
    codec = LineFitCodec(delta_pct=_DELTA_PCT if on else 0.0)
    m = _codec_metrics(codec, w)
    del m["decoded"]  # measured: the numeric deltas are the result
    return m


def run_storage_format(workload: str, on: bool, fast: bool) -> dict:
    """Default 8 B/segment (24-bit coeffs) vs 6 B/segment (float16)."""
    w = wl.stream(workload, fast)
    fmt = (
        StorageFormat()
        if on
        else StorageFormat(slope_bytes=2, intercept_bytes=2)
    )
    m = _codec_metrics(LineFitCodec(delta_pct=_DELTA_PCT, fmt=fmt), w)
    del m["decoded"]
    return m


def run_routing(workload: str, on: bool, fast: bool) -> dict:
    """XY dimension-order routing (paper default) vs YX."""
    del workload, fast
    return wl.result_metrics(wl.layer_run({"routing": "xy" if on else "yx"}))


def run_transaction_model(workload: str, on: bool, fast: bool) -> dict:
    """Flit-level ground truth vs the calibrated transaction model."""
    del workload, fast
    return wl.result_metrics(wl.layer_run(mode="flit" if on else "txn"))


def run_streamed_timing(workload: str, on: bool, fast: bool) -> dict:
    """Streamed decode+MAC overlap timing vs materialize-then-compute."""
    del workload, fast
    return wl.result_metrics(wl.layer_run({"streamed_decode": on}))


def run_conv_traffic(workload: str, on: bool, fast: bool) -> dict:
    """Single-pass "paper" conv traffic vs conservative "banded" refetch."""
    del workload, fast
    return wl.result_metrics(
        wl.layer_run(
            {"refetch_model": "paper" if on else "banded"}, layer="conv2d_2"
        )
    )


def run_demand_mode(workload: str, on: bool, fast: bool) -> dict:
    """PE-issued request packets vs statically scheduled MC programs."""
    del workload, fast
    return wl.result_metrics(wl.layer_run({"demand_mode": on}))


# -- the default registry ----------------------------------------------------

DEFAULT_FEATURES = FeatureRegistry()

for _feature in (
    Feature(
        name="core.crc_framing",
        delta_class=IDENTICAL,
        description="CRC32 frame integrity in the wire format",
        toggle="LineFitCodec(framing='crc'|'legacy')",
        runner=run_crc_framing,
        workloads=("lenet-dense", "adversarial"),
    ),
    Feature(
        name="core.segmenter",
        delta_class=IDENTICAL,
        description="vectorized monotone-run partitioner vs greedy reference",
        toggle="compress(segmenter='vectorized'|'reference')",
        runner=run_segmenter,
        workloads=STREAMS,
    ),
    Feature(
        name="core.streamed_decode",
        delta_class=IDENTICAL,
        description="tile-cursor streamed decode vs full materialization",
        toggle="WeightProvider.cursor() vs Codec.decode()",
        runner=run_streamed_decode,
        workloads=("lenet-dense", "gaussian"),
    ),
    Feature(
        name="runtime.result_cache",
        delta_class=IDENTICAL,
        description="content-addressed on-disk result cache",
        toggle="run_tasks(cache=ResultCache(...) | None)",
        runner=run_result_cache,
        workloads=("gaussian",),
    ),
    Feature(
        name="noc.cycle_skip",
        delta_class=IDENTICAL,
        description="activity-scheduled cycle-skipping NoC fast path",
        toggle="AcceleratorConfig.reference_stepper",
        runner=run_cycle_skip,
        workloads=("lenet-layer",),
    ),
    Feature(
        name="core.monotonicity",
        delta_class=MEASURED,
        description="weak-monotonic segmentation rule (delta tolerance)",
        toggle="LineFitCodec(delta_pct=10 vs 0)",
        runner=run_monotonicity,
        workloads=STREAMS,
    ),
    Feature(
        name="core.storage_format",
        delta_class=MEASURED,
        description="8 B/segment 24-bit coeffs vs 6 B/segment float16",
        toggle="LineFitCodec(fmt=StorageFormat(...))",
        runner=run_storage_format,
        workloads=("lenet-dense", "gaussian"),
    ),
    Feature(
        name="noc.routing",
        delta_class=MEASURED,
        description="XY dimension-order routing vs YX",
        toggle="AcceleratorConfig.routing",
        runner=run_routing,
        workloads=("lenet-layer",),
    ),
    Feature(
        name="noc.transaction_model",
        delta_class=MEASURED,
        description="flit-level simulator vs calibrated transaction model",
        toggle="Accelerator.run_model(mode='flit'|'txn')",
        runner=run_transaction_model,
        workloads=("lenet-layer",),
    ),
    Feature(
        name="mapping.streamed_timing",
        delta_class=MEASURED,
        description="fused decode+MAC overlap hiding decode cycles",
        toggle="AcceleratorConfig.streamed_decode",
        runner=run_streamed_timing,
        workloads=("lenet-layer",),
        default_on=False,
    ),
    Feature(
        name="mapping.conv_traffic",
        delta_class=MEASURED,
        description="single-pass paper conv traffic vs banded refetch",
        toggle="AcceleratorConfig.refetch_model",
        runner=run_conv_traffic,
        workloads=("lenet-conv",),
    ),
    Feature(
        name="noc.demand_scheduling",
        delta_class=MEASURED,
        description="PE-issued demand requests vs static MC schedules",
        toggle="AcceleratorConfig.demand_mode",
        runner=run_demand_mode,
        workloads=("lenet-layer",),
        default_on=False,
    ),
):
    DEFAULT_FEATURES.register(_feature)
