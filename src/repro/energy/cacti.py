"""CACTI-like analytical SRAM/DRAM estimator.

The paper uses CACTI [20] to obtain energy (dynamic + leakage) and
timing for the local and main memories.  This module reproduces the
*scaling behaviour* of CACTI with simple technology-anchored models so
that architecture sweeps (local-memory size ablations) respond the way
CACTI would:

* dynamic energy per access grows ~ sqrt(capacity) (bitline/wordline
  length grows with the array side);
* access latency grows ~ sqrt(capacity) beyond a fixed decoder cost;
* leakage power grows linearly with capacity.

Anchored at a 45 nm 8 KB SRAM bank (~1 pJ/byte, ~1 ns, ~0.3 mW), which
is the paper's PE-local memory configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SramEstimate", "estimate_sram", "estimate_dram_energy_per_byte"]

_ANCHOR_BYTES = 8 * 1024
_ANCHOR_ENERGY_PER_BYTE = 1.0e-12
_ANCHOR_LATENCY_S = 1.0e-9
_ANCHOR_LEAKAGE_W = 0.3e-3
_DECODER_LATENCY_S = 0.2e-9


@dataclass(frozen=True)
class SramEstimate:
    capacity_bytes: int
    energy_per_byte: float  # J/byte, dynamic
    access_latency_s: float
    leakage_w: float

    @property
    def access_latency_cycles(self) -> int:
        from .params import CLOCK_HZ

        return max(1, int(np.ceil(self.access_latency_s * CLOCK_HZ)))


def estimate_sram(capacity_bytes: int) -> SramEstimate:
    """CACTI-style estimate for one SRAM bank of the given capacity."""
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    ratio = capacity_bytes / _ANCHOR_BYTES
    side = np.sqrt(ratio)
    return SramEstimate(
        capacity_bytes=capacity_bytes,
        energy_per_byte=_ANCHOR_ENERGY_PER_BYTE * side,
        access_latency_s=_DECODER_LATENCY_S
        + (_ANCHOR_LATENCY_S - _DECODER_LATENCY_S) * side,
        leakage_w=_ANCHOR_LEAKAGE_W * ratio,
    )


def estimate_dram_energy_per_byte(
    row_hit_rate: float = 0.5,
    row_hit_energy: float = 15.0e-12,
    row_miss_energy: float = 85.0e-12,
) -> float:
    """Effective main-memory energy per byte given a row-buffer hit rate.

    CNN parameter fetches are long sequential streams, so the default
    50/50 mix lands on the standard ~50 pJ/byte LPDDR figure the default
    :class:`repro.energy.params.EnergyParams` uses.
    """
    if not 0.0 <= row_hit_rate <= 1.0:
        raise ValueError("row_hit_rate must be in [0, 1]")
    return row_hit_rate * row_hit_energy + (1.0 - row_hit_rate) * row_miss_energy
