"""CACTI-style energy/timing models and accounting (see DESIGN.md)."""

from .cacti import SramEstimate, estimate_dram_energy_per_byte, estimate_sram
from .model import COMPONENTS, EnergyAccount, EnergyBreakdown
from .params import CLOCK_HZ, EnergyParams

__all__ = [
    "SramEstimate",
    "estimate_dram_energy_per_byte",
    "estimate_sram",
    "COMPONENTS",
    "EnergyAccount",
    "EnergyBreakdown",
    "CLOCK_HZ",
    "EnergyParams",
]
