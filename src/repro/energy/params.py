"""45 nm-class energy and timing constants.

The paper back-annotates its simulator with circuit-level numbers from
Synopsys DC + HSPICE on the Nangate 45 nm library, and CACTI for the
memories.  We use published 45 nm-class magnitudes with the same
structure: per-event dynamic energies plus per-component leakage powers.
Absolute joules are not the reproduction target — the *breakdown shape*
(main memory >> on-chip communication >> computation, Fig. 2) and the
relative deltas under compression are.

Sources for the magnitudes (all 45 nm era): Noxim router/link
characterizations (~3-6 pJ per 64-bit flit-hop), DianNao / Eyeriss-class
MAC energy (~1 pJ per 16-bit MAC), CACTI 8 KB SRAM (~1 pJ/byte), and the
standard ~50 pJ/byte LPDDR main-memory access cost.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyParams", "CLOCK_HZ"]

#: the paper's operating clock
CLOCK_HZ = 1e9


@dataclass(frozen=True)
class EnergyParams:
    """Per-event dynamic energies (joules) and leakage powers (watts)."""

    # --- communication (router + link, per 64-bit flit) -----------------
    router_flit_energy: float = 4.0e-12  # buffering + arbitration + crossbar
    link_flit_energy: float = 2.0e-12  # 1 mm inter-tile wire
    #: NIC buffer write/read per flit at injection/ejection
    nic_flit_energy: float = 1.0e-12

    # --- computation ------------------------------------------------------
    mac_energy: float = 1.0e-12  # one multiply-accumulate
    #: decompression-unit energy per emitted weight (accumulator datapath)
    decompress_add_energy: float = 0.1e-12
    #: a multiply-based decompressor would pay a MAC-class multiply instead
    decompress_mul_energy: float = 0.8e-12

    # --- local memory (8 KB SRAM) ------------------------------------------
    local_mem_energy_per_byte: float = 1.0e-12

    # --- main memory ----------------------------------------------------
    main_mem_energy_per_byte: float = 50.0e-12

    # --- leakage powers (whole accelerator at 45 nm LVT) -----------------
    router_leakage_w: float = 1.0e-3  # per router
    pe_leakage_w: float = 2.0e-3  # per PE datapath
    local_mem_leakage_w: float = 0.3e-3  # per 8 KB SRAM bank
    main_mem_leakage_w: float = 60.0e-3  # whole DRAM background (all channels)

    def seconds(self, cycles: int | float) -> float:
        return cycles / CLOCK_HZ
