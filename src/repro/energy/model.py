"""Energy accounting.

The paper breaks inference energy into four components —
communication, computation, local memory, main memory — each with a
dynamic and a leakage part (Fig. 10's stacked bars).  ``EnergyAccount``
aggregates event counts into that exact structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .params import EnergyParams

__all__ = ["COMPONENTS", "EnergyBreakdown", "EnergyAccount"]

COMPONENTS = ("communication", "computation", "local_mem", "main_mem")


@dataclass
class EnergyBreakdown:
    """Joules per (component, dynamic/leakage)."""

    dynamic: dict[str, float] = field(default_factory=lambda: dict.fromkeys(COMPONENTS, 0.0))
    leakage: dict[str, float] = field(default_factory=lambda: dict.fromkeys(COMPONENTS, 0.0))

    @property
    def total(self) -> float:
        return sum(self.dynamic.values()) + sum(self.leakage.values())

    def component_total(self, component: str) -> float:
        return self.dynamic[component] + self.leakage[component]

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        out = EnergyBreakdown()
        for c in COMPONENTS:
            out.dynamic[c] = self.dynamic[c] + other.dynamic[c]
            out.leakage[c] = self.leakage[c] + other.leakage[c]
        return out

    def scaled(self, factor: float) -> "EnergyBreakdown":
        out = EnergyBreakdown()
        for c in COMPONENTS:
            out.dynamic[c] = self.dynamic[c] * factor
            out.leakage[c] = self.leakage[c] * factor
        return out


@dataclass
class EnergyAccount:
    """Event-count to joules conversion for one simulated interval.

    Counts are architecture-level events (flit-hops, MACs, bytes moved);
    :meth:`breakdown` applies :class:`EnergyParams` and adds leakage =
    power x wall-clock time for every component.
    """

    params: EnergyParams = field(default_factory=EnergyParams)
    num_routers: int = 16
    num_pes: int = 12

    # dynamic event counts
    flit_hops: int = 0
    nic_flits: int = 0
    macs: int = 0
    decompressed_weights: int = 0
    decompress_multiplies: bool = False
    local_mem_bytes: int = 0
    main_mem_bytes: int = 0
    cycles: int = 0

    def breakdown(self) -> EnergyBreakdown:
        p = self.params
        out = EnergyBreakdown()
        out.dynamic["communication"] = (
            self.flit_hops * (p.router_flit_energy + p.link_flit_energy)
            + self.nic_flits * p.nic_flit_energy
        )
        per_weight = (
            p.decompress_mul_energy
            if self.decompress_multiplies
            else p.decompress_add_energy
        )
        out.dynamic["computation"] = (
            self.macs * p.mac_energy + self.decompressed_weights * per_weight
        )
        out.dynamic["local_mem"] = self.local_mem_bytes * p.local_mem_energy_per_byte
        out.dynamic["main_mem"] = self.main_mem_bytes * p.main_mem_energy_per_byte

        seconds = p.seconds(self.cycles)
        out.leakage["communication"] = self.num_routers * p.router_leakage_w * seconds
        out.leakage["computation"] = self.num_pes * p.pe_leakage_w * seconds
        out.leakage["local_mem"] = self.num_pes * p.local_mem_leakage_w * seconds
        out.leakage["main_mem"] = p.main_mem_leakage_w * seconds
        return out
