"""repro — reproduction of Ascia et al., *Improving Inference Latency and
Energy of Network-on-Chip based Convolutional Neural Networks through
Weights Compression* (IPPS/IPDPSW 2020).

Package layout
--------------
``repro.core``
    The paper's contribution: weak-monotonic lossy weight compression,
    the decompression-unit model, quantization, layer selection,
    sensitivity and the Fig.-8 evaluation pipeline.
``repro.nn``
    A from-scratch NumPy CNN framework (inference + SGD training) and a
    model zoo covering the paper's six networks.
``repro.datasets``
    Synthetic MNIST-like and ImageNet-like classification datasets.
``repro.noc``
    Flit-level cycle-accurate mesh NoC simulator (Noxim-style) plus a
    calibrated transaction-level fast model.
``repro.energy``
    CACTI-style 45 nm-class energy/timing models and accounting.
``repro.mapping``
    Layer tiling, traffic-schedule generation and the top-level
    ``Accelerator`` that turns a model into latency/energy reports.
``repro.analysis``
    Entropy, breakdowns and report rendering.
``repro.experiments``
    One module per paper table/figure, regenerating its rows/series.
"""

__version__ = "1.0.0"

__all__ = ["core", "nn", "datasets", "noc", "energy", "mapping", "analysis", "experiments"]
