"""Fault injection and resilience for the compressed-weight path.

The system's premise is that weights live and travel in compressed form
(main memory -> NoC -> on-PE decompression), so a single corrupted
⟨m, q, len⟩ segment silently poisons an entire regenerated
sub-succession — an error-amplification property this package makes
measurable and defensible:

* :mod:`~repro.resilience.inject` — deterministic, seeded fault
  injectors: bit flips in payloads and raw weight streams, flit
  corruption/drop for the NoC, crash/hang/kill injectors for runtime
  pool workers;
* :mod:`~repro.resilience.integrity` — CRC32 checksums for
  :class:`~repro.core.codecs.base.CompressedBlob` payloads, layered on
  the per-frame CRC framing of the version-3 wire format
  (:mod:`repro.core.codec`);
* :mod:`~repro.resilience.degrade` — graceful-degradation decode:
  salvage the undamaged frames of a corrupted line-fit payload and
  zero-fill the rest, instead of losing the whole layer;
* :mod:`~repro.resilience.chaos` — chaos campaigns against a serving
  fleet: kill/hang replicas and bit-flip archive files under live load,
  measuring availability, typed-reply coverage, and recovery time.

The measurement side is ``python -m repro.experiments
fig_fault_campaign`` (bit-error rate x delta, compressed vs raw
storage).  Error types live in :mod:`repro.core.errors`
(``CodecError`` > ``IntegrityError`` / ``FaultError``).
"""

from ..core.errors import CodecError, FaultError, IntegrityError
from .chaos import (
    ChaosEvent,
    ChaosResult,
    corrupt_archive,
    hang_replica,
    kill_replica,
    run_campaign,
)
from .degrade import DamageReport, decode_degraded
from .inject import (
    BitFlipInjector,
    FlitFaultInjector,
    crash,
    crash_once,
    digest,
    hang_once,
    kill_once,
    kill_worker,
)
from .integrity import payload_crc32, verify_blob, with_checksum

__all__ = [
    "CodecError",
    "IntegrityError",
    "FaultError",
    "BitFlipInjector",
    "FlitFaultInjector",
    "digest",
    "crash",
    "crash_once",
    "hang_once",
    "kill_once",
    "kill_worker",
    "payload_crc32",
    "verify_blob",
    "with_checksum",
    "DamageReport",
    "decode_degraded",
    "ChaosEvent",
    "ChaosResult",
    "kill_replica",
    "hang_replica",
    "corrupt_archive",
    "run_campaign",
]
