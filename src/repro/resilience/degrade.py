"""Graceful degradation: salvage what a corrupted payload still holds.

A line-fit payload is *regenerative*: each ⟨m, q, len⟩ triple expands
into a whole sub-succession of weights.  When a frame CRC fails, the
strict decoder (:func:`repro.core.codec.decode`) refuses the payload;
:func:`decode_degraded` instead reconstructs best-effort:

* undamaged segments regenerate normally;
* segments in damaged frames (plus any segment with a non-finite
  coefficient or a zero length) contribute **zeros** over their parsed
  length — a zeroed weight is a benign dropout, a garbage coefficient
  is a poisoned sub-succession;
* the output is padded/truncated to the declared weight count, because
  a corrupted length field can desynchronize everything after it.

This is the ``"zero"`` policy of
:meth:`repro.core.model_store.ModelArchive.apply`; the campaign
(``fig_fault_campaign``) quantifies how much accuracy it buys back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.codec import parse_lenient
from ..core.linefit import evaluate_lines

__all__ = ["DamageReport", "decode_degraded"]


@dataclass(frozen=True)
class DamageReport:
    """What degradation salvaged from one payload."""

    num_segments: int
    damaged_segments: int
    #: output elements that came back as zero fill instead of data
    zeroed_weights: int
    #: parsed lengths summed to a different total than declared
    resynchronized: bool
    #: segments whose cumulative length extends past the declared weight
    #: count (the strict decoder rejects these; here their tail is
    #: truncated) — a corrupted length field usually shows up this way
    overrun_segments: int = 0
    #: weights produced past the declared count and dropped
    overrun_weights: int = 0

    @property
    def clean(self) -> bool:
        return self.damaged_segments == 0 and not self.resynchronized


def decode_degraded(
    payload: bytes,
    num_weights: int,
    dtype=np.float32,
) -> tuple[np.ndarray, DamageReport]:
    """Best-effort reconstruction of a (possibly corrupted) payload.

    Structural damage — bad magic, truncation, a header-CRC mismatch —
    still raises :class:`~repro.core.errors.CodecError`: when the
    framing itself cannot be trusted there is nothing to salvage, and
    the caller falls back to its next policy rung (zero the layer, or
    restore the raw copy).
    """
    declared = int(num_weights)
    parsed = parse_lenient(payload)
    m = parsed.m.copy()
    q = parsed.q.copy()
    lengths = parsed.lengths.copy()

    bad = parsed.damaged | ~(np.isfinite(m) & np.isfinite(q)) | (lengths <= 0)
    m[bad] = 0.0
    q[bad] = 0.0
    zeroed = int(lengths[bad & (lengths > 0)].sum())

    keep = lengths > 0
    out = (
        evaluate_lines(m[keep], q[keep], lengths[keep], dtype=np.float64)
        if keep.any()
        else np.zeros(0)
    )
    produced = int(out.size)
    # overruns: which parsed segments spill past the declared count
    # (mirrors the strict decoder's expected_weights bounds check, which
    # names the first overrunning segment and raises)
    ends = np.cumsum(lengths[keep]) if keep.any() else np.zeros(0, dtype=np.int64)
    overrun_segments = int(np.count_nonzero(ends > declared))
    if produced > declared:
        out = out[:declared]
    elif produced < declared:
        out = np.concatenate([out, np.zeros(declared - produced)])
        zeroed += declared - produced
    report = DamageReport(
        num_segments=parsed.num_segments,
        damaged_segments=int(np.count_nonzero(bad)),
        zeroed_weights=min(int(zeroed), declared),
        resynchronized=produced != declared,
        overrun_segments=overrun_segments,
        overrun_weights=max(produced - declared, 0),
    )
    return out.astype(dtype), report
