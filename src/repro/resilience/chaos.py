"""Chaos campaigns against a replica fleet: kill, hang, corrupt — measure.

The fleet's claims (availability under replica loss, bounded recovery,
degraded-mode serving from damaged archives) are worthless untested, so
this module makes them *measured properties*: a seeded load generator
drives a :class:`~repro.serve.fleet.ReplicaFleet` while a scheduler
fires chaos events —

* ``kill`` — SIGKILL a worker process (crash);
* ``hang`` — SIGSTOP a worker (alive to the kernel, dead to probes: the
  hang-detection path);
* ``corrupt`` — seeded :class:`~repro.resilience.inject.BitFlipInjector`
  flips over the archive file's compressed payloads, then a kill, so
  the restarted replica reloads the damaged bytes and (under an
  ``on_fault`` policy) serves degraded with a
  :class:`~repro.resilience.degrade.DamageReport` in its replies —

and the result tallies what the acceptance criteria need: every request
resolved to exactly one typed reply (``untyped == 0``), availability
(``ok/total``) against a floor, restart count, time from the last event
until the fleet is whole again, and how many ``Ok`` replies carried
degraded metadata.  Same seed + same schedule -> same corrupted-payload
digests, the campaign discipline shared with ``fig_fault_campaign``.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.model_store import load_archive
from ..serve.replies import Ok
from .inject import BitFlipInjector, digest

__all__ = [
    "ChaosEvent",
    "ChaosResult",
    "kill_replica",
    "hang_replica",
    "corrupt_archive",
    "run_campaign",
]


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: ``kind`` at ``at`` seconds into the campaign.

    ``target`` is a replica index (``kill``/``hang``) — for
    ``corrupt`` the archive file is damaged first and ``target`` (when
    given) is then killed so its restart loads the corrupted bytes.
    """

    at: float
    kind: str  # "kill" | "hang" | "corrupt"
    target: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("kill", "hang", "corrupt"):
            raise ValueError(f"unknown chaos kind {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"event time must be >= 0, got {self.at}")


@dataclass
class ChaosResult:
    """What the campaign measured."""

    total: int = 0
    ok: int = 0
    degraded_ok: int = 0
    untyped: int = 0  # submits that raised instead of returning a Reply
    by_status: dict = field(default_factory=dict)
    events_fired: int = 0
    restarts: int = 0
    recovery_s: float | None = None  # last event -> fleet whole again
    elapsed_s: float = 0.0
    corrupted_digests: dict = field(default_factory=dict)

    @property
    def availability(self) -> float:
        """Fraction of requests answered ``Ok`` (degraded counts: the
        model answered, and said so)."""
        return self.ok / self.total if self.total else 0.0


# -- fault primitives ---------------------------------------------------------


def kill_replica(fleet, index: int) -> bool:
    """SIGKILL one worker process (crash injection)."""
    r = fleet.replicas[index]
    if r.pid is None or r.process is None or not r.process.is_alive():
        return False
    os.kill(r.pid, signal.SIGKILL)
    return True


def hang_replica(fleet, index: int) -> bool:
    """SIGSTOP one worker: alive, accepting TCP, answering nothing."""
    r = fleet.replicas[index]
    if r.pid is None or r.process is None or not r.process.is_alive():
        return False
    os.kill(r.pid, signal.SIGSTOP)
    return True


def corrupt_archive(
    path: str | Path, seed: int = 0, ber: float = 1e-3
) -> dict[str, str]:
    """Bit-flip every compressed payload of the archive at ``path``.

    The damage lands *inside* the layer payloads (the npz container
    stays structurally valid), so a replica reloading the file reaches
    the decode path and exercises the ``on_fault`` degradation policy
    rather than failing at load.  Returns layer -> corrupted-payload
    digest, the reproducibility witness.
    """
    path = Path(path)
    archive = load_archive(path)
    injector = BitFlipInjector(seed=seed, ber=ber)
    digests: dict[str, str] = {}
    for name, (payload, shape) in archive.compressed.items():
        damaged = injector.corrupt_bytes(payload)
        archive.compressed[name] = (damaged, shape)
        digests[name] = digest(damaged)
    archive.to_file(path)
    return digests


# -- the campaign -------------------------------------------------------------


async def _fire(event: ChaosEvent, fleet, archive_path, seed, result) -> None:
    n = len(fleet.replicas)
    target = event.target if event.target is not None else 0
    target %= n
    if event.kind == "kill":
        kill_replica(fleet, target)
    elif event.kind == "hang":
        hang_replica(fleet, target)
    else:  # corrupt
        if archive_path is None:
            raise ValueError("corrupt event needs archive_path")
        result.corrupted_digests.update(
            corrupt_archive(archive_path, seed=seed, ber=1e-3)
        )
        # restart the target onto the damaged bytes
        kill_replica(fleet, target)
    result.events_fired += 1


async def run_campaign(
    fleet,
    inputs: list[np.ndarray],
    *,
    duration_s: float,
    concurrency: int = 8,
    events: tuple[ChaosEvent, ...] = (),
    archive_path: str | Path | None = None,
    deadline: float | None = None,
    seed: int = 0,
    recovery_timeout_s: float = 30.0,
) -> ChaosResult:
    """Drive load through a *started* fleet while chaos fires.

    ``concurrency`` closed-loop workers submit from ``inputs`` for
    ``duration_s`` seconds; ``events`` fire on their schedule.  After
    the clock runs out the campaign waits (up to ``recovery_timeout_s``)
    for every replica to be ready again and reports the time from the
    last event to wholeness as ``recovery_s``.
    """
    result = ChaosResult()
    t0 = time.monotonic()
    stop = asyncio.Event()

    async def worker(k: int) -> None:
        i = k
        while not stop.is_set():
            x = inputs[i % len(inputs)]
            i += concurrency
            try:
                reply = await fleet.submit(x, deadline=deadline)
            except Exception as e:  # noqa: BLE001 - the defect being counted
                result.untyped += 1
                result.by_status[f"untyped:{type(e).__name__}"] = (
                    result.by_status.get(f"untyped:{type(e).__name__}", 0) + 1
                )
                continue
            finally:
                result.total += 1
            result.by_status[reply.status] = result.by_status.get(reply.status, 0) + 1
            if isinstance(reply, Ok):
                result.ok += 1
                if reply.degraded:
                    result.degraded_ok += 1

    async def scheduler() -> None:
        last_fired = t0
        for ev in sorted(events, key=lambda e: e.at):
            delay = (t0 + ev.at) - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            if stop.is_set():
                return
            await _fire(ev, fleet, archive_path, seed, result)
            last_fired = time.monotonic()
        result.by_status.setdefault("_last_event_at", 0)
        result.by_status["_last_event_at"] = last_fired - t0

    sched = asyncio.ensure_future(scheduler())
    workers = [asyncio.ensure_future(worker(k)) for k in range(concurrency)]
    await asyncio.sleep(duration_s)
    stop.set()
    await asyncio.gather(*workers)
    sched.cancel()
    try:
        await sched
    except asyncio.CancelledError:
        pass
    result.elapsed_s = time.monotonic() - t0

    # recovery: every replica back in service after the dust settles
    last_event = result.by_status.pop("_last_event_at", None)
    if events:
        want = len(fleet.replicas)
        deadline_at = time.monotonic() + recovery_timeout_s
        while time.monotonic() < deadline_at:
            if fleet.ready_count >= want:
                anchor = t0 + last_event if last_event is not None else t0
                result.recovery_s = time.monotonic() - anchor
                break
            await asyncio.sleep(0.05)
    result.restarts = fleet.supervisor.restarts
    return result
