"""Deterministic, seeded fault injectors.

Three fault surfaces, one discipline — every injector is seeded, so the
same ``(seed, rate)`` always damages the same bits/flits/tasks and a
fault campaign is exactly reproducible (same corrupted-stream digests,
same accuracy table):

* **storage/transport bits** — :class:`BitFlipInjector` flips bits in
  ``bytes`` payloads (compressed blobs) and NumPy weight arrays (raw
  storage) at a given bit-error rate;
* **NoC flits** — :class:`FlitFaultInjector` decides, per link hop or
  per injected packet, whether to corrupt or drop (wired into
  :class:`repro.noc.simulator.NocSimulator` and
  :class:`repro.noc.memory_if.MemoryInterface`);
* **pool workers** — module-level, picklable crash/hang/kill task
  wrappers for :func:`repro.runtime.pool.run_tasks`.  The ``*_once``
  variants coordinate across processes through a sentinel file, so the
  first attempt fails and the retry succeeds — the deterministic
  recovery scenario the pool tests assert.
"""

from __future__ import annotations

import hashlib
import os
import time

import numpy as np

from ..core.errors import FaultError

__all__ = [
    "digest",
    "BitFlipInjector",
    "FlitFaultInjector",
    "crash",
    "crash_once",
    "hang_once",
    "kill_once",
    "kill_worker",
]


def digest(data: bytes | np.ndarray) -> str:
    """SHA-256 hex digest of a payload or array's raw bytes.

    The reproducibility witness of the fault campaign: same seed + BER
    -> identical corrupted-stream digests.
    """
    if isinstance(data, np.ndarray):
        data = np.ascontiguousarray(data).tobytes()
    return hashlib.sha256(data).hexdigest()


class BitFlipInjector:
    """Seeded uniform bit flips at a target bit-error rate.

    Each bit of the target flips independently with probability ``ber``
    (sampled as a binomial draw of flip positions, so multi-megabyte
    payloads stay cheap).  Every call advances the injector's RNG:
    construct one injector per experimental arm for independent noise,
    or re-construct with the same seed to replay it.
    """

    def __init__(self, seed: int, ber: float) -> None:
        if not 0.0 <= ber <= 1.0:
            raise ValueError(f"bit-error rate must be in [0, 1], got {ber}")
        self.seed = int(seed)
        self.ber = float(ber)
        self._rng = np.random.default_rng(self.seed)

    def _flip_positions(self, nbits: int) -> np.ndarray:
        n_flips = int(self._rng.binomial(nbits, self.ber)) if nbits else 0
        if n_flips == 0:
            return np.empty(0, dtype=np.int64)
        return self._rng.choice(nbits, size=n_flips, replace=False)

    def corrupt_bytes(self, data: bytes) -> bytes:
        """A copy of ``data`` with seeded bit flips applied."""
        buf = np.frombuffer(data, dtype=np.uint8).copy()
        pos = self._flip_positions(buf.size * 8)
        if pos.size:
            np.bitwise_xor.at(buf, pos >> 3, (0x80 >> (pos & 7)).astype(np.uint8))
        return buf.tobytes()

    def corrupt_array(self, arr: np.ndarray) -> np.ndarray:
        """A copy of ``arr`` with seeded bit flips in its raw bytes.

        Models soft errors in *uncompressed* parameter storage: the
        corruption granularity is one weight, not one segment.
        """
        out = np.ascontiguousarray(arr).copy()
        view = out.view(np.uint8).ravel()
        pos = self._flip_positions(view.size * 8)
        if pos.size:
            np.bitwise_xor.at(view, pos >> 3, (0x80 >> (pos & 7)).astype(np.uint8))
        return out


class FlitFaultInjector:
    """Per-hop flit corruption and per-packet drop for the NoC.

    ``corrupt_prob`` is evaluated once per link traversal (a flit
    crossing R routers rolls R times, like a real multi-hop exposure);
    ``drop_prob`` once per packet at injection.  Counters accumulate for
    :class:`repro.noc.simulator.NocStats`-style reporting.
    """

    def __init__(
        self, seed: int, corrupt_prob: float = 0.0, drop_prob: float = 0.0
    ) -> None:
        for name, p in (("corrupt_prob", corrupt_prob), ("drop_prob", drop_prob)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.seed = int(seed)
        self.corrupt_prob = float(corrupt_prob)
        self.drop_prob = float(drop_prob)
        self._rng = np.random.default_rng(self.seed)
        self.flits_corrupted = 0
        self.packets_dropped = 0

    def corrupt_hop(self) -> bool:
        """Roll for corruption of one flit crossing one link."""
        if self.corrupt_prob and self._rng.random() < self.corrupt_prob:
            self.flits_corrupted += 1
            return True
        return False

    def drop_packet(self) -> bool:
        """Roll for loss of one packet at injection time."""
        if self.drop_prob and self._rng.random() < self.drop_prob:
            self.packets_dropped += 1
            return True
        return False


# -- pool-worker fault tasks (module-level: picklable) ------------------------


def crash(message: str = "injected worker crash") -> None:
    """A task that always fails."""
    raise FaultError(message)


def crash_once(sentinel: str, value):
    """Fail on the first call (across processes), succeed afterwards.

    ``sentinel`` is a filesystem path used as cross-process state: the
    first caller creates it and raises; retries see it and return
    ``value``.  ``O_CREAT | O_EXCL`` makes the transition atomic even
    when pool workers race.
    """
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return value
    os.close(fd)
    raise FaultError(f"injected crash (first attempt, sentinel {sentinel})")


def hang_once(sentinel: str, seconds: float, value):
    """Hang for ``seconds`` on the first call, return instantly after.

    The sentinel is created *before* sleeping, so the retry that follows
    the caller's timeout completes immediately.  Keep ``seconds`` around
    one second in tests: a timed-out worker is abandoned, not killed,
    and only exits once its sleep elapses.
    """
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return value
    os.close(fd)
    time.sleep(float(seconds))
    return value


def kill_worker(code: int = 13) -> None:
    """Die without cleanup — the ``BrokenProcessPool`` injector."""
    os._exit(int(code))


def kill_once(sentinel: str, value):
    """Kill the worker process on the first call, succeed afterwards."""
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return value
    os.close(fd)
    os._exit(13)
