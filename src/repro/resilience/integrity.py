"""Payload checksums for :class:`~repro.core.codecs.base.CompressedBlob`.

Two integrity layers protect a compressed layer at rest and in flight:

1. the **wire format's own framing** (version 3 of
   :mod:`repro.core.codec`): header CRC plus per-frame CRC32s over
   segment groups — line-fit payloads only, but damage-localizing;
2. the **blob checksum** here: one CRC32 over the whole payload, stored
   in the blob's JSON ``meta`` (key ``"crc32"``), codec-agnostic.  This
   is what :func:`repro.core.model_store.compress_model` persists per
   layer and what :meth:`ModelArchive.apply` verifies before decoding.

Blobs and archives written before this layer existed carry no checksum
and verify vacuously — the legacy fallback.
"""

from __future__ import annotations

import zlib

from ..core.codecs.base import CHECKSUM_KEY, CompressedBlob

__all__ = ["CHECKSUM_KEY", "payload_crc32", "with_checksum", "verify_blob"]


def payload_crc32(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


def with_checksum(blob: CompressedBlob) -> CompressedBlob:
    """A copy of ``blob`` whose ``meta`` records the payload CRC32."""
    return blob.with_checksum()


def verify_blob(blob: CompressedBlob, context: str = "") -> bool:
    """Check the blob's payload against its recorded checksum.

    Returns ``True`` when a checksum was present and matched, ``False``
    when the blob predates checksumming (nothing to verify — legacy
    fallback).  Raises :class:`~repro.core.errors.IntegrityError` on a
    mismatch.
    """
    return blob.verify(context)
