"""Fig. 10 — accuracy vs inference latency and energy, per model and delta.

The paper's central result: for each of the six networks, sweeping the
tolerance delta trades accuracy for normalized inference latency and
energy.  Two instruments are combined, as in the evaluation flow of
Fig. 8:

* **accuracy** comes from the trained *proxy* network: the selected
  layer is compressed/decompressed at each delta and the test accuracy
  measured (``repro.core.pipeline``);
* **latency/energy** come from the accelerator simulation of the
  *full-scale* architecture, with the selected layer's weight stream
  compressed at the same delta (flit-level for LeNet-5, transaction
  model for the large networks).

Reproduction targets: latency and energy fall monotonically with delta
(strongly for LeNet/AlexNet/VGG, weakly for MobileNet/Inception/ResNet
whose selected layer is a small parameter fraction), while accuracy is
flat for small deltas and collapses for large ones.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..analysis.report import render_table
from ..core.codecs import LineFitCodec
from ..core.pareto import DesignPoint, pareto_front
from ..core.pipeline import CompressionPipeline, _sweep_point
from ..core.segmentation import delta_from_percent
from ..mapping import Accelerator
from ..mapping.accelerator import AcceleratorConfig, ModelResult
from ..nn import zoo
from ..runtime import (
    GridTask,
    ResultCache,
    Timings,
    fingerprint_array,
    result_key,
    run_tasks,
)
from .common import trained_proxy

__all__ = ["TradeoffPoint", "ModelTradeoff", "run", "render", "main"]

_FAST_SLICE = 4_000_000


@dataclass(frozen=True)
class TradeoffPoint:
    delta_pct: float
    accuracy: float
    norm_latency: float
    norm_energy: float
    latency_parts: dict[str, float]
    energy_parts: dict[str, float]


@dataclass(frozen=True)
class ModelTradeoff:
    model: str
    layer: str
    baseline_accuracy: float
    points: list[TradeoffPoint]

    def design_points(self) -> list[DesignPoint]:
        return [
            DesignPoint(
                label=f"x-{p.delta_pct:.0f}",
                accuracy=p.accuracy,
                latency=p.norm_latency,
                energy=p.norm_energy,
            )
            for p in self.points
        ]


def _accuracy_of(record, top_k: int) -> float:
    return record.top1 if top_k == 1 else record.top5


def _sim_mode(module, fast: bool) -> str:
    return "flit" if (module is zoo.lenet5 and not fast) else "txn"


def _fig10_sim(
    model_name: str, pct: float | None, fast: bool, streamed: bool = False
) -> ModelResult:
    """Accelerator latency/energy of one grid point (``pct=None`` is the
    uncompressed baseline).  Module-level and re-deriving everything
    from ``(model name, pct, fast, streamed)``, so pool tasks ship four
    scalars instead of a full-scale weight stream.
    """
    module = zoo.BY_NAME[model_name]
    spec = module.full()
    layer = module.SELECTED_LAYER
    acc_sim = Accelerator(AcceleratorConfig(streamed_decode=streamed))
    mode = _sim_mode(module, fast)
    if pct is None:
        return acc_sim.run_model(spec, mode=mode)

    # full-scale stream -> compression effect -> latency/energy
    # (absolute delta from the FULL stream's range; see Tab. II note)
    weights = spec.materialize(layer).ravel()
    stream_src = weights
    if fast and weights.size > _FAST_SLICE:
        stream_src = weights[:_FAST_SLICE]
    delta = delta_from_percent(weights, pct)
    blob = LineFitCodec(delta=float(delta)).encode(stream_src)
    eff = acc_sim.compression_effect(blob)
    if stream_src.size != weights.size:
        # scale segment count up to the full stream for the effect
        scale = weights.size / stream_src.size
        eff = type(eff)(
            cr=eff.cr,
            segments_total=int(eff.segments_total * scale),
            units_per_pe=eff.units_per_pe,
            streamed=eff.streamed,
        )
    return acc_sim.run_model(spec, {layer: eff}, mode=mode)


def tradeoff_for(
    module,
    fast: bool = False,
    seed: int = 7,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timings: Timings | None = None,
    streamed: bool = False,
) -> ModelTradeoff:
    layer = module.SELECTED_LAYER
    model, split = trained_proxy(module, seed=seed, fast=fast)
    pipeline = CompressionPipeline(model, split.x_test, split.y_test)
    top_k = module.TOP_K
    baseline_acc = _accuracy_of(pipeline.baseline, top_k)

    deltas = [float(pct) for pct in module.DELTA_GRID]
    sim_keys: list[str | None] = [None] * (1 + len(deltas))
    acc_keys: list[str | None] = [None] * len(deltas)
    if cache is not None:
        weights = module.full().materialize(layer).ravel()
        sim_base = {
            "weights": fingerprint_array(weights),
            "fast": bool(fast),
            "mode": _sim_mode(module, fast),
            "codec": "linefit",
            "layer": layer,
            "streamed": bool(streamed),
        }
        sim_keys = [
            result_key("accel-run", delta_pct=pct, **sim_base)
            for pct in (None, *deltas)
        ]
        acc_base = pipeline.cache_fingerprint()
        # same key space as CompressionPipeline.sweep: the accuracy leg
        # of Fig. 10 shares cache entries with standalone sweeps
        acc_keys = [
            result_key("delta-record", delta_pct=pct, **acc_base) for pct in deltas
        ]

    # one grid: the baseline run, per-delta accelerator runs, and
    # per-delta proxy evaluations all fan out together
    tasks = [
        GridTask(fn=_fig10_sim, args=(module.NAME, pct, fast, streamed), key=k)
        for pct, k in zip((None, *deltas), sim_keys)
    ] + [
        GridTask(fn=_sweep_point, args=(pipeline, pct), key=k)
        for pct, k in zip(deltas, acc_keys)
    ]
    results = run_tasks(tasks, jobs=jobs, cache=cache, timings=timings)
    base, sims = results[0], results[1 : 1 + len(deltas)]
    records = results[1 + len(deltas) :]
    base_lat = base.total_latency.total
    base_en = base.total_energy.total

    points = []
    for pct, res, record in zip(deltas, sims, records):
        lat = res.total_latency
        en = res.total_energy
        points.append(
            TradeoffPoint(
                delta_pct=pct,
                accuracy=_accuracy_of(record, top_k),
                norm_latency=lat.total / base_lat,
                norm_energy=en.total / base_en,
                latency_parts={
                    "memory": lat.memory / base_lat,
                    "communication": lat.communication / base_lat,
                    "computation": lat.computation / base_lat,
                },
                energy_parts={
                    **{f"{k} (dyn)": v / base_en for k, v in en.dynamic.items()},
                    **{f"{k} (leak)": v / base_en for k, v in en.leakage.items()},
                },
            )
        )
    return ModelTradeoff(
        model=module.NAME,
        layer=layer,
        baseline_accuracy=baseline_acc,
        points=points,
    )


def run(
    fast: bool = False,
    models=None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timings: Timings | None = None,
    streamed: bool = False,
) -> list[ModelTradeoff]:
    modules = models if models is not None else zoo.ALL_MODELS
    return [
        tradeoff_for(
            m, fast=fast, jobs=jobs, cache=cache, timings=timings, streamed=streamed
        )
        for m in modules
    ]


def render(results: list[ModelTradeoff]) -> str:
    rows = []
    for r in results:
        rows.append([r.model, "orig", f"{r.baseline_accuracy:.4f}", "1.000", "1.000", ""])
        front = {p.label for p in pareto_front(r.design_points())}
        for p in r.points:
            label = f"x-{p.delta_pct:.0f}"
            rows.append(
                [
                    r.model,
                    label,
                    f"{p.accuracy:.4f}",
                    f"{p.norm_latency:.3f}",
                    f"{p.norm_energy:.3f}",
                    "pareto" if label in front else "",
                ]
            )
    return render_table(
        ["model", "config", "accuracy", "norm latency", "norm energy", ""],
        rows,
        title="Fig. 10 — accuracy vs normalized inference latency and energy",
    )


def render_detail(results: list[ModelTradeoff]) -> str:
    """The stacked-bar form of Fig. 10: per-delta latency and energy
    breakdowns, normalized to the uncompressed model."""
    from ..analysis.breakdown import LayerBars
    from ..analysis.report import render_bars

    charts = []
    for r in results:
        lat_bars = [
            LayerBars(label=f"x-{p.delta_pct:.0f}", parts=dict(p.latency_parts))
            for p in r.points
        ]
        en_bars = [
            LayerBars(label=f"x-{p.delta_pct:.0f}", parts=dict(p.energy_parts))
            for p in r.points
        ]
        charts.append(
            render_bars(
                lat_bars,
                title=f"Fig. 10 — {r.model}: normalized latency breakdown "
                f"(baseline accuracy {r.baseline_accuracy:.4f})",
            )
        )
        charts.append(
            render_bars(en_bars, title=f"Fig. 10 — {r.model}: normalized energy breakdown")
        )
    return "\n\n".join(charts)


def main() -> list[ModelTradeoff]:  # pragma: no cover - CLI entry
    results = run()
    print(render(results))
    return results


if __name__ == "__main__":  # pragma: no cover
    main()
