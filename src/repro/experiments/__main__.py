"""CLI: regenerate paper artifacts.

Usage::

    python -m repro.experiments            # run everything
    python -m repro.experiments fig2 tab2  # run selected artifacts
    REPRO_FAST=1 python -m repro.experiments   # reduced workloads
    REPRO_JOBS=8 python -m repro.experiments   # fan sweeps over 8 workers
    python -m repro.experiments tab2 --obs out/   # metrics + trace dumps

Sweep experiments (Tab. II, Tab. III, Fig. 10) run through the
:mod:`repro.runtime` grid runner: ``REPRO_JOBS`` sets the worker count,
results land in the content-addressed cache next to the trained
weights, and each experiment prints its task/cache/timing counters — a
warm rerun shows ``tasks_run=0``.  ``REPRO_RESULT_CACHE=0`` forces cold
runs.

Observability: ``--obs DIR`` (or the ``REPRO_OBS`` environment
variable) records every experiment under a :mod:`repro.obs` scope and
drops ``trace.json`` (Chrome trace-event JSON — open it in
https://ui.perfetto.dev), ``metrics.json`` and ``metrics.csv`` per
experiment under ``DIR/<name>/``, plus a combined session dump at
``DIR/`` where each experiment appears as its own process track.

Elapsed times are measured with ``time.perf_counter()`` — the wall
clock (``time.time()``) can jump under NTP adjustment and is never used
for durations.
"""

from __future__ import annotations

import inspect
import sys
import time
from pathlib import Path

from .. import obs
from ..runtime import ResultCache, Timings
from . import ALL_EXPERIMENTS
from .common import is_fast


def _parse_args(argv: list[str]) -> tuple[list[str], str | None] | int:
    """Split ``argv`` into (experiment names, obs directory).

    Returns an exit code on usage errors.  ``--obs DIR`` wins over the
    ``REPRO_OBS`` environment variable.
    """
    names: list[str] = []
    obs_dir: str | None = None
    it = iter(argv)
    for arg in it:
        if arg == "--obs":
            obs_dir = next(it, None)
            if obs_dir is None:
                print("--obs requires a directory argument")
                return 2
        elif arg.startswith("--obs="):
            obs_dir = arg.split("=", 1)[1]
        elif arg.startswith("-"):
            print(f"unknown option: {arg}")
            return 2
        else:
            names.append(arg)
    return names, obs_dir or obs.obs_dir_from_env()


def main(argv: list[str]) -> int:
    parsed = _parse_args(argv)
    if isinstance(parsed, int):
        return parsed
    names, obs_dir = parsed
    names = names or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(ALL_EXPERIMENTS)}")
        return 2
    fast = is_fast()
    session = obs.Obs() if obs_dir else None
    for index, name in enumerate(names):
        module = ALL_EXPERIMENTS[name]
        accepted = inspect.signature(module.run).parameters
        kwargs = {}
        timings = None
        if "cache" in accepted:
            kwargs["cache"] = ResultCache()
        if "timings" in accepted:
            timings = Timings()
            kwargs["timings"] = timings
        scope = obs.Obs() if obs_dir else obs.NULL
        start = time.perf_counter()
        with obs.use(scope):
            with scope.span(f"experiment.{name}", cat="experiment", fast=fast):
                result = module.run(fast=fast, **kwargs)
        elapsed = time.perf_counter() - start
        print(module.render(result))
        line = f"[{name}: {elapsed:.1f}s{' fast' if fast else ''}"
        if timings is not None:
            line += f"  {timings.summary()}"
        print(line + "]\n")
        if session is not None:
            scope.count("experiment.runs")
            scope.gauge("experiment.wall_seconds", elapsed)
            if timings is not None:
                scope.metrics.merge(timings.registry, prefix="sweep.")
            obs.write_outputs(scope, Path(obs_dir) / name)
            session.trace.process_name(index + 1, name)
            session.trace.adopt(scope.trace.events, pid=index + 1)
            session.metrics.merge_rows(
                scope.metrics.snapshot(), labels={"experiment": name}
            )
    if session is not None:
        out = obs.write_outputs(session, obs_dir)
        print(f"[obs: trace.json + metrics.json in {out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
