"""CLI: regenerate paper artifacts.

Usage::

    python -m repro.experiments            # run everything
    python -m repro.experiments fig2 tab2  # run selected artifacts
    REPRO_FAST=1 python -m repro.experiments   # reduced workloads
    REPRO_JOBS=8 python -m repro.experiments   # fan sweeps over 8 workers

Sweep experiments (Tab. II, Tab. III, Fig. 10) run through the
:mod:`repro.runtime` grid runner: ``REPRO_JOBS`` sets the worker count,
results land in the content-addressed cache next to the trained
weights, and each experiment prints its task/cache/timing counters — a
warm rerun shows ``tasks_run=0``.  ``REPRO_RESULT_CACHE=0`` forces cold
runs.
"""

from __future__ import annotations

import inspect
import sys
import time

from ..runtime import ResultCache, Timings
from . import ALL_EXPERIMENTS
from .common import is_fast


def main(argv: list[str]) -> int:
    names = argv or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(ALL_EXPERIMENTS)}")
        return 2
    fast = is_fast()
    for name in names:
        module = ALL_EXPERIMENTS[name]
        accepted = inspect.signature(module.run).parameters
        kwargs = {}
        timings = None
        if "cache" in accepted:
            kwargs["cache"] = ResultCache()
        if "timings" in accepted:
            timings = Timings()
            kwargs["timings"] = timings
        start = time.time()
        result = module.run(fast=fast, **kwargs)
        print(module.render(result))
        line = f"[{name}: {time.time() - start:.1f}s{' fast' if fast else ''}"
        if timings is not None:
            line += f"  {timings.summary()}"
        print(line + "]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
