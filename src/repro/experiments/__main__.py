"""CLI: regenerate paper artifacts.

Usage::

    python -m repro.experiments            # run everything
    python -m repro.experiments fig2 tab2  # run selected artifacts
    REPRO_FAST=1 python -m repro.experiments   # reduced workloads
"""

from __future__ import annotations

import sys
import time

from . import ALL_EXPERIMENTS
from .common import is_fast


def main(argv: list[str]) -> int:
    names = argv or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(ALL_EXPERIMENTS)}")
        return 2
    fast = is_fast()
    for name in names:
        module = ALL_EXPERIMENTS[name]
        start = time.time()
        result = module.run(fast=fast)
        print(module.render(result))
        print(f"[{name}: {time.time() - start:.1f}s{' fast' if fast else ''}]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
