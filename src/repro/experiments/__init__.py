"""Experiment harness: one module per table/figure of the paper.

| module              | paper artifact | what it regenerates                     |
|---------------------|----------------|------------------------------------------|
| ``fig2_breakdown``  | Fig. 2         | LeNet-5 per-layer latency/energy bars    |
| ``fig3_entropy``    | Fig. 3         | weight-stream entropy vs random/text     |
| ``table1_layers``   | Tab. I         | selected-layer parameter fractions       |
| ``table2_compression`` | Tab. II     | CR / weighted CR / mem-fp / MSE sweeps   |
| ``fig9_sensitivity``| Fig. 9         | per-layer sensitivity, LeNet-5 & AlexNet |
| ``fig10_tradeoff``  | Fig. 10        | accuracy vs latency & energy, 6 models   |
| ``table3_quantized``| Tab. III       | compression on top of int8 quantization  |
| ``fault_campaign``  | (robustness)   | accuracy under bit errors, by storage arm|
| ``fig_scale_matrix``| (scaling)      | compression on/off across NoC topologies |
| ``fig_ablation``    | (design)       | baseline-vs-variant delta per feature    |

Each module exposes ``run(fast=False)`` (structured results),
``render(results)`` (paper-style text) and ``main()`` (CLI).  The
``REPRO_FAST`` environment variable switches all of them to reduced
workloads.
"""

from . import (
    common,
    fault_campaign,
    fig2_breakdown,
    fig3_entropy,
    fig9_sensitivity,
    fig10_tradeoff,
    fig_ablation,
    fig_scale_matrix,
    table1_layers,
    table2_compression,
    table3_quantized,
)

ALL_EXPERIMENTS = {
    "fig2": fig2_breakdown,
    "fig3": fig3_entropy,
    "tab1": table1_layers,
    "tab2": table2_compression,
    "fig9": fig9_sensitivity,
    "fig10": fig10_tradeoff,
    "tab3": table3_quantized,
    "fig_fault_campaign": fault_campaign,
    "fig_scale_matrix": fig_scale_matrix,
    "fig_ablation": fig_ablation,
}

__all__ = [
    "common",
    "fault_campaign",
    "fig2_breakdown",
    "fig3_entropy",
    "fig9_sensitivity",
    "fig10_tradeoff",
    "fig_ablation",
    "fig_scale_matrix",
    "table1_layers",
    "table2_compression",
    "table3_quantized",
    "ALL_EXPERIMENTS",
]
