"""Fig. 2 — normalized latency and energy breakdown, layer by layer, LeNet-5.

Runs the full LeNet-5 on the flit-level cycle-accurate simulator and
renders the two stacked-bar charts of the paper's motivational example.
The reproduction target is the *shape*: main-memory access dominates
latency everywhere, and main memory plus on-chip communication dominate
energy, with the big FC layer (``dense_1``) towering over the rest.
"""

from __future__ import annotations

from ..analysis.breakdown import energy_bars, latency_bars
from ..analysis.report import render_bars
from ..mapping import Accelerator, ModelResult
from ..nn.zoo import lenet5

__all__ = ["run", "render", "main"]


def run(fast: bool = False) -> ModelResult:
    """Simulate LeNet-5 layer by layer (cycle-accurate)."""
    acc = Accelerator()
    mode = "txn" if fast else "flit"
    return acc.run_model(lenet5.full(), mode=mode)


def render(result: ModelResult) -> str:
    lat = render_bars(
        latency_bars(result),
        title="Fig. 2a — normalized latency breakdown (LeNet-5)",
    )
    en = render_bars(
        energy_bars(result),
        title="Fig. 2b — normalized energy breakdown (LeNet-5)",
    )
    return lat + "\n\n" + en


def main() -> ModelResult:  # pragma: no cover - CLI entry
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
