"""Scale matrix — does the compression win survive a bigger NoC?

The paper evaluates one 4x4 mesh.  This scenario matrix re-runs the
flit-level accelerator on scaled substrates — 8x8 and 16x16 single-die
meshes, a Simba-like 2x2 package of 4x4 chiplets whose die-to-die links
cost extra cycles, and an odd-even-routed 8x8 — with the selected
LeNet-5 layer compressed vs. uncompressed on each.  The question per
scenario is the *ratio*: how much latency/energy does weight
compression buy once the network is bigger (more hops, more
communication latency to hide) or partitioned (boundary links slower)?

Expectations: the compressed/uncompressed latency ratio stays below one
everywhere (less data moved is less time everywhere); communication's
*share* of latency grows with mesh size, so scenarios with a larger
comm share lean harder on compression.

Every grid point is keyed and cacheable; with ``REPRO_SHARDS`` set (or
``shards=`` passed), the grid runs on the sharded, resumable runtime
(:mod:`repro.runtime.shard`) instead of the in-process pool — the
intended driver for matrix sweeps bigger than this one.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

from ..analysis.report import render_table
from ..core.codecs import LineFitCodec
from ..core.segmentation import delta_from_percent
from ..mapping import Accelerator
from ..mapping.accelerator import AcceleratorConfig, ModelResult
from ..nn import zoo
from ..runtime import (
    GridTask,
    ResultCache,
    Timings,
    fingerprint_array,
    result_key,
    run_tasks,
)

__all__ = ["SCENARIOS", "MatrixPoint", "run", "render", "main"]

#: the scenario axis: name -> AcceleratorConfig kwargs
SCENARIOS: dict[str, dict] = {
    "mesh-4x4": {"mesh_width": 4, "mesh_height": 4},
    "mesh-8x8": {"mesh_width": 8, "mesh_height": 8},
    "mesh-8x8/oe": {"mesh_width": 8, "mesh_height": 8, "routing": "odd-even"},
    "mesh-16x16": {"mesh_width": 16, "mesh_height": 16},
    # 3x3 dies, not 2x2: with memory interfaces at the package corners,
    # a 2x2 package keeps every nearest-corner flow on-die (each die
    # owns a corner) and the d2d penalty never fires; in a 3x3 package
    # the edge and center dies have no corner and must fetch across
    # boundaries, so the slow links actually carry the weight traffic
    "chiplet-3x3": {
        "mesh_width": 12,
        "mesh_height": 12,
        "topology": "chiplet",
        "chiplet_size": 4,
        "d2d_extra": 2,
    },
}

#: the compression arm: ``None`` = uncompressed, else delta percent
ARMS = (None, 10.0)


@dataclass(frozen=True)
class MatrixPoint:
    scenario: str
    delta_pct: float | None
    result: ModelResult


def _matrix_sim(scenario: str, pct: float | None, fast: bool) -> ModelResult:
    """One scenario x arm grid point on the flit-level simulator.

    Module-level and scalar-argued (the fig10 pattern) so pool and
    shard workers ship three scalars, not weight streams.  ``fast``
    trims the model to the selected layer — the layer whose stream the
    compression arm actually changes."""
    module = zoo.lenet5
    spec = module.full()
    layer = module.SELECTED_LAYER
    if fast:
        spec = dataclasses.replace(spec, layers=[spec.layer(layer)])
    acc = Accelerator(AcceleratorConfig(**SCENARIOS[scenario]))
    compression = None
    if pct is not None:
        weights = module.full().materialize(layer).ravel()
        delta = delta_from_percent(weights, pct)
        blob = LineFitCodec(delta=float(delta)).encode(weights)
        compression = {layer: blob}
    return acc.run_model(spec, compression, mode="flit")


def _default_shards() -> int | None:
    """Shard count from ``REPRO_SHARDS`` (unset/invalid -> in-process)."""
    raw = os.environ.get("REPRO_SHARDS", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return None


def run(
    fast: bool = False,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timings: Timings | None = None,
    shards: int | None = None,
    shard_workers: int = 1,
) -> list[MatrixPoint]:
    keys: list[str | None] = [None] * (len(SCENARIOS) * len(ARMS))
    grid = [(s, pct) for s in SCENARIOS for pct in ARMS]
    if cache is not None:
        module = zoo.lenet5
        fp = fingerprint_array(
            module.full().materialize(module.SELECTED_LAYER).ravel()
        )
        keys = [
            result_key(
                "scale-matrix",
                scenario=s,
                delta_pct=pct,
                fast=bool(fast),
                codec="linefit",
                weights=fp,
            )
            for s, pct in grid
        ]
    tasks = [
        GridTask(fn=_matrix_sim, args=(s, pct, fast), key=k)
        for (s, pct), k in zip(grid, keys)
    ]
    if shards is None:
        shards = _default_shards()
    if shards is not None and cache is None:
        shards = None  # sharding moves results through the cache
    results = run_tasks(
        tasks,
        jobs=jobs,
        cache=cache,
        timings=timings,
        shards=shards,
        shard_workers=shard_workers,
    )
    return [
        MatrixPoint(scenario=s, delta_pct=pct, result=r)
        for (s, pct), r in zip(grid, results)
    ]


def render(results: list[MatrixPoint]) -> str:
    base: dict[str, ModelResult] = {
        p.scenario: p.result for p in results if p.delta_pct is None
    }
    rows = []
    for p in results:
        lat = p.result.total_latency
        en = p.result.total_energy
        b = base[p.scenario]
        rows.append(
            [
                p.scenario,
                "orig" if p.delta_pct is None else f"x-{p.delta_pct:.0f}",
                f"{lat.total}",
                f"{lat.communication / lat.total:.3f}",
                f"{lat.total / b.total_latency.total:.3f}",
                f"{en.total / b.total_energy.total:.3f}",
            ]
        )
    return render_table(
        [
            "scenario",
            "config",
            "latency (cyc)",
            "comm share",
            "norm latency",
            "norm energy",
        ],
        rows,
        title="Scale matrix — compression on/off across NoC topologies",
    )


def main() -> list[MatrixPoint]:  # pragma: no cover - CLI entry
    results = run()
    print(render(results))
    return results


if __name__ == "__main__":  # pragma: no cover
    main()
