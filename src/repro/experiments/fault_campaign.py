"""Fault campaign — accuracy under storage bit errors, by storage format.

Not a figure from the paper: a robustness study the resilience layer
makes possible.  The question it answers is *what compression does to
fault tolerance*.  A bit flip in raw fp32 storage perturbs exactly one
weight; the same flip in a line-fit payload perturbs a whole segment's
slope/intercept — or, if it lands in a length field, desynchronizes the
rest of the stream.  Compression concentrates risk.  The campaign
measures that concentration, and what the CRC framing buys back, by
sweeping bit-error rate x delta over three storage arms:

* ``raw``          — fp32 weights, bit flips land in weights directly
                     (silent corruption; no detection possible);
* ``unprotected``  — line-fit payload in the legacy v2 wire format (no
                     checksums): damage either decodes into garbage
                     coefficients silently or breaks framing, which
                     zeroes the whole layer;
* ``protected``    — v3 wire format: per-frame CRC32s localize the
                     damage and :func:`repro.resilience.decode_degraded`
                     zero-fills only the hit frames.

Every point is seeded: the injector seed derives from ``(arm, ber,
delta)``, so the same campaign always flips the same bits — the
corrupted-payload SHA-256 digests reported per point are the
reproducibility witness.  Accuracy is measured on the LeNet-5 proxy with
its selected layer (the paper's Tab. I choice) stored per-arm.

Run it: ``python -m repro.experiments fig_fault_campaign`` (honours
``REPRO_FAST``, ``REPRO_JOBS`` and the result cache like every other
artifact).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..analysis.report import render_table
from ..core import codec as wire
from ..core.compression import compress
from ..core.errors import CodecError
from ..core.segmentation import delta_from_percent
from ..nn import zoo
from ..nn.train import evaluate
from ..resilience import BitFlipInjector, decode_degraded, digest
from ..runtime import (
    GridTask,
    ResultCache,
    RunPolicy,
    Timings,
    fingerprint_array,
    result_key,
    run_tasks,
)
from .common import is_fast, trained_proxy

__all__ = ["CampaignPoint", "CampaignResult", "ARMS", "run", "render", "main"]

ARMS = ("raw", "unprotected", "protected")

#: bit-error rates swept (per stored bit, uniform)
_BERS = (1e-6, 1e-5, 1e-4, 1e-3)
_FAST_BERS = (1e-5, 1e-4)
#: line-fit tolerances swept for the compressed arms (percent of range)
_DELTAS = (2.0, 8.0)
_FAST_DELTAS = (2.0,)

_SEED = 7


@dataclass(frozen=True)
class CampaignPoint:
    arm: str
    ber: float
    delta_pct: float | None  # None for the raw arm
    accuracy: float
    #: SHA-256 of the corrupted stored bytes — the determinism witness
    digest: str
    #: what the decode path did (segments zeroed, silent decode, ...)
    detail: str


@dataclass(frozen=True)
class CampaignResult:
    model: str
    layer: str
    baseline_accuracy: float
    points: list[CampaignPoint]


def _trial_seed(arm: str, ber: float, pct: float | None) -> int:
    """Deterministic injector seed for one grid point."""
    return _SEED ^ zlib.crc32(f"{arm}|{ber!r}|{pct!r}".encode())


def _campaign_point(
    model_name: str,
    seed: int,
    fast: bool,
    arm: str,
    ber: float,
    pct: float | None,
    trial_seed: int,
) -> dict:
    """One grid point: corrupt the stored form, restore, evaluate.

    Module-level and argument-only so pool workers rebuild everything
    from scalars (the trained proxy comes off the on-disk weight cache).
    """
    module = zoo.BY_NAME[model_name]
    model, split = trained_proxy(module, seed=seed, fast=fast)
    layer = module.SELECTED_LAYER
    weights = model.get_weights(layer)
    shape, count = weights.shape, weights.size
    injector = BitFlipInjector(trial_seed, ber)

    if arm == "raw":
        tensor = injector.corrupt_array(weights.astype(np.float32))
        flipped = int(np.count_nonzero(tensor != weights.astype(np.float32)))
        dig = digest(tensor)
        detail = f"{flipped} weights hit (undetected)"
    else:
        delta = delta_from_percent(weights.ravel(), float(pct))
        stream = compress(weights.ravel().astype(np.float64), delta)
        if arm == "unprotected":
            damaged = injector.corrupt_bytes(wire.encode_legacy(stream))
            dig = digest(damaged)
            try:
                tensor = (
                    wire.decode(damaged, expected_weights=count)
                    .decompress(dtype=np.float32)
                    .reshape(shape)
                )
                detail = "decoded silently (garbage coefficients possible)"
            except CodecError:
                tensor = np.zeros(shape, dtype=np.float32)
                detail = "framing broken: whole layer zeroed"
        elif arm == "protected":
            damaged = injector.corrupt_bytes(wire.encode(stream))
            dig = digest(damaged)
            try:
                values, report = decode_degraded(damaged, count)
                tensor = values.astype(np.float32).reshape(shape)
                detail = (
                    f"{report.damaged_segments}/{report.num_segments} "
                    f"segments zeroed"
                )
            except CodecError:
                tensor = np.zeros(shape, dtype=np.float32)
                detail = "framing destroyed: whole layer zeroed"
        else:
            raise ValueError(f"unknown campaign arm {arm!r}")

    model.set_weights(layer, tensor)
    # raw-arm flips can produce inf/NaN weights; the measurement is the
    # resulting accuracy, not the overflow warnings along the way
    with np.errstate(over="ignore", invalid="ignore"):
        res = evaluate(model, split.x_test, split.y_test)
    accuracy = res.top1 if module.TOP_K == 1 else res.top5
    return {"accuracy": float(accuracy), "digest": dig, "detail": detail}


def _grid(fast: bool) -> list[tuple[str, float, float | None]]:
    bers = _FAST_BERS if fast else _BERS
    deltas = _FAST_DELTAS if fast else _DELTAS
    grid: list[tuple[str, float, float | None]] = []
    for ber in bers:
        grid.append(("raw", ber, None))
        for pct in deltas:
            grid.append(("unprotected", ber, pct))
            grid.append(("protected", ber, pct))
    return grid


def run(
    fast: bool | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timings: Timings | None = None,
    policy: RunPolicy | None = None,
) -> CampaignResult:
    fast = is_fast() if fast is None else fast
    module = zoo.lenet5
    # train (or load) the proxy up front so fanned-out workers hit the
    # weight cache instead of each training their own copy
    model, split = trained_proxy(module, seed=_SEED, fast=fast)
    layer = module.SELECTED_LAYER
    base = evaluate(model, split.x_test, split.y_test)
    baseline = base.top1 if module.TOP_K == 1 else base.top5

    grid = _grid(fast)
    keys: list[str | None] = [None] * len(grid)
    if cache is not None:
        wfp = fingerprint_array(model.get_weights(layer))
        efp = fingerprint_array(split.x_test)
        keys = [
            result_key(
                "fault-campaign",
                model=module.NAME,
                weights=wfp,
                eval_set=efp,
                arm=arm,
                ber=ber,
                delta_pct=pct,
                trial_seed=_trial_seed(arm, ber, pct),
                fast=bool(fast),
            )
            for arm, ber, pct in grid
        ]
    tasks = [
        GridTask(
            fn=_campaign_point,
            args=(module.NAME, _SEED, fast, arm, ber, pct, _trial_seed(arm, ber, pct)),
            key=key,
        )
        for (arm, ber, pct), key in zip(grid, keys)
    ]
    # a campaign that injects faults should survive them too: one retry
    # by default, so a flaky worker doesn't void the whole sweep
    policy = policy if policy is not None else RunPolicy(retries=1)
    outcomes = run_tasks(tasks, jobs=jobs, cache=cache, timings=timings, policy=policy)

    points = [
        CampaignPoint(
            arm=arm,
            ber=ber,
            delta_pct=pct,
            accuracy=out["accuracy"],
            digest=out["digest"],
            detail=out["detail"],
        )
        for (arm, ber, pct), out in zip(grid, outcomes)
    ]
    return CampaignResult(
        model=module.NAME,
        layer=layer,
        baseline_accuracy=float(baseline),
        points=points,
    )


def render(result: CampaignResult) -> str:
    rows = [
        [
            p.arm,
            f"{p.ber:.0e}",
            "-" if p.delta_pct is None else f"x-{p.delta_pct:.0f}",
            f"{p.accuracy:.4f}",
            f"{p.accuracy - result.baseline_accuracy:+.4f}",
            p.digest[:12],
            p.detail,
        ]
        for p in result.points
    ]
    return render_table(
        ["arm", "BER", "delta", "accuracy", "vs clean", "digest", "decode path"],
        rows,
        title=(
            f"Fault campaign — {result.model} ({result.layer}), "
            f"clean accuracy {result.baseline_accuracy:.4f}"
        ),
    )


def main() -> CampaignResult:  # pragma: no cover - CLI entry
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
