"""Ablation delta table — every design choice toggled and measured.

Runs the full default feature registry (:mod:`repro.ablation.toggles`)
baseline-vs-variant and renders the delta table: metric deltas (CR,
MSE, cycles, latency components, energy) plus per-comparison wall-time
cost.  ``identical``-class features double as a correctness net — their
deltas are asserted bitwise zero, and a nonzero one fails the run
*after* the table artifacts are written (set ``REPRO_ABLATION_OUT`` to
persist ``ablation.json`` / ``ablation.csv`` / ``ablation.md``).

Like the other sweep experiments this rides the grid runner: arms are
content-addressed and cached, ``REPRO_JOBS`` fans them out, and
``REPRO_SHARDS`` moves the grid onto the sharded resumable runtime.
"""

from __future__ import annotations

import os

from ..ablation import AblationConfig, AblationReport, run_ablation
from ..runtime import ResultCache, Timings

__all__ = ["run", "render", "main"]


def _default_shards() -> int | None:
    raw = os.environ.get("REPRO_SHARDS", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return None


def run(
    fast: bool = False,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timings: Timings | None = None,
    shards: int | None = None,
    shard_workers: int = 1,
) -> AblationReport:
    if shards is None:
        shards = _default_shards()
    if shards is not None and cache is None:
        shards = None  # sharding moves results through the cache
    report = run_ablation(
        AblationConfig(fast=fast),
        jobs=jobs,
        cache=cache,
        timings=timings,
        shards=shards,
        shard_workers=shard_workers,
    )
    out_dir = os.environ.get("REPRO_ABLATION_OUT", "")
    if out_dir:
        report.write(out_dir)
    # the correctness net: artifacts above are written first so a
    # violation still leaves the full table on disk for debugging
    report.check_identical()
    return report


def render(report: AblationReport) -> str:
    identical = [r for r in report.rows if r.delta_class == "identical"]
    summary = (
        f"\n{len(report.rows)} delta rows over "
        f"{len({r.feature for r in report.rows})} features; "
        f"{len(identical)} identical-class rows all bitwise zero"
    )
    return (
        "Ablation — baseline vs variant for every registered feature\n\n"
        + report.render()
        + summary
    )


def main() -> AblationReport:  # pragma: no cover - CLI entry
    report = run()
    print(render(report))
    return report


if __name__ == "__main__":  # pragma: no cover
    main()
