"""Fig. 3 — entropy of random data, text, and weights of different CNNs.

Measures byte-level Shannon entropy of every zoo model's selected-layer
weight stream against uniform random bytes (the upper bound) and
English-like text (the compressible reference).  The reproduction
target: CNN weight entropy is indistinguishable from random (~8
bits/byte) while text sits near half of that.
"""

from __future__ import annotations

from ..analysis.entropy import byte_entropy, english_like_text, random_bytes
from ..analysis.report import render_table
from ..nn import zoo

__all__ = ["run", "render", "main"]

_SAMPLE_BYTES = 1 << 20  # enough for a stable 256-bin histogram


def run(fast: bool = False) -> dict[str, float]:
    """Entropy (bits/byte) per source."""
    out: dict[str, float] = {
        "random": byte_entropy(random_bytes(_SAMPLE_BYTES)),
        "text": byte_entropy(english_like_text(_SAMPLE_BYTES)),
    }
    for module in zoo.ALL_MODELS:
        spec = module.full()
        layer = module.SELECTED_LAYER
        n_values = _SAMPLE_BYTES // 4
        if fast:
            n_values //= 8
        weights = spec.materialize(layer).ravel()[:n_values]
        out[module.NAME] = byte_entropy(weights)
    return out


def render(result: dict[str, float]) -> str:
    rows = [[name, f"{bits:.3f}"] for name, bits in result.items()]
    return render_table(
        ["source", "entropy (bits/byte)"],
        rows,
        title="Fig. 3 — byte entropy of weight streams vs random and text",
    )


def main() -> dict[str, float]:  # pragma: no cover - CLI entry
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
