"""Tab. III — compression applied on top of int8-quantized networks.

The paper's orthogonality result: a TFLite-style hybrid int8
quantization already shrinks the model ~2-2.4x; applying the monotonic
compression on the *quantized value stream* of the selected layer buys
additional footprint at a graceful accuracy cost, because the two
techniques remove different redundancy (bit width vs serialized
monotonic trend).

Per model we report the quantized baseline (weighted CR over the fp32
footprint, accuracy of the quantized proxy) and, per delta, the stacked
weighted CR and accuracy — the exact columns of Tab. III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.report import render_table
from ..core.codecs import get_codec
from ..core.pipeline import CompressionPipeline
from ..core.quantization import quantize_model, quantize_tensor
from ..nn import zoo
from ..nn.train import evaluate
from ..runtime import GridTask, ResultCache, Timings, result_key, run_tasks
from .common import trained_proxy

__all__ = ["QuantRow", "ModelQuantSweep", "run", "render", "main", "PAPER"]

#: the paper's Tab. III: model -> (QT wCR, QT top-5, {delta: (wCR, top-5)})
PAPER = {
    "LeNet-5": (2.41, 0.9867, {0: (2.62, 0.9871), 5: (2.76, 0.9864),
                               10: (3.00, 0.9788), 15: (3.31, 0.9603),
                               20: (3.68, 0.8747)}),
    "AlexNet": (2.10, 0.9794, {0: (2.24, 0.9794), 5: (2.38, 0.9794),
                               10: (2.66, 0.9794), 15: (2.95, 0.9735),
                               20: (3.15, 0.9029)}),
    "VGG-16": (2.26, 0.8560, {0: (1.21, 0.8559), 5: (2.35, 0.8528),
                              7: (3.88, 0.8327), 8: (5.47, 0.7526),
                              10: (10.27, 0.1699)}),
}

_MODULES = (zoo.lenet5, zoo.alexnet, zoo.vgg16)
_DELTAS = {"LeNet-5": (0, 5, 10, 15, 20), "AlexNet": (0, 5, 10, 15, 20),
           "VGG-16": (0, 5, 7, 8, 10)}
_FAST_SLICE = 4_000_000


@dataclass(frozen=True)
class QuantRow:
    delta_pct: float
    weighted_cr: float
    accuracy: float


@dataclass(frozen=True)
class ModelQuantSweep:
    model: str
    qt_weighted_cr: float
    qt_accuracy: float
    rows: list[QuantRow]


def _full_scale_quant_cr(module, delta_pct: float, fast: bool) -> float:
    """Whole-model weighted CR of QT + compression on the full-scale model.

    Footprint model: all weights stored int8 (4x below fp32), the
    selected layer's int8 stream further replaced by its compressed
    form (int8 storage format, 6 bytes/segment).
    """
    spec = module.full()
    layer_name = module.SELECTED_LAYER
    layer = spec.layer(layer_name)
    weights = spec.materialize(layer_name).ravel()
    qt = quantize_tensor(weights)
    stream_src = qt.values.astype(np.float32)
    if fast and stream_src.size > _FAST_SLICE:
        stream_src = stream_src[:_FAST_SLICE]
    codec = get_codec("linefit", delta_pct=delta_pct, fmt="int8")
    blob = codec.encode(stream_src)

    total = spec.total_params
    fp32_bytes = total * 4
    # every weight int8, biases stay fp32
    weight_params = sum(l.weight_params for l in spec.parametric_layers())
    bias_params = total - weight_params
    quant_bytes = weight_params * 1 + bias_params * 4
    # replace the selected layer's int8 payload with the compressed form
    # when that is actually smaller (at delta=0 the 6-byte segments can
    # exceed the 1-byte int8 weights; a deployment keeps the smaller
    # encoding — the paper's own VGG +0% row shows the same expansion)
    compressed_bytes = int(round(layer.weight_params / blob.compression_ratio))
    quant_bytes -= layer.weight_params
    quant_bytes += min(compressed_bytes, layer.weight_params)
    return fp32_bytes / quant_bytes


def _qt_baseline_cr(module) -> float:
    spec = module.full()
    total = spec.total_params
    weight_params = sum(l.weight_params for l in spec.parametric_layers())
    bias_params = total - weight_params
    return (total * 4) / (weight_params + bias_params * 4)


def _tab3_row(
    pipeline: CompressionPipeline, model_name: str, pct: float, fast: bool, top_k: int
) -> QuantRow:
    """One Tab. III grid point: proxy accuracy at ``pct`` on the
    quantized model, plus the full-scale stacked weighted CR
    (module-level: pool-picklable)."""
    module = zoo.BY_NAME[model_name]
    record = pipeline.run_delta(float(pct))
    acc = record.top1 if top_k == 1 else record.top5
    return QuantRow(
        delta_pct=float(pct),
        weighted_cr=_full_scale_quant_cr(module, float(pct), fast),
        accuracy=acc,
    )


def sweep_model(
    module,
    fast: bool = False,
    seed: int = 7,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timings: Timings | None = None,
) -> ModelQuantSweep:
    model, split = trained_proxy(module, seed=seed, fast=fast)
    top_k = module.TOP_K

    # quantize every layer of the proxy (hybrid: int8 weights, float compute)
    originals = {
        name: layer.params()[0].data.copy()
        for name, layer in model.parametric_layers()
    }
    quantized = quantize_model(model)
    for name, qt in quantized.items():
        model.set_weights(name, qt.dequantize())
    qt_res = evaluate(model, split.x_test, split.y_test)
    qt_acc = qt_res.top1 if top_k == 1 else qt_res.top5

    # compression on top: the pipeline quantizes the selected layer
    # internally, with all other layers already at int8 precision
    pipeline = CompressionPipeline(
        model, split.x_test, split.y_test, quantize_first=True
    )
    deltas = [float(pct) for pct in _DELTAS[module.NAME]]
    keys: list[str | None] = [None] * len(deltas)
    if cache is not None:
        base = pipeline.cache_fingerprint()
        keys = [
            result_key(
                "tab3-row", delta_pct=pct, model=module.NAME, fast=bool(fast), **base
            )
            for pct in deltas
        ]
    tasks = [
        GridTask(fn=_tab3_row, args=(pipeline, module.NAME, pct, fast, top_k), key=k)
        for pct, k in zip(deltas, keys)
    ]
    rows = run_tasks(tasks, jobs=jobs, cache=cache, timings=timings)
    # restore the fp32 proxy weights
    for name, w in originals.items():
        model.set_weights(name, w)
    return ModelQuantSweep(
        model=module.NAME,
        qt_weighted_cr=_qt_baseline_cr(module),
        qt_accuracy=qt_acc,
        rows=rows,
    )


def run(
    fast: bool = False,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timings: Timings | None = None,
) -> list[ModelQuantSweep]:
    return [
        sweep_model(m, fast=fast, jobs=jobs, cache=cache, timings=timings)
        for m in _MODULES
    ]


def render(results: list[ModelQuantSweep]) -> str:
    rows = []
    for r in results:
        paper_qt_cr, paper_qt_acc, paper_rows = PAPER[r.model]
        rows.append(
            [r.model, "QT", f"{r.qt_weighted_cr:.2f}", f"{paper_qt_cr:.2f}",
             f"{r.qt_accuracy:.4f}", f"{paper_qt_acc:.4f}"]
        )
        for row in r.rows:
            paper = paper_rows.get(int(row.delta_pct))
            rows.append(
                [
                    r.model,
                    f"+{row.delta_pct:.0f}%",
                    f"{row.weighted_cr:.2f}",
                    f"{paper[0]:.2f}" if paper else "-",
                    f"{row.accuracy:.4f}",
                    f"{paper[1]:.4f}" if paper else "-",
                ]
            )
    return render_table(
        ["model", "config", "wCR", "(paper)", "accuracy", "(paper)"],
        rows,
        title="Tab. III — compression on top of int8 quantization",
    )


def main() -> list[ModelQuantSweep]:  # pragma: no cover - CLI entry
    results = run()
    print(render(results))
    return results


if __name__ == "__main__":  # pragma: no cover
    main()
