"""Shared experiment infrastructure.

Every experiment module in this package regenerates one table or figure
of the paper.  This module centralizes what they share: robustly trained
proxy models (with on-disk weight caching so repeated benchmark runs do
not retrain), dataset sizing, and the ``fast`` switch that scales the
heavy experiments down for CI-style runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..datasets import Split, dataset_for_input
from ..nn.graph import Model
from ..nn.train import TrainConfig, evaluate, train

__all__ = [
    "PROXY_INPUT_SHAPES",
    "cache_dir",
    "proxy_dataset",
    "trained_proxy",
    "is_fast",
]

#: proxy input shapes per zoo model name
PROXY_INPUT_SHAPES = {
    "LeNet-5": (1, 28, 28),
    "AlexNet": (3, 32, 32),
    "VGG-16": (3, 32, 32),
    "MobileNet": (3, 32, 32),
    "Inception-v3": (3, 32, 32),
    "ResNet50": (3, 32, 32),
}

_DATASET_SIZES = {"train": 4000, "test": 800}
_FAST_SIZES = {"train": 1200, "test": 300}

#: classes of the synthetic ImageNet-like task (top-5 must not saturate)
PROXY_CLASSES = 50
#: noise levels of the synthetic task — tuned so trained proxies land in
#: the paper's top-5 range (~0.8-0.97) rather than saturating at 1.0;
#: the structured (low-frequency) component is what actually confuses
#: classes, the iid component just slows training
PROXY_NOISE = 0.5
PROXY_STRUCTURED_NOISE = 1.0


def is_fast() -> bool:
    """Fast mode trades fidelity for runtime (used by CI benchmarks)."""
    return os.environ.get("REPRO_FAST", "") not in ("", "0")


def cache_dir() -> Path:
    path = Path(
        os.environ.get("REPRO_CACHE", Path.home() / ".cache" / "repro-weights")
    )
    path.mkdir(parents=True, exist_ok=True)
    return path


def proxy_dataset(model_name: str, seed: int = 7, fast: bool | None = None) -> Split:
    fast = is_fast() if fast is None else fast
    sizes = _FAST_SIZES if fast else _DATASET_SIZES
    shape = PROXY_INPUT_SHAPES[model_name]
    return dataset_for_input(
        shape,
        sizes["train"],
        sizes["test"],
        seed=seed,
        num_classes=PROXY_CLASSES,
        noise=PROXY_NOISE,
        structured_noise=PROXY_STRUCTURED_NOISE,
    )


def _weights_path(model_name: str, seed: int, fast: bool) -> Path:
    # v2: checkpoints carry the full state dict (params + BN buffers);
    # the v1 format silently dropped running statistics
    tag = "fast" if fast else "full"
    safe = model_name.replace("/", "_")
    return cache_dir() / f"{safe}-seed{seed}-{tag}-v2.npz"


def _save_weights(model: Model, path: Path) -> None:
    # '/' is not npz-safe on some loaders; state keys use '.' already
    np.savez_compressed(path, **model.state_dict())


def _load_weights(model: Model, path: Path) -> bool:
    try:
        with np.load(path) as data:
            model.load_state_dict({k: data[k] for k in data.files})
        return True
    except (OSError, KeyError, ValueError):
        return False


def trained_proxy(
    module,
    seed: int = 7,
    fast: bool | None = None,
    use_cache: bool = True,
) -> tuple[Model, Split]:
    """A trained proxy for one zoo module, plus its dataset split.

    Training retries with a reduced learning rate if the first run
    diverges (high-momentum SGD on a fresh convnet occasionally blows
    up), and caches the trained weights on disk keyed by model, seed and
    mode, so benchmark reruns skip straight to evaluation.
    """
    fast = is_fast() if fast is None else fast
    split = proxy_dataset(module.NAME, seed=seed, fast=fast)
    model = module.proxy(np.random.default_rng(seed))
    path = _weights_path(module.NAME, seed, fast)
    if use_cache and path.exists() and _load_weights(model, path):
        return model, split

    base_lr = getattr(module, "PROXY_LR", 0.05)
    epochs = getattr(module, "PROXY_EPOCHS", 8)
    top_k = getattr(module, "TOP_K", 1)
    num_classes = int(split.y_train.max()) + 1
    chance = (5 if top_k > 1 else 1) / num_classes
    best_acc, best_state = -1.0, None
    # Stage schedule: train at base_lr, then *continue* at decayed rates
    # (plain step decay) — unless the run diverged or never took off, in
    # which case re-initialize before the next, lower rate.
    prev_acc = -1.0
    for lr in (base_lr, base_lr / 3, base_lr / 10):
        train(
            model,
            split.x_train,
            split.y_train,
            TrainConfig(epochs=epochs, batch_size=64, lr=lr, shuffle_seed=seed),
        )
        res = evaluate(model, split.x_test, split.y_test)
        acc = res.top1 if top_k == 1 else res.top5
        if acc > best_acc:
            best_acc = acc
            # snapshot the FULL state, not just params(): batch-norm
            # running statistics must travel with the weights they were
            # estimated under, or a later (worse) stage leaves its own
            # buffers behind the restored best-stage parameters
            best_state = {k: v.copy() for k, v in model.state_dict().items()}
        if acc > 0.9:
            break
        if prev_acc > 4 * chance and acc - prev_acc < 0.02:
            break  # converged below the target: more stages won't help
        if acc < 3 * chance or not np.isfinite(model.params()[0].data).all():
            model = module.proxy(np.random.default_rng(seed))
        prev_acc = acc
    if best_state is not None:
        model.load_state_dict(best_state)
    if use_cache:
        _save_weights(model, path)
    return model, split
