"""Tab. I — fraction of the parameters accounted by the selected layers.

Applies the layer-selection policy to every zoo model and reports the
model size, selected layer, its type, and its parameter fraction — the
exact columns of the paper's Tab. I.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import render_table
from ..core.layer_selection import select_layer
from ..nn import zoo
from ..nn.arch import LayerKind

__all__ = ["Row", "run", "render", "main"]

#: the paper's Tab. I, for side-by-side comparison
PAPER = {
    "LeNet-5": (62, "dense_1", "FC", 0.80),
    "AlexNet": (24_000, "dense_2", "FC", 0.70),
    "VGG-16": (138_000, "dense_1", "FC", 0.77),
    "MobileNet": (4_250, "conv_preds", "CONV", 0.19),
    "Inception-v3": (23_850, "pred", "CONV", 0.09),
    "ResNet50": (25_640, "fc1000", "FC", 0.08),
}


@dataclass(frozen=True)
class Row:
    model: str
    params_k: float
    layer: str
    kind: str
    fraction: float


def run(fast: bool = False) -> list[Row]:
    rows = []
    for module in zoo.ALL_MODELS:
        spec = module.full()
        sel = select_layer(spec)
        rows.append(
            Row(
                model=module.NAME,
                params_k=spec.total_params / 1000,
                layer=sel.name,
                kind="FC" if sel.kind is LayerKind.FC else "CONV",
                fraction=sel.params / spec.total_params,
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    table = []
    for r in rows:
        paper_k, paper_layer, _, paper_frac = PAPER[r.model]
        table.append(
            [
                r.model,
                f"{r.params_k:,.0f}",
                f"{paper_k:,}",
                r.layer,
                paper_layer,
                r.kind,
                f"{r.fraction:.0%}",
                f"{paper_frac:.0%}",
            ]
        )
    return render_table(
        [
            "model",
            "params x1000",
            "(paper)",
            "layer",
            "(paper)",
            "type",
            "fraction",
            "(paper)",
        ],
        table,
        title="Tab. I — parameters accounted by the layers selected for compression",
    )


def main() -> list[Row]:  # pragma: no cover - CLI entry
    rows = run()
    print(render(rows))
    return rows


if __name__ == "__main__":  # pragma: no cover
    main()
