"""Fig. 9 — normalized per-layer sensitivity for LeNet-5 and AlexNet.

Trains the two proxies, perturbs each parametric layer in turn
(multiplicative weight noise), and reports the normalized accuracy drop
per layer.  The reproduction target: layers close to the input are more
sensitive than the deep FC layers the selection policy picks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.breakdown import LayerBars
from ..analysis.report import render_bars
from ..core.sensitivity import layer_sensitivity, normalized_sensitivity
from ..nn.zoo import alexnet, lenet5
from .common import trained_proxy

__all__ = ["ModelSensitivity", "run", "render", "main"]


@dataclass(frozen=True)
class ModelSensitivity:
    model: str
    #: (layer, normalized sensitivity in [0, 1]) in depth order
    normalized: list[tuple[str, float]]


def run(fast: bool = False) -> list[ModelSensitivity]:
    out = []
    for module in (lenet5, alexnet):
        model, split = trained_proxy(module, fast=fast)
        n_eval = 200 if fast else 500
        results = layer_sensitivity(
            model,
            split.x_test[:n_eval],
            split.y_test[:n_eval],
            noise_fraction=1.0,
            trials=2 if fast else 4,
            top_k=module.TOP_K,
        )
        out.append(
            ModelSensitivity(
                model=module.NAME, normalized=normalized_sensitivity(results)
            )
        )
    return out


def render(results: list[ModelSensitivity]) -> str:
    charts = []
    for r in results:
        bars = [
            LayerBars(label=layer, parts={"sensitivity": value})
            for layer, value in r.normalized
        ]
        charts.append(
            render_bars(bars, title=f"Fig. 9 — normalized sensitivity ({r.model})")
        )
    return "\n\n".join(charts)


def main() -> list[ModelSensitivity]:  # pragma: no cover - CLI entry
    results = run()
    print(render(results))
    return results


if __name__ == "__main__":  # pragma: no cover
    main()
