"""Tab. II — compression efficiency per model and tolerance threshold.

For every zoo model: materialize the selected layer, sweep the paper's
delta grid, and report CR, weighted CR, memory-footprint reduction and
MSE — the exact columns of Tab. II.

In fast mode the two largest streams (VGG-16's 102.8M and AlexNet's
16.8M weights) are evaluated on a slice, with the tolerance still
derived from the *full* stream's range (the range is pinned by the
tail outliers, so a slice alone would misestimate it).

Each sweep also carries a cross-codec comparison: the selected layer's
stream pushed through every baseline codec in the registry at the
paper's zero-tolerance anchor.  The lossless baselines land at CR ~= 1
(or below — RLE *expands* weight streams) while the line-fit codec
already reaches ~1.21, the quantitative form of the paper's Sec. III-B
argument for a bespoke compressor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.report import render_table
from ..core.codecs import get_codec
from ..core.compression import StorageFormat, compress
from ..core.metrics import CompressionReport, layer_report
from ..core.segmentation import delta_from_percent
from ..nn import zoo
from ..runtime import (
    GridTask,
    ResultCache,
    Timings,
    fingerprint_array,
    result_key,
    run_tasks,
)

__all__ = ["ModelSweep", "cross_codec_crs", "run", "render", "main", "PAPER"]

#: the paper's Tab. II (delta% -> (CR, weighted CR, mem fp %, MSE))
PAPER: dict[str, dict[float, tuple[float, float, int, float]]] = {
    "LeNet-5": {
        0: (1.21, 1.17, 14, 5.90e-5), 5: (1.38, 1.30, 24, 8.80e-5),
        10: (1.74, 1.58, 39, 1.38e-4), 15: (2.50, 2.17, 57, 2.01e-4),
        20: (4.02, 3.36, 74, 2.55e-4),
    },
    "AlexNet": {
        0: (1.21, 1.15, 12, 9.23e-7), 5: (1.51, 1.35, 24, 1.69e-6),
        10: (2.38, 1.97, 41, 3.04e-6), 15: (4.77, 3.63, 55, 4.25e-6),
        20: (11.44, 8.28, 64, 4.96e-6),
    },
    "VGG-16": {
        0: (1.21, 1.16, 13, 3.63e-8), 2: (1.43, 1.32, 22, 5.62e-8),
        4: (1.94, 1.70, 36, 8.97e-8), 6: (3.04, 2.51, 50, 1.25e-7),
        8: (5.28, 4.18, 61, 1.57e-7),
    },
    "MobileNet": {
        0: (1.21, 1.05, 4, 1.40e-5), 2: (1.42, 1.10, 7, 2.06e-5),
        4: (1.87, 1.21, 11, 3.20e-5), 6: (2.74, 1.42, 15, 4.49e-5),
        8: (4.31, 1.80, 19, 5.59e-5),
    },
    "Inception-v3": {
        0: (1.22, 1.02, 2, 4.16e-6), 5: (1.65, 1.06, 3, 7.97e-6),
        10: (2.82, 1.16, 5, 1.37e-5), 15: (5.46, 1.38, 7, 1.83e-5),
        20: (11.42, 1.89, 8, 2.12e-5),
    },
    "ResNet50": {
        0: (1.21, 1.02, 2, 4.40e-6), 2: (1.76, 1.06, 4, 8.03e-6),
        4: (3.31, 1.18, 6, 1.33e-5), 6: (6.57, 1.45, 7, 1.71e-5),
        8: (12.79, 1.94, 8, 1.95e-5),
    },
}

_FAST_SLICE = 4_000_000

#: codecs of the comparison column, with per-codec byte caps keeping the
#: pure-Python baselines affordable (CR is stable well below these)
_CODEC_COLUMN: dict[str, int | None] = {
    "linefit": None,
    "huffman": 1 << 18,
    "rle": 1 << 20,
    "lz": 1 << 14,
}


@dataclass(frozen=True)
class ModelSweep:
    model: str
    layer: str
    reports: list[CompressionReport]
    #: codec name -> CR on the selected layer's stream at delta = 0
    codec_crs: dict[str, float] = field(default_factory=dict)


def cross_codec_crs(
    weights: np.ndarray, codecs: dict[str, int | None] = _CODEC_COLUMN
) -> dict[str, float]:
    """CR of each registry codec on one stream, at zero tolerance.

    ``codecs`` maps names to an optional byte cap (the stream is sliced
    before encoding; ``None`` encodes it whole).
    """
    crs = {}
    for name, cap in codecs.items():
        stream = weights
        if cap is not None and stream.nbytes > cap:
            stream = stream[: max(1, cap // stream.itemsize)]
        blob = get_codec(name, delta_pct=0.0).encode(stream)
        crs[name] = blob.compression_ratio
    return crs


def _layer_stream(module, seed: int, fast: bool):
    """(full weights, evaluation stream) of the selected layer.

    Workers re-derive this from ``(model name, seed, fast)`` —
    ``ArchSpec.materialize`` is deterministic, so shipping three scalars
    to a pool worker beats pickling a multi-hundred-MB stream per task.
    """
    spec = module.full()
    weights = spec.materialize(module.SELECTED_LAYER, seed=seed).ravel()
    stream = weights
    if fast and weights.size > _FAST_SLICE:
        stream = weights[:_FAST_SLICE]
    return spec, weights, stream


def _tab2_report(
    model_name: str, seed: int, fast: bool, pct: float
) -> CompressionReport:
    """One Tab. II grid point (module-level: pool-picklable)."""
    module = zoo.BY_NAME[model_name]
    spec, weights, stream = _layer_stream(module, seed, fast)
    total_params = spec.total_params
    layer_params = weights.size
    delta = delta_from_percent(weights, pct)  # range of the FULL stream
    cs = compress(stream, delta)
    report = layer_report(cs, stream, total_params=total_params, delta_pct=pct)
    if stream.size != layer_params:
        # rescale the whole-model figures for the sliced evaluation
        from ..core.metrics import footprint_ratio, param_weighted_cr

        fp = footprint_ratio(total_params, layer_params, report.cr)
        report = CompressionReport(
            delta_pct=pct,
            cr=report.cr,
            weighted_cr=param_weighted_cr(total_params, layer_params, report.cr),
            mem_fp_reduction=1 - 1 / fp,
            mse=report.mse,
        )
    return report


def _tab2_codec_cr(
    model_name: str, seed: int, fast: bool, codec_name: str, cap: int | None
) -> float:
    """One cross-codec comparison cell (module-level: pool-picklable)."""
    module = zoo.BY_NAME[model_name]
    _, _, stream = _layer_stream(module, seed, fast)
    return cross_codec_crs(stream, {codec_name: cap})[codec_name]


def sweep_model(
    module,
    fast: bool = False,
    seed: int = 0,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timings: Timings | None = None,
) -> ModelSweep:
    deltas = [float(pct) for pct in module.DELTA_GRID]
    report_keys: list[str | None] = [None] * len(deltas)
    codec_keys: list[str | None] = [None] * len(_CODEC_COLUMN)
    if cache is not None:
        _, weights, _ = _layer_stream(module, seed, fast)
        base = {
            "weights": fingerprint_array(weights),
            "fast": bool(fast),
            "fmt": StorageFormat(),
        }
        report_keys = [
            result_key("tab2-report", delta_pct=pct, codec="linefit", **base)
            for pct in deltas
        ]
        codec_keys = [
            result_key("tab2-codec-cr", codec=name, cap=cap, **base)
            for name, cap in _CODEC_COLUMN.items()
        ]
    tasks = [
        GridTask(fn=_tab2_report, args=(module.NAME, seed, fast, pct), key=k)
        for pct, k in zip(deltas, report_keys)
    ] + [
        GridTask(fn=_tab2_codec_cr, args=(module.NAME, seed, fast, name, cap), key=k)
        for (name, cap), k in zip(_CODEC_COLUMN.items(), codec_keys)
    ]
    results = run_tasks(tasks, jobs=jobs, cache=cache, timings=timings)
    reports = results[: len(deltas)]
    codec_crs = dict(zip(_CODEC_COLUMN, results[len(deltas) :]))
    return ModelSweep(
        model=module.NAME,
        layer=module.SELECTED_LAYER,
        reports=reports,
        codec_crs=codec_crs,
    )


def run(
    fast: bool = False,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timings: Timings | None = None,
) -> list[ModelSweep]:
    return [
        sweep_model(m, fast=fast, jobs=jobs, cache=cache, timings=timings)
        for m in zoo.ALL_MODELS
    ]


def render(sweeps: list[ModelSweep]) -> str:
    rows = []
    for sweep in sweeps:
        for r in sweep.reports:
            paper = PAPER[sweep.model].get(r.delta_pct)
            rows.append(
                [
                    sweep.model,
                    f"{r.delta_pct:.0f}%",
                    f"{r.cr:.2f}",
                    f"{paper[0]:.2f}" if paper else "-",
                    f"{r.weighted_cr:.2f}",
                    f"{paper[1]:.2f}" if paper else "-",
                    f"{100 * r.mem_fp_reduction:.0f}%",
                    f"{paper[2]}%" if paper else "-",
                    f"{r.mse:.2e}",
                    f"{paper[3]:.2e}" if paper else "-",
                ]
            )
    table = render_table(
        ["model", "delta", "CR", "(paper)", "wCR", "(paper)",
         "mem-fp", "(paper)", "MSE", "(paper)"],
        rows,
        title="Tab. II — compression efficiency for different tolerance thresholds",
    )
    codec_sweeps = [s for s in sweeps if s.codec_crs]
    if not codec_sweeps:
        return table
    names = list(codec_sweeps[0].codec_crs)
    codec_rows = [
        [s.model] + [f"{s.codec_crs.get(n, float('nan')):.3f}" for n in names]
        for s in codec_sweeps
    ]
    comparison = render_table(
        ["model"] + names,
        codec_rows,
        title="Cross-codec CR at delta = 0 (Sec. III-B: lossless baselines ~1)",
    )
    return table + "\n\n" + comparison


def main() -> list[ModelSweep]:  # pragma: no cover - CLI entry
    sweeps = run()
    print(render(sweeps))
    return sweeps


if __name__ == "__main__":  # pragma: no cover
    main()
