"""TFLite-style post-training int8 quantization (Sec. IV-D).

The paper stacks its compression on top of TensorFlow Lite's hybrid
8-bit scheme, where weights are stored as int8 under the affine map

    real_value = (int8_value - zero_point) * scale

with per-tensor ``scale``/``zero_point`` and float activations
("hybrid" quantization).  This module reproduces that scheme; the
compression of a quantized layer then operates on the *int8 value
stream* (cast to float for segmentation, with delta expressed as a
percentage of the int8 range) — the orthogonality of the two techniques
is exactly what Tab. III demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantizedTensor", "quantize_tensor", "quantize_model", "model_footprint"]

_QMIN, _QMAX = -128, 127


@dataclass(frozen=True)
class QuantizedTensor:
    """Per-tensor affine int8 quantization of one weight tensor."""

    values: np.ndarray  # int8, original tensor shape
    scale: float
    zero_point: int

    def dequantize(self) -> np.ndarray:
        return (
            (self.values.astype(np.float32) - np.float32(self.zero_point))
            * np.float32(self.scale)
        )

    @property
    def num_params(self) -> int:
        return int(self.values.size)

    @property
    def footprint_bytes(self) -> int:
        # int8 payload + per-tensor scale (f32) and zero point (i32)
        return self.num_params + 8


def quantize_tensor(weights: np.ndarray) -> QuantizedTensor:
    """Asymmetric per-tensor int8 quantization (TFLite convention)."""
    w = np.asarray(weights, dtype=np.float64)
    if w.size == 0:
        return QuantizedTensor(
            values=np.zeros(w.shape, dtype=np.int8), scale=1.0, zero_point=0
        )
    lo = float(min(w.min(), 0.0))
    hi = float(max(w.max(), 0.0))
    if hi == lo:
        return QuantizedTensor(
            values=np.zeros(w.shape, dtype=np.int8), scale=1.0, zero_point=0
        )
    scale = (hi - lo) / (_QMAX - _QMIN)
    if scale == 0.0:
        # range below float64 subnormal resolution: every value rounds
        # to the same code, same as the hi == lo degenerate case
        return QuantizedTensor(
            values=np.zeros(w.shape, dtype=np.int8), scale=1.0, zero_point=0
        )
    zero_point = int(round(_QMIN - lo / scale))
    zero_point = int(np.clip(zero_point, _QMIN, _QMAX))
    q = np.clip(np.round(w / scale) + zero_point, _QMIN, _QMAX).astype(np.int8)
    return QuantizedTensor(values=q, scale=scale, zero_point=zero_point)


def quantize_model(model) -> dict[str, QuantizedTensor]:
    """Quantize every parametric layer's weight tensor of a proxy model.

    Returns ``{layer_name: QuantizedTensor}``; callers apply them with
    ``model.set_weights(name, qt.dequantize())`` to simulate hybrid
    inference (int8 storage, float compute).
    """
    return {
        name: quantize_tensor(layer.params()[0].data)
        for name, layer in model.parametric_layers()
    }


def model_footprint(
    total_params: int,
    quantized: dict[str, QuantizedTensor] | None = None,
    float_bytes: int = 4,
) -> int:
    """Model parameter footprint in bytes.

    With ``quantized`` given, quantized tensors cost 1 byte per weight
    (plus per-tensor metadata) and the remaining parameters stay float.
    """
    if quantized is None:
        return total_params * float_bytes
    q_params = sum(q.num_params for q in quantized.values())
    q_bytes = sum(q.footprint_bytes for q in quantized.values())
    return (total_params - q_params) * float_bytes + q_bytes
