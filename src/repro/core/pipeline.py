"""End-to-end evaluation flow of the paper's Fig. 8.

``CompressionPipeline`` wires the blocks together for a trainable proxy
model: *Layer Selection* -> *parameter extraction* -> *compression
(delta)* -> *decompression* -> *approximated network* -> *test-set
accuracy*, returning one record per delta value.  The latency/energy leg
of Fig. 8 (the simulation platform) lives in
:mod:`repro.mapping.accelerator`; :mod:`repro.experiments.fig10_tradeoff`
joins the two.

Compression goes through the :mod:`repro.core.codecs` registry, so the
same sweep runs under the paper's line-fit codec (the default), any of
the lossless baselines, or a composed chain — the Tab. III stacking
experiment is the ``"quantize-int8|<codec>"`` chain, which
``quantize_first=True`` builds automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.graph import Model
from ..nn.train import evaluate
from .codecs import Codec, CompressedBlob, get_codec
from .compression import StorageFormat
from .layer_selection import select_layer_model

__all__ = ["DeltaRecord", "CompressionPipeline", "apply_compression"]


@dataclass(frozen=True)
class DeltaRecord:
    """Accuracy outcome of one delta configuration (one Fig. 10 bar)."""

    delta_pct: float
    top1: float
    top5: float
    cr: float
    mse: float
    num_segments: int


def _layer_codec(
    codec: str | Codec,
    delta_pct: float,
    fmt: StorageFormat | None = None,
    quantize_first: bool = False,
) -> Codec:
    """Build the per-delta codec instance a sweep step uses.

    A :class:`Codec` instance passes through untouched (its parameters,
    including any tolerance, are fixed at construction).  A string spec
    is instantiated at ``delta_pct``; with ``quantize_first`` the spec
    is prefixed with the ``quantize-int8`` transform stage, and a
    line-fit terminal switches to the int8 storage format (6 bytes per
    segment against 1-byte weights — the Tab. III cost model).
    """
    if isinstance(codec, Codec):
        return codec
    params: dict = {"delta_pct": float(delta_pct)}
    terminal = codec.rsplit("|", 1)[-1].strip()
    if quantize_first:
        codec = f"quantize-int8|{codec}"
        if terminal == "linefit" and fmt is None:
            fmt = StorageFormat.int8()
    if fmt is not None:
        if terminal != "linefit":
            raise ValueError(
                f"storage format applies to the linefit codec, not {terminal!r}"
            )
        params["fmt"] = fmt
    return get_codec(codec, **params)


def apply_compression(
    model: Model,
    layer_name: str,
    delta_pct: float,
    fmt: StorageFormat | None = None,
    codec: str | Codec = "linefit",
) -> tuple[CompressedBlob, np.ndarray]:
    """Compress one layer in place; returns (blob, original weights).

    The layer's weight tensor is replaced by the decompressed
    approximation (C-order round trip), exactly as the evaluation flow
    prescribes.  Callers restore with ``model.set_weights(layer_name,
    original)``.  ``codec`` is any registry spec or instance.
    """
    original = model.get_weights(layer_name).copy()
    codec_obj = _layer_codec(codec, delta_pct, fmt=fmt)
    blob = codec_obj.encode(original.ravel())
    approx = codec_obj.decode(blob).reshape(original.shape)
    model.set_weights(layer_name, approx)
    return blob, original


class CompressionPipeline:
    """Fig. 8 flow for a trained proxy model.

    Parameters
    ----------
    model:
        A *trained* proxy model (training is the caller's business; see
        ``repro.experiments.common.trained_proxy``).
    x_test, y_test:
        Held-out evaluation data.
    layer_name:
        Compression target; defaults to the paper's selection policy.
    quantize_first:
        If True, the selected layer is int8-quantized before compression
        (the Tab. III stacking experiment): the sweep runs the
        ``"quantize-int8|<codec>"`` chain on the int8 value stream.
    codec:
        Registry spec of the compressor to sweep (default
        ``"linefit"``, the paper's).  Lossless baselines (``"huffman"``,
        ``"rle"``, ``"lz"``) run the identical flow with exact
        reconstruction — CR ~= 1 and unchanged accuracy, the
        quantitative form of the paper's Sec. III-B claim.
    """

    def __init__(
        self,
        model: Model,
        x_test: np.ndarray,
        y_test: np.ndarray,
        layer_name: str | None = None,
        quantize_first: bool = False,
        codec: str | Codec = "linefit",
    ) -> None:
        self.model = model
        self.x_test = x_test
        self.y_test = y_test
        self.layer_name = layer_name or select_layer_model(model)
        self.quantize_first = quantize_first
        self.codec = codec
        self.baseline = evaluate(model, x_test, y_test)

    def run_delta(self, delta_pct: float) -> DeltaRecord:
        """Evaluate one delta value; the model is restored afterwards."""
        original = self.model.get_weights(self.layer_name).copy()
        try:
            codec = _layer_codec(
                self.codec, delta_pct, quantize_first=self.quantize_first
            )
            blob = codec.encode(original.ravel())
            approx = codec.decode(blob).reshape(original.shape)
            mse = codec.reconstruction_mse(blob, original.ravel())
            self.model.set_weights(self.layer_name, approx)
            result = evaluate(self.model, self.x_test, self.y_test)
        finally:
            self.model.set_weights(self.layer_name, original)
        return DeltaRecord(
            delta_pct=delta_pct,
            top1=result.top1,
            top5=result.top5,
            cr=blob.compression_ratio,
            mse=mse,
            num_segments=blob.num_segments,
        )

    def sweep(self, delta_grid) -> list[DeltaRecord]:
        """Run the full delta sweep of Tab. II / Fig. 10."""
        return [self.run_delta(float(d)) for d in delta_grid]
