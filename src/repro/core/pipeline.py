"""End-to-end evaluation flow of the paper's Fig. 8.

``CompressionPipeline`` wires the blocks together for a trainable proxy
model: *Layer Selection* -> *parameter extraction* -> *compression
(delta)* -> *decompression* -> *approximated network* -> *test-set
accuracy*, returning one record per delta value.  The latency/energy leg
of Fig. 8 (the simulation platform) lives in
:mod:`repro.mapping.accelerator`; :mod:`repro.experiments.fig10_tradeoff`
joins the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.graph import Model
from ..nn.train import evaluate
from .compression import CompressedStream, StorageFormat, compress_percent
from .layer_selection import select_layer_model
from .quantization import quantize_tensor

__all__ = ["DeltaRecord", "CompressionPipeline", "apply_compression"]


@dataclass(frozen=True)
class DeltaRecord:
    """Accuracy outcome of one delta configuration (one Fig. 10 bar)."""

    delta_pct: float
    top1: float
    top5: float
    cr: float
    mse: float
    num_segments: int


def apply_compression(
    model: Model,
    layer_name: str,
    delta_pct: float,
    fmt: StorageFormat | None = None,
) -> tuple[CompressedStream, np.ndarray]:
    """Compress one layer in place; returns (stream, original weights).

    The layer's weight tensor is replaced by the decompressed
    approximation (C-order round trip), exactly as the evaluation flow
    prescribes.  Callers restore with ``model.set_weights(layer_name,
    original)``.
    """
    original = model.get_weights(layer_name).copy()
    stream = compress_percent(original.ravel(), delta_pct, fmt=fmt)
    approx = stream.decompress(dtype=np.float32).reshape(original.shape)
    model.set_weights(layer_name, approx)
    return stream, original


class CompressionPipeline:
    """Fig. 8 flow for a trained proxy model.

    Parameters
    ----------
    model:
        A *trained* proxy model (training is the caller's business; see
        ``repro.experiments.common.trained_proxy``).
    x_test, y_test:
        Held-out evaluation data.
    layer_name:
        Compression target; defaults to the paper's selection policy.
    quantize_first:
        If True, the selected layer is int8-quantized before compression
        (the Tab. III stacking experiment) and compression runs on the
        int8 value stream with the int8 storage format.
    """

    def __init__(
        self,
        model: Model,
        x_test: np.ndarray,
        y_test: np.ndarray,
        layer_name: str | None = None,
        quantize_first: bool = False,
    ) -> None:
        self.model = model
        self.x_test = x_test
        self.y_test = y_test
        self.layer_name = layer_name or select_layer_model(model)
        self.quantize_first = quantize_first
        self.baseline = evaluate(model, x_test, y_test)

    def run_delta(self, delta_pct: float) -> DeltaRecord:
        """Evaluate one delta value; the model is restored afterwards."""
        original = self.model.get_weights(self.layer_name).copy()
        try:
            if self.quantize_first:
                qt = quantize_tensor(original)
                int8_stream = qt.values.astype(np.float32).ravel()
                stream = compress_percent(
                    int8_stream, delta_pct, fmt=StorageFormat.int8()
                )
                approx_q = stream.decompress(dtype=np.float32)
                approx = (
                    (approx_q - np.float32(qt.zero_point)) * np.float32(qt.scale)
                ).reshape(original.shape)
                mse = float(np.mean((approx - original.astype(np.float64)) ** 2))
            else:
                stream = compress_percent(original.ravel(), delta_pct)
                approx = stream.decompress(dtype=np.float32).reshape(original.shape)
                mse = stream.mse(original.ravel())
            self.model.set_weights(self.layer_name, approx)
            result = evaluate(self.model, self.x_test, self.y_test)
        finally:
            self.model.set_weights(self.layer_name, original)
        return DeltaRecord(
            delta_pct=delta_pct,
            top1=result.top1,
            top5=result.top5,
            cr=stream.compression_ratio,
            mse=mse,
            num_segments=stream.num_segments,
        )

    def sweep(self, delta_grid) -> list[DeltaRecord]:
        """Run the full delta sweep of Tab. II / Fig. 10."""
        return [self.run_delta(float(d)) for d in delta_grid]
