"""End-to-end evaluation flow of the paper's Fig. 8.

``CompressionPipeline`` wires the blocks together for a trainable proxy
model: *Layer Selection* -> *parameter extraction* -> *compression
(delta)* -> *decompression* -> *approximated network* -> *test-set
accuracy*, returning one record per delta value.  The latency/energy leg
of Fig. 8 (the simulation platform) lives in
:mod:`repro.mapping.accelerator`; :mod:`repro.experiments.fig10_tradeoff`
joins the two.

Compression goes through the :mod:`repro.core.codecs` registry, so the
same sweep runs under the paper's line-fit codec (the default), any of
the lossless baselines, or a composed chain — the Tab. III stacking
experiment is the ``"quantize-int8|<codec>"`` chain, which
``quantize_first=True`` builds automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..nn.graph import Model
from ..nn.train import evaluate
from ..runtime import (
    GridTask,
    ResultCache,
    Timings,
    codec_spec,
    fingerprint_array,
    fingerprint_arrays,
    result_key,
    run_tasks,
)
from .codecs import Codec, CompressedBlob, get_codec
from .compression import StorageFormat
from .layer_selection import select_layer_model

__all__ = ["DeltaRecord", "CompressionPipeline", "apply_compression"]


@dataclass(frozen=True)
class DeltaRecord:
    """Accuracy outcome of one delta configuration (one Fig. 10 bar)."""

    delta_pct: float
    top1: float
    top5: float
    cr: float
    mse: float
    num_segments: int


def _layer_codec(
    codec: str | Codec,
    delta_pct: float,
    fmt: StorageFormat | None = None,
    quantize_first: bool = False,
) -> Codec:
    """Build the per-delta codec instance a sweep step uses.

    A :class:`Codec` instance passes through untouched (its parameters,
    including any tolerance, are fixed at construction).  A string spec
    is instantiated at ``delta_pct``; with ``quantize_first`` the spec
    is prefixed with the ``quantize-int8`` transform stage, and a
    line-fit terminal switches to the int8 storage format (6 bytes per
    segment against 1-byte weights — the Tab. III cost model).
    """
    if isinstance(codec, Codec):
        return codec
    params: dict = {"delta_pct": float(delta_pct)}
    terminal = codec.rsplit("|", 1)[-1].strip()
    if quantize_first:
        codec = f"quantize-int8|{codec}"
        if terminal == "linefit" and fmt is None:
            fmt = StorageFormat.int8()
    if fmt is not None:
        if terminal != "linefit":
            raise ValueError(
                f"storage format applies to the linefit codec, not {terminal!r}"
            )
        params["fmt"] = fmt
    return get_codec(codec, **params)


def _sweep_point(pipeline: "CompressionPipeline", delta_pct: float) -> DeltaRecord:
    """One sweep grid point; module-level so process pools can pickle it.

    In-worker the pipeline is a private copy, so the mutate-and-restore
    inside :meth:`CompressionPipeline.run_delta` cannot race; serially
    it is the caller's object and ``run_delta`` restores it as always.
    """
    return pipeline.run_delta(delta_pct)


def apply_compression(
    model: Model,
    layer_name: str,
    delta_pct: float,
    fmt: StorageFormat | None = None,
    codec: str | Codec = "linefit",
) -> tuple[CompressedBlob, np.ndarray]:
    """Compress one layer in place; returns (blob, original weights).

    The layer's weight tensor is replaced by the decompressed
    approximation (C-order round trip), exactly as the evaluation flow
    prescribes.  Callers restore with ``model.set_weights(layer_name,
    original)``.  ``codec`` is any registry spec or instance.
    """
    original = model.get_weights(layer_name).copy()
    codec_obj = _layer_codec(codec, delta_pct, fmt=fmt)
    blob = codec_obj.encode(original.ravel())
    approx = codec_obj.decode(blob).reshape(original.shape)
    model.set_weights(layer_name, approx)
    return blob, original


class CompressionPipeline:
    """Fig. 8 flow for a trained proxy model.

    Parameters
    ----------
    model:
        A *trained* proxy model (training is the caller's business; see
        ``repro.experiments.common.trained_proxy``).
    x_test, y_test:
        Held-out evaluation data.
    layer_name:
        Compression target; defaults to the paper's selection policy.
    quantize_first:
        If True, the selected layer is int8-quantized before compression
        (the Tab. III stacking experiment): the sweep runs the
        ``"quantize-int8|<codec>"`` chain on the int8 value stream.
    codec:
        Registry spec of the compressor to sweep (default
        ``"linefit"``, the paper's).  Lossless baselines (``"huffman"``,
        ``"rle"``, ``"lz"``) run the identical flow with exact
        reconstruction — CR ~= 1 and unchanged accuracy, the
        quantitative form of the paper's Sec. III-B claim.
    """

    def __init__(
        self,
        model: Model,
        x_test: np.ndarray,
        y_test: np.ndarray,
        layer_name: str | None = None,
        quantize_first: bool = False,
        codec: str | Codec = "linefit",
    ) -> None:
        self.model = model
        self.x_test = x_test
        self.y_test = y_test
        self.layer_name = layer_name or select_layer_model(model)
        self.quantize_first = quantize_first
        self.codec = codec
        self.baseline = evaluate(model, x_test, y_test)
        self._fingerprint: dict | None = None

    def cache_fingerprint(self) -> dict:
        """Content identity of this sweep configuration.

        Everything a :class:`DeltaRecord` depends on besides the delta
        itself: the compressed layer's weight stream, the *full* model
        state (accuracy is a whole-model property), the evaluation set,
        and the codec configuration.  Computed once and reused for every
        grid point's :func:`repro.runtime.result_key`.
        """
        if self._fingerprint is None:
            state = self.model.state_dict()
            self._fingerprint = {
                "weights": fingerprint_array(
                    self.model.get_weights(self.layer_name)
                ),
                "model_state": fingerprint_arrays(
                    *(state[k] for k in sorted(state))
                ),
                "eval_set": fingerprint_arrays(self.x_test, self.y_test),
                "codec": codec_spec(self.codec),
                "quantize_first": bool(self.quantize_first),
                "fmt": None,
                "layer": self.layer_name,
            }
        return self._fingerprint

    def run_delta(self, delta_pct: float) -> DeltaRecord:
        """Evaluate one delta value; the model is restored afterwards."""
        o = obs.current()
        original = self.model.get_weights(self.layer_name).copy()
        try:
            with o.span(
                "pipeline.run_delta",
                cat="pipeline",
                delta_pct=delta_pct,
                layer=self.layer_name,
            ):
                codec = _layer_codec(
                    self.codec, delta_pct, quantize_first=self.quantize_first
                )
                with o.span("pipeline.encode", cat="pipeline"):
                    blob = codec.encode(original.ravel())
                with o.span("pipeline.decode", cat="pipeline"):
                    approx = codec.decode(blob).reshape(original.shape)
                    mse = codec.reconstruction_mse(blob, original.ravel())
                self.model.set_weights(self.layer_name, approx)
                with o.span("pipeline.evaluate", cat="pipeline"):
                    result = evaluate(self.model, self.x_test, self.y_test)
                o.count("pipeline.deltas_evaluated")
                o.count("pipeline.compressed_bytes", blob.compressed_bytes)
        finally:
            self.model.set_weights(self.layer_name, original)
        return DeltaRecord(
            delta_pct=delta_pct,
            top1=result.top1,
            top5=result.top5,
            cr=blob.compression_ratio,
            mse=mse,
            num_segments=blob.num_segments,
        )

    def sweep(
        self,
        delta_grid,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        timings: Timings | None = None,
    ) -> list[DeltaRecord]:
        """Run the full delta sweep of Tab. II / Fig. 10.

        Grid points are independent, so the sweep fans out over a
        process pool (``jobs=`` kwarg, else the ``REPRO_JOBS`` env var,
        else serial) and consults the content-addressed ``cache``
        before dispatch.  Serial, parallel, and warm-cache runs return
        identical records.
        """
        deltas = [float(d) for d in delta_grid]
        keys: list[str | None] = [None] * len(deltas)
        if cache is not None:
            base = self.cache_fingerprint()
            keys = [
                result_key("delta-record", delta_pct=d, **base) for d in deltas
            ]
        tasks = [
            GridTask(fn=_sweep_point, args=(self, d), key=k)
            for d, k in zip(deltas, keys)
        ]
        with obs.current().span(
            "pipeline.sweep",
            cat="pipeline",
            layer=self.layer_name,
            codec=str(self.codec),
            deltas=len(deltas),
        ):
            return run_tasks(tasks, jobs=jobs, cache=cache, timings=timings)
