"""Weak-sense monotonic segmentation of a weight stream.

This module implements the partitioning step of the compression technique
of Sec. III-B of the paper: the succession of model parameters
``W = {w_1, ..., w_n}`` is greedily split, left to right, into maximal
sub-successions that are *monotonic in the weak sense* with tolerance
threshold ``delta`` (Eq. (1) of the paper):

    a succession is weakly decreasing with tolerance ``delta`` iff for
    every consecutive pair, ``w_i > w_{i+1}`` **or** ``|w_i - w_{i+1}| <=
    delta``; weakly increasing is symmetric.

Greedy semantics
----------------
Scanning left to right, a segment absorbs steps while it stays weakly
monotonic in at least one direction.  Steps whose magnitude is within
``delta`` are *neutral* and never commit a direction; the first
out-of-tolerance step commits the segment's direction, and the first
out-of-tolerance step of the *opposite* direction breaks the segment.
The breaking step lies *between* two segments (the partition is over
elements, not steps), so the element after the breaking step starts the
next segment with a fresh, uncommitted direction.

Vectorization
-------------
The greedy scan looks inherently sequential, but it collapses to a pure
NumPy pipeline.  Classify each step ``d_i = w_{i+1} - w_i`` with sign
``t_i in {-1, 0, +1}`` (``0`` when ``|d_i| <= delta``).  Restrict to the
subsequence of non-zero signs.  A step breaks the current segment iff its
sign differs from the segment's committed direction, and the committed
direction is always the sign of the *previous non-zero, non-breaking*
step.  Hence, with ``c_j = [t_j != t_{j-1}]`` over the non-zero
subsequence:

    break(j) = c_j and not break(j-1),      break(0) = False

i.e. breaks alternate inside each maximal run of consecutive sign
changes, starting with a break.  Runs of ones in ``c`` are found with
``np.flatnonzero`` and the alternation is an index-parity test — O(n)
NumPy, no Python loop.  ``segment_greedy_reference`` keeps the obvious
sequential implementation for differential testing.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "step_signs",
    "segment_boundaries",
    "segment_greedy_reference",
    "segment_lengths",
    "is_weak_monotonic",
    "delta_from_percent",
]


def delta_from_percent(weights: np.ndarray, delta_pct: float) -> float:
    """Convert the paper's percentage tolerance into an absolute one.

    The paper expresses ``delta`` as a percentage of the amplitude of the
    model parameters: ``delta = x% * (max(W) - min(W)) / 100``.

    Parameters
    ----------
    weights:
        The weight stream the tolerance refers to.
    delta_pct:
        Tolerance as a percentage of the weight range (e.g. ``15`` for
        the paper's ``delta = 15%``).

    Returns
    -------
    float
        The absolute tolerance to use in :func:`segment_boundaries`.
    """
    if delta_pct < 0:
        raise ValueError(f"delta_pct must be non-negative, got {delta_pct}")
    w = np.asarray(weights)
    if w.size == 0:
        return 0.0
    amplitude = float(w.max()) - float(w.min())
    return delta_pct * amplitude / 100.0


def step_signs(weights: np.ndarray, delta: float) -> np.ndarray:
    """Classify each consecutive step of the stream.

    Returns an ``int8`` array of length ``n - 1`` with ``+1`` for an
    out-of-tolerance increase, ``-1`` for an out-of-tolerance decrease
    and ``0`` for a neutral step (``|d| <= delta``).
    """
    w = np.asarray(weights, dtype=np.float64).ravel()
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    d = np.diff(w)
    signs = np.zeros(d.shape, dtype=np.int8)
    signs[d > delta] = 1
    signs[d < -delta] = -1
    return signs


def segment_boundaries(weights: np.ndarray, delta: float) -> np.ndarray:
    """Greedy weak-monotonic partition of ``weights``.

    Parameters
    ----------
    weights:
        1-D stream of parameters (any float dtype; flattened C-order).
    delta:
        Absolute tolerance threshold (``>= 0``).  Use
        :func:`delta_from_percent` to derive it from the paper's
        percentage convention.

    Returns
    -------
    numpy.ndarray
        ``int64`` boundary array ``b`` with ``b[0] == 0`` and
        ``b[-1] == n``; segment ``i`` is ``weights[b[i]:b[i+1]]``.
        An empty stream yields ``[0]``.
    """
    w = np.asarray(weights).ravel()
    n = w.size
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    if n == 1:
        return np.array([0, 1], dtype=np.int64)

    signs = step_signs(w, delta)
    nz = np.flatnonzero(signs)
    if nz.size <= 1:
        # At most one committed direction: a single segment.
        return np.array([0, n], dtype=np.int64)

    t = signs[nz]
    change = t[1:] != t[:-1]  # c_j for j = 1..k-1 in the non-zero subsequence
    if not change.any():
        return np.array([0, n], dtype=np.int64)

    # break(j) alternates inside each maximal run of consecutive changes,
    # starting with a break at the run head.  Run heads are the change
    # positions not preceded by a change; broadcasting the head index to
    # the whole run lets a parity test pick every other position.
    change_idx = np.flatnonzero(change)  # indices into `change`
    head_mask = np.ones(change_idx.size, dtype=bool)
    head_mask[1:] = np.diff(change_idx) > 1
    # For each change position, index of its run head (same units).
    head_of = np.maximum.accumulate(np.where(head_mask, change_idx, -1))
    breaks_in_change = (change_idx - head_of) % 2 == 0
    break_j = change_idx[breaks_in_change] + 1  # j-index in non-zero subseq

    # The breaking step is signs[nz[break_j]]; the next segment starts at
    # the element just after that step.
    starts = nz[break_j] + 1
    return np.concatenate(([0], starts, [n])).astype(np.int64)


def segment_greedy_reference(weights: np.ndarray, delta: float) -> np.ndarray:
    """Sequential reference implementation of :func:`segment_boundaries`.

    Kept deliberately naive; used in tests to validate the vectorized
    kernel on random and adversarial streams.
    """
    w = np.asarray(weights, dtype=np.float64).ravel()
    n = w.size
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    boundaries = [0]
    direction = 0  # 0 = uncommitted, +1 increasing, -1 decreasing
    for i in range(n - 1):
        d = w[i + 1] - w[i]
        if abs(d) <= delta:
            continue
        s = 1 if d > 0 else -1
        if direction == 0:
            direction = s
        elif s != direction:
            boundaries.append(i + 1)
            direction = 0
    boundaries.append(n)
    return np.asarray(boundaries, dtype=np.int64)


def segment_lengths(boundaries: np.ndarray) -> np.ndarray:
    """Lengths of the segments described by a boundary array."""
    b = np.asarray(boundaries, dtype=np.int64)
    return np.diff(b)


def is_weak_monotonic(segment: np.ndarray, delta: float) -> bool:
    """Check Eq. (1): is ``segment`` weakly monotonic with tolerance ``delta``?

    True iff the segment is weakly increasing **or** weakly decreasing,
    i.e. all out-of-tolerance steps share one direction.
    """
    s = np.asarray(segment, dtype=np.float64).ravel()
    if s.size <= 1:
        return True
    signs = step_signs(s, delta)
    has_up = bool((signs > 0).any())
    has_down = bool((signs < 0).any())
    return not (has_up and has_down)
