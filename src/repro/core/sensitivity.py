"""Per-layer sensitivity analysis (Fig. 9 of the paper).

The sensitivity of a layer measures the accuracy drop when its weights
are perturbed.  The paper uses this to justify the layer-selection
policy: layers close to the input are far more sensitive than the deep
layers selected for compression, so only deep layers are safe targets.

Three perturbation models are provided:

* ``"multiplicative"`` (default) — ``w' = w * (1 + eps)``, relative noise
  per weight.  This is the probe that reproduces the paper's Fig. 9
  shape on the proxy networks: input-side conv layers respond most,
  the large deep FC layers least.
* ``"range"`` — additive noise with std equal to ``noise_fraction`` of
  the layer's weight range, the same normalization the compression
  tolerance delta uses.
* ``"std"`` — additive noise with std relative to the layer's weight std.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.graph import Model
from ..nn.train import evaluate

__all__ = ["LayerSensitivity", "layer_sensitivity", "normalized_sensitivity"]

_MODES = ("multiplicative", "range", "std")


@dataclass(frozen=True)
class LayerSensitivity:
    layer: str
    depth: int
    #: accuracy drop (original - perturbed), averaged over trials
    accuracy_drop: float


def _perturbed(
    original: np.ndarray, mode: str, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    if mode == "multiplicative":
        noise = 1.0 + rng.normal(0.0, fraction, size=original.shape)
        return (original * noise).astype(np.float32)
    if mode == "range":
        amplitude = float(original.max() - original.min())
        return original + rng.normal(
            0.0, fraction * amplitude, size=original.shape
        ).astype(np.float32)
    if mode == "std":
        return original + rng.normal(
            0.0, fraction * float(original.std()), size=original.shape
        ).astype(np.float32)
    raise ValueError(f"unknown perturbation mode {mode!r}; use one of {_MODES}")


def layer_sensitivity(
    model: Model,
    x: np.ndarray,
    y: np.ndarray,
    noise_fraction: float = 1.0,
    trials: int = 3,
    seed: int = 0,
    top_k: int = 1,
    mode: str = "multiplicative",
) -> list[LayerSensitivity]:
    """Measure every parametric layer's sensitivity on (x, y).

    Each trial perturbs one layer (weights only, biases untouched),
    evaluates, and restores the original weights.  Returns results in
    depth order.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if mode not in _MODES:
        raise ValueError(f"unknown perturbation mode {mode!r}; use one of {_MODES}")
    base = evaluate(model, x, y)
    base_acc = base.top1 if top_k == 1 else base.top5
    rng = np.random.default_rng(seed)
    results = []
    for depth, (name, layer) in enumerate(model.parametric_layers()):
        weight = layer.params()[0]
        original = weight.data.copy()
        drops = []
        for _ in range(trials):
            weight.data = _perturbed(original, mode, noise_fraction, rng)
            res = evaluate(model, x, y)
            acc = res.top1 if top_k == 1 else res.top5
            drops.append(base_acc - acc)
        weight.data = original
        results.append(
            LayerSensitivity(
                layer=name, depth=depth, accuracy_drop=float(np.mean(drops))
            )
        )
    return results


def normalized_sensitivity(results: list[LayerSensitivity]) -> list[tuple[str, float]]:
    """Scale sensitivities to [0, 1] like the paper's Fig. 9 y-axis."""
    if not results:
        return []
    peak = max(r.accuracy_drop for r in results)
    if peak <= 0:
        return [(r.layer, 0.0) for r in results]
    return [(r.layer, max(r.accuracy_drop, 0.0) / peak) for r in results]
