"""Cycle-level model of the on-PE decompression unit (Sec. III-C, Fig. 6).

The hardware unit is a two-state FSM driving an accumulator datapath:

* **Init** — latch ``q_i`` into the accumulator and emit ``w~_1 = q_i``;
* **Run** — each cycle add ``m_i`` and emit ``w~_j = w~_{j-1} + m_i``
  until ``|M_i|`` weights have been produced (Eq. (2)).

No multiplier is required; the paper contrasts this with a naive
``m * x + q`` datapath.  We model both so the multiplier-free claim can
be quantified (cycles are identical — one weight per cycle — but the
energy per emitted weight differs; see :mod:`repro.energy.params`).

Numerical faithfulness: the accumulator is ``float32`` (or ``float16``
for the int8 storage format), so the emitted stream differs slightly
from the mathematically evaluated line for long segments.
``decompress_accumulate`` reproduces the accumulator bit pattern exactly:
NumPy's ``cumsum`` is strictly sequential, so a per-segment cumsum in the
accumulator dtype *is* the hardware recurrence.  The batch decoder
exploits that along ``axis=1`` of a segments-by-length matrix — every
same-length segment is one row, and one axis-1 cumsum runs all their
accumulators in parallel, bit-identical to looping the FSM per segment.
The Python-level loop is over *distinct segment lengths* only (a handful
for real weight streams), not over segments, and certainly not weights.

:class:`WeightStream` is the tile-cursor face of the same decoder: it
walks the segment list front to back and materializes decoded weights
tile by tile, so a consumer (the fused decode+MAC path in
:mod:`repro.nn.layers`, via :mod:`repro.core.provider`) never holds more
than one tile plus one segment batch — the full-size weight buffer the
paper's PE avoids in hardware is avoided in the model too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .compression import CompressedStream

__all__ = [
    "DecompressorTiming",
    "DecompressionUnit",
    "WeightStream",
    "decompress_accumulate",
]

#: default tile size of :class:`WeightStream` / the fused nn path, in
#: weights — 16 KB of float32, two PE-local memories' worth
DEFAULT_TILE_WEIGHTS = 4096


@dataclass(frozen=True)
class DecompressorTiming:
    """Cycle costs of the decompression unit.

    ``init_cycles`` covers fetching a segment descriptor and loading the
    accumulator (the FSM *Init* state); ``run_cycles_per_weight`` is the
    steady-state throughput of the *Run* state (1 weight/cycle in the
    paper's design).
    """

    init_cycles: int = 1
    run_cycles_per_weight: int = 1


def _accumulate_batch(
    m: np.ndarray,
    q: np.ndarray,
    lengths: np.ndarray,
    out: np.ndarray,
    starts: np.ndarray,
) -> None:
    """Run the accumulator FSM for a batch of segments, segment-parallel.

    Writes each segment's emitted weights into ``out`` at its ``starts``
    offset.  Same-length segments are stacked into one ``(k, L)`` matrix
    whose rows are ``[q, m, m, ...]``; an axis-1 ``cumsum`` in the
    output dtype performs all ``k`` sequential recurrences at once —
    NumPy's cumsum is a strict left-to-right accumulation, so each row is
    bit-identical to the scalar FSM.
    """
    acc_dtype = out.dtype
    order = np.argsort(lengths, kind="stable")
    ls = lengths[order]
    group_starts = np.flatnonzero(np.r_[True, ls[1:] != ls[:-1]])
    group_ends = np.r_[group_starts[1:], ls.size]
    for gs, ge in zip(group_starts, group_ends):
        length = int(ls[gs])
        idx = order[gs:ge]
        block = np.empty((idx.size, length), dtype=acc_dtype)
        block[:, 0] = q[idx]
        if length > 1:
            block[:, 1:] = m[idx, None]
            np.cumsum(block, axis=1, dtype=acc_dtype, out=block)
        pos = starts[idx, None] + np.arange(length, dtype=np.int64)
        out[pos.ravel()] = block.ravel()


def decompress_accumulate(
    stream: CompressedStream, acc_dtype=np.float32
) -> np.ndarray:
    """Bit-faithful accumulator decompression of a compressed stream.

    Segment-parallel batch decode: segments are grouped by length and
    each group's recurrences run as one vectorized axis-1 cumsum in the
    accumulator dtype, reproducing the sequential recurrence of Eq. (2)
    exactly (see :func:`_accumulate_batch`).  For accuracy studies
    prefer :meth:`CompressedStream.decompress`, which evaluates the
    mathematical line in float64.
    """
    m, q = stream.storage_coefficients()
    lengths = np.asarray(stream.lengths, dtype=np.int64)
    n = int(lengths.sum()) if lengths.size else 0
    out = np.empty(n, dtype=acc_dtype)
    if n == 0:
        return out
    starts = np.cumsum(lengths) - lengths
    _accumulate_batch(
        m.astype(acc_dtype), q.astype(acc_dtype), lengths, out, starts
    )
    return out


class WeightStream:
    """Forward tile cursor over a compressed stream's decoded weights.

    Decodes on demand: :meth:`read` materializes exactly the requested
    number of weights (decoding whole segments internally and carrying
    the partial tail to the next call), and :meth:`tiles` iterates the
    stream in fixed-size tiles.  Peak memory is one tile plus one
    decoded segment batch — the full weight array is never allocated.

    Every emitted value is bit-identical to the corresponding element of
    :func:`decompress_accumulate` on the same stream, because segments
    are always decoded whole through the same batch accumulator.
    """

    def __init__(
        self, stream: CompressedStream, acc_dtype=np.float32
    ) -> None:
        m, q = stream.storage_coefficients()
        self._acc_dtype = np.dtype(acc_dtype)
        self._m = m.astype(self._acc_dtype)
        self._q = q.astype(self._acc_dtype)
        self._lengths = np.asarray(stream.lengths, dtype=np.int64)
        self._ends = np.cumsum(self._lengths) if self._lengths.size else np.zeros(0, np.int64)
        self.num_weights = int(self._ends[-1]) if self._lengths.size else 0
        self.reset()

    @property
    def dtype(self) -> np.dtype:
        return self._acc_dtype

    @property
    def position(self) -> int:
        """Absolute index of the next weight :meth:`read` will return."""
        return self._pos

    @property
    def remaining(self) -> int:
        return self.num_weights - self._pos

    def reset(self) -> None:
        """Rewind the cursor to the start of the stream."""
        self._pos = 0
        self._seg = 0  # next segment to decode
        self._carry: np.ndarray = np.empty(0, dtype=self._acc_dtype)
        self._carry_off = 0

    def _decode_through(self, needed: int) -> None:
        """Decode whole segments until the carry holds >= ``needed``."""
        carried = self._carry.size - self._carry_off
        if carried >= needed or self._seg >= self._lengths.size:
            return
        # first segment index whose end covers the request
        target = self._pos + needed
        last = int(np.searchsorted(self._ends, target, side="left"))
        last = min(last + 1, int(self._lengths.size))
        sl = slice(self._seg, last)
        lengths = self._lengths[sl]
        total = int(lengths.sum())
        batch = np.empty(total, dtype=self._acc_dtype)
        starts = np.cumsum(lengths) - lengths
        _accumulate_batch(self._m[sl], self._q[sl], lengths, batch, starts)
        self._seg = last
        if carried:
            self._carry = np.concatenate(
                [self._carry[self._carry_off :], batch]
            )
        else:
            self._carry = batch
        self._carry_off = 0

    def read(self, n: int) -> np.ndarray:
        """The next ``min(n, remaining)`` decoded weights, in order."""
        n = min(int(n), self.remaining)
        if n <= 0:
            return np.empty(0, dtype=self._acc_dtype)
        self._decode_through(n)
        out = self._carry[self._carry_off : self._carry_off + n]
        self._carry_off += n
        self._pos += n
        if self._carry_off == self._carry.size:
            self._carry = np.empty(0, dtype=self._acc_dtype)
            self._carry_off = 0
        return out

    def tiles(self, tile_weights: int = DEFAULT_TILE_WEIGHTS):
        """Iterate the remaining stream in tiles of ``tile_weights``."""
        if tile_weights <= 0:
            raise ValueError("tile_weights must be positive")
        while self.remaining:
            yield self.read(tile_weights)


@dataclass
class DecompressionUnit:
    """Timing/energy facade used by the PE model.

    The unit streams segment descriptors from the PE's local memory and
    emits one approximated weight per cycle after a per-segment init
    penalty.  :meth:`cycles` is what the NoC/PE simulator charges for
    decompressing a whole layer tile.
    """

    timing: DecompressorTiming = DecompressorTiming()

    def cycles(self, stream: CompressedStream) -> int:
        """Total cycles to emit every weight of ``stream``."""
        t = self.timing
        return int(
            stream.num_segments * t.init_cycles
            + stream.num_weights * t.run_cycles_per_weight
        )

    def cycles_for(self, num_weights: int, num_segments: int) -> int:
        """Cycle cost from aggregate counts (transaction-level model)."""
        t = self.timing
        return int(num_segments * t.init_cycles + num_weights * t.run_cycles_per_weight)

    def emit(self, stream: CompressedStream) -> np.ndarray:
        """The weights the PE actually computes with (float32 datapath)."""
        return decompress_accumulate(stream, acc_dtype=np.float32)
