"""Cycle-level model of the on-PE decompression unit (Sec. III-C, Fig. 6).

The hardware unit is a two-state FSM driving an accumulator datapath:

* **Init** — latch ``q_i`` into the accumulator and emit ``w~_1 = q_i``;
* **Run** — each cycle add ``m_i`` and emit ``w~_j = w~_{j-1} + m_i``
  until ``|M_i|`` weights have been produced (Eq. (2)).

No multiplier is required; the paper contrasts this with a naive
``m * x + q`` datapath.  We model both so the multiplier-free claim can
be quantified (cycles are identical — one weight per cycle — but the
energy per emitted weight differs; see :mod:`repro.energy.params`).

Numerical faithfulness: the accumulator is ``float32`` (or ``float16``
for the int8 storage format), so the emitted stream differs slightly
from the mathematically evaluated line for long segments.
``decompress_accumulate`` reproduces the accumulator bit pattern exactly
(NumPy's ``cumsum`` is sequential, so a per-segment ``float32`` cumsum
*is* the hardware recurrence).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .compression import CompressedStream

__all__ = ["DecompressorTiming", "DecompressionUnit", "decompress_accumulate"]


@dataclass(frozen=True)
class DecompressorTiming:
    """Cycle costs of the decompression unit.

    ``init_cycles`` covers fetching a segment descriptor and loading the
    accumulator (the FSM *Init* state); ``run_cycles_per_weight`` is the
    steady-state throughput of the *Run* state (1 weight/cycle in the
    paper's design).
    """

    init_cycles: int = 1
    run_cycles_per_weight: int = 1


def decompress_accumulate(
    stream: CompressedStream, acc_dtype=np.float32
) -> np.ndarray:
    """Bit-faithful accumulator decompression of a compressed stream.

    Builds, per segment, the array ``[q, m, m, ...]`` and cumulative-sums
    it in the accumulator dtype, which reproduces the sequential
    recurrence of Eq. (2) exactly.  Python loops only over *segments*
    (not weights); for accuracy studies prefer
    :meth:`CompressedStream.decompress`, which is fully vectorized but
    evaluates the line in float64.
    """
    m, q = stream.storage_coefficients()
    lengths = np.asarray(stream.lengths, dtype=np.int64)
    n = int(lengths.sum())
    out = np.empty(n, dtype=acc_dtype)
    pos = 0
    for mi, qi, li in zip(m.astype(acc_dtype), q.astype(acc_dtype), lengths):
        li = int(li)
        seg = np.empty(li, dtype=acc_dtype)
        seg[0] = qi
        if li > 1:
            seg[1:] = mi
            np.cumsum(seg, dtype=acc_dtype, out=seg)
        out[pos : pos + li] = seg
        pos += li
    return out


@dataclass
class DecompressionUnit:
    """Timing/energy facade used by the PE model.

    The unit streams segment descriptors from the PE's local memory and
    emits one approximated weight per cycle after a per-segment init
    penalty.  :meth:`cycles` is what the NoC/PE simulator charges for
    decompressing a whole layer tile.
    """

    timing: DecompressorTiming = DecompressorTiming()

    def cycles(self, stream: CompressedStream) -> int:
        """Total cycles to emit every weight of ``stream``."""
        t = self.timing
        return int(
            stream.num_segments * t.init_cycles
            + stream.num_weights * t.run_cycles_per_weight
        )

    def cycles_for(self, num_weights: int, num_segments: int) -> int:
        """Cycle cost from aggregate counts (transaction-level model)."""
        t = self.timing
        return int(num_segments * t.init_cycles + num_weights * t.run_cycles_per_weight)

    def emit(self, stream: CompressedStream) -> np.ndarray:
        """The weights the PE actually computes with (float32 datapath)."""
        return decompress_accumulate(stream, acc_dtype=np.float32)
