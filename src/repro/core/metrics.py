"""Compression metrics reported in the paper's Tab. II / Tab. III.

Four figures are attached to every (model, layer, delta) experiment:

* ``CR`` — compression ratio of the compressed layer alone;
* ``Weighted CR`` — the paper's whole-model figure.  Reverse-engineering
  Tab. II shows it is the *parameter-weighted mean* of per-layer CRs
  (uncompressed layers counting as CR = 1):  e.g. AlexNet delta=20%:
  0.70 x 11.44 + 0.30 = 8.3 (the paper prints 8.28), LeNet-5 delta=20%:
  0.78 x 4.02 + 0.22 = 3.4 (paper: 3.36).  Note this is *not* the
  footprint ratio — a 70%-of-parameters layer caps the true footprint
  ratio at 1/0.3 = 3.3, below the printed 8.28;
  :func:`footprint_ratio` computes the true ratio for accounting that
  needs it (Tab. III stacking, the multi-layer optimizer).
* ``Mem fp reduction`` — reduction of the whole-model parameter
  footprint, ``frac x (1 - 1/CR)``; matches the paper's column for
  every model except its LeNet-5 row (which follows ``1 - 1/wCR``
  instead — the paper's own table mixes conventions; see
  EXPERIMENTS.md).
* ``MSE`` — mean squared error between original and approximated
  parameters of the compressed layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .compression import CompressedStream

__all__ = [
    "CompressionReport",
    "layer_report",
    "weighted_ratio",
    "footprint_ratio",
    "param_weighted_cr",
]


@dataclass(frozen=True)
class CompressionReport:
    """One row of the paper's Tab. II."""

    delta_pct: float
    cr: float
    weighted_cr: float
    mem_fp_reduction: float  # fraction in [0, 1); the paper prints a %
    mse: float

    def as_row(self) -> str:
        return (
            f"{self.delta_pct:>4.0f}%  CR={self.cr:6.2f}  "
            f"wCR={self.weighted_cr:5.2f}  "
            f"mem-fp={100 * self.mem_fp_reduction:4.0f}%  "
            f"MSE={self.mse:.2e}"
        )


def footprint_ratio(
    total_params: int,
    compressed_layer_params: int,
    layer_cr: float,
    weight_bytes: int = 4,
) -> float:
    """True whole-model footprint ratio when one layer is compressed.

    ``total_params * weight_bytes`` over the footprint where the selected
    layer's bytes shrink by ``layer_cr`` and the rest are unchanged.
    Amdahl-bounded by ``1 / (1 - fraction)``.
    """
    if total_params <= 0:
        raise ValueError("total_params must be positive")
    if not 0 <= compressed_layer_params <= total_params:
        raise ValueError("compressed_layer_params out of range")
    if layer_cr <= 0:
        raise ValueError("layer_cr must be positive")
    original = total_params * weight_bytes
    compressed = (
        (total_params - compressed_layer_params) * weight_bytes
        + compressed_layer_params * weight_bytes / layer_cr
    )
    return original / compressed


#: backwards-compatible alias (the original name of footprint_ratio)
weighted_ratio = footprint_ratio


def param_weighted_cr(
    total_params: int, compressed_layer_params: int, layer_cr: float
) -> float:
    """The paper's Tab. II "Weighted CR": param-weighted mean of CRs."""
    if total_params <= 0:
        raise ValueError("total_params must be positive")
    if not 0 <= compressed_layer_params <= total_params:
        raise ValueError("compressed_layer_params out of range")
    frac = compressed_layer_params / total_params
    return frac * layer_cr + (1.0 - frac)


def layer_report(
    stream: CompressedStream,
    original_layer: np.ndarray,
    total_params: int,
    delta_pct: float,
) -> CompressionReport:
    """Assemble the Tab. II row for one compressed layer."""
    cr = stream.compression_ratio
    fp_ratio = footprint_ratio(
        total_params,
        stream.num_weights,
        cr,
        weight_bytes=stream.fmt.weight_bytes,
    )
    return CompressionReport(
        delta_pct=delta_pct,
        cr=cr,
        weighted_cr=param_weighted_cr(total_params, stream.num_weights, cr),
        mem_fp_reduction=1.0 - 1.0 / fp_ratio,
        mse=stream.mse(original_layer),
    )
