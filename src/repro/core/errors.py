"""Exception types shared across the compression stack.

Kept in a leaf module so both the low-level wire format
(:mod:`repro.core.codec`) and the pluggable codec framework
(:mod:`repro.core.codecs`) can raise the same error without importing
each other.

The taxonomy mirrors the fault model of :mod:`repro.resilience`:

``CodecError``
    Any invalid compressed payload or codec configuration.
``IntegrityError``
    A payload that is *structurally* parseable but whose content fails
    an integrity check: CRC mismatch, non-finite coefficients, segment
    lengths that contradict the declared weight count.  This is the
    error a corrupted-in-transit blob raises.
``FaultError``
    An injected or detected runtime fault outside the byte format
    itself — crashed/hung pool workers, dropped NoC packets.
"""

from __future__ import annotations

__all__ = ["CodecError", "IntegrityError", "FaultError"]


class CodecError(ValueError):
    """A compressed payload (or codec configuration) is invalid.

    Raised on truncated buffers, bad magic, unknown versions or flags,
    and unknown/ill-configured codec names.  Subclasses ``ValueError``
    so pre-existing ``except ValueError`` call sites keep working.
    """


class IntegrityError(CodecError):
    """A payload parsed fine but its content is provably damaged.

    Carries ``segments``: the indices of the damaged ⟨m, q, len⟩
    segments when the framing localizes the damage (empty when the
    damage cannot be attributed, e.g. a header CRC mismatch).
    """

    def __init__(self, message: str, segments: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.segments = tuple(int(s) for s in segments)


class FaultError(CodecError):
    """A runtime fault (injected or real) outside the byte format."""
