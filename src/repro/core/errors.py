"""Exception types shared across the compression stack.

Kept in a leaf module so both the low-level wire format
(:mod:`repro.core.codec`) and the pluggable codec framework
(:mod:`repro.core.codecs`) can raise the same error without importing
each other.
"""

from __future__ import annotations

__all__ = ["CodecError"]


class CodecError(ValueError):
    """A compressed payload (or codec configuration) is invalid.

    Raised on truncated buffers, bad magic, unknown versions or flags,
    and unknown/ill-configured codec names.  Subclasses ``ValueError``
    so pre-existing ``except ValueError`` call sites keep working.
    """
