"""Multi-layer compression with per-layer tolerance selection.

The paper compresses a single layer and leaves as future work "a
technique aimed at selecting the set of layers to be compressed and,
for each of them, the appropriate compression level to be used
according to the most profitable energy/latency/accuracy trade-off"
(Sec. V).  This module implements that technique for proxy models:

1. **Candidate generation** — for every parametric layer and every
   delta in a grid, compress the layer alone and measure (a) the
   footprint saving on the *full-scale* architecture and (b) the
   accuracy drop on the proxy's test set.
2. **Greedy assembly** — add (layer, delta) assignments in order of
   saving per unit accuracy-drop, re-measuring the *joint* accuracy
   after each addition (per-layer drops do not compose additively;
   the greedy re-check keeps the result feasible), until the accuracy
   budget is exhausted or no candidate helps.

The output maps layer names to delta values, directly consumable by
``Accelerator.run_model`` via per-layer ``CompressionEffect``s.  The
compressor is pluggable: any :mod:`repro.core.codecs` spec works, with
the paper's ``"linefit"`` as the default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.arch import ArchSpec
from ..nn.graph import Model
from ..nn.train import evaluate
from ..runtime import (
    GridTask,
    ResultCache,
    Timings,
    codec_spec,
    fingerprint_arrays,
    result_key,
    run_tasks,
)
from .codecs import Codec, get_codec
from .pipeline import apply_compression

__all__ = ["Candidate", "MultiLayerPlan", "optimize_multilayer"]


@dataclass(frozen=True)
class Candidate:
    layer: str
    delta_pct: float
    #: bytes saved on the full-scale model
    saving_bytes: int
    #: accuracy drop measured with this candidate applied alone
    solo_drop: float


@dataclass
class MultiLayerPlan:
    """Result of the optimizer."""

    assignments: dict[str, float]  # layer -> delta_pct
    accuracy: float
    baseline_accuracy: float
    saving_bytes: int
    total_bytes: int

    @property
    def footprint_reduction(self) -> float:
        return self.saving_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def accuracy_drop(self) -> float:
        return self.baseline_accuracy - self.accuracy


def _acc(model: Model, x, y, top_k: int) -> float:
    res = evaluate(model, x, y)
    return res.top1 if top_k == 1 else res.top5


def _solo_accuracy(
    model: Model,
    x_test: np.ndarray,
    y_test: np.ndarray,
    top_k: int,
    layer: str,
    delta_pct: float,
    codec: str | Codec,
) -> float:
    """Accuracy with one (layer, delta) applied alone; restores the model.

    Module-level so candidate generation can fan out over a process
    pool; in-worker the model is a pickled private copy, serially the
    ``finally`` puts the caller's weights back.
    """
    _, original = apply_compression(model, layer, float(delta_pct), codec=codec)
    try:
        return _acc(model, x_test, y_test, top_k)
    finally:
        model.set_weights(layer, original)


def _layer_savings(
    spec: ArchSpec, layer: str, deltas: tuple[float, ...], codec: str | Codec, seed: int
) -> list[int]:
    """Full-scale footprint savings of one layer across a delta grid.

    Grouped per layer so the expensive ``materialize`` runs once per
    task, whatever the grid size (the role the old in-process memoizer
    played, now compatible with pool fan-out).
    """
    weights = spec.materialize(layer, seed=seed).ravel()
    savings = []
    for delta_pct in deltas:
        codec_obj = (
            codec
            if isinstance(codec, Codec)
            else get_codec(codec, delta_pct=float(delta_pct))
        )
        blob = codec_obj.encode(weights)
        savings.append(max(0, blob.original_bytes - blob.compressed_bytes))
    return savings


def optimize_multilayer(
    model: Model,
    spec: ArchSpec,
    x_test: np.ndarray,
    y_test: np.ndarray,
    max_accuracy_drop: float,
    delta_grid=(5.0, 10.0, 15.0, 20.0),
    top_k: int = 1,
    min_depth_fraction: float = 0.4,
    seed: int = 0,
    codec: str | Codec = "linefit",
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timings: Timings | None = None,
) -> MultiLayerPlan:
    """Greedy multi-layer delta assignment under an accuracy budget.

    ``model`` is the trained proxy (accuracy oracle); ``spec`` is the
    full-scale architecture (footprint accounting).  Only layers present
    in *both* and deep enough (per ``min_depth_fraction``, following the
    sensitivity analysis) are considered.  ``codec`` selects the
    compressor from the :mod:`repro.core.codecs` registry.

    Candidate generation — the ``(layer x delta)`` solo-accuracy grid
    and the per-layer full-scale savings — fans out over the
    :mod:`repro.runtime` pool and result cache; the greedy assembly
    stays serial (each step depends on the previous acceptance).
    """
    if max_accuracy_drop < 0:
        raise ValueError("max_accuracy_drop must be non-negative")
    baseline = _acc(model, x_test, y_test, top_k)

    full_layers = {l.name: l for l in spec.parametric_layers()}
    max_depth = max(l.depth for l in full_layers.values())
    depth_cut = min_depth_fraction * max_depth
    eligible = [
        name
        for name, layer in model.parametric_layers()
        if name in full_layers and full_layers[name].depth >= depth_cut
    ]
    if not eligible:
        raise ValueError("no eligible layers shared between proxy and spec")

    # 1a. solo accuracy of every (layer, delta) grid point
    grid = [(name, float(delta)) for name in eligible for delta in delta_grid]
    acc_base: dict | None = None
    if cache is not None:
        state = model.state_dict()
        acc_base = {
            "model_state": fingerprint_arrays(*(state[k] for k in sorted(state))),
            "eval_set": fingerprint_arrays(x_test, y_test),
            "codec": codec_spec(codec),
            "top_k": int(top_k),
        }
    acc_tasks = [
        GridTask(
            fn=_solo_accuracy,
            args=(model, x_test, y_test, top_k, name, delta, codec),
            key=result_key("solo-acc", layer=name, delta_pct=delta, **acc_base)
            if acc_base is not None
            else None,
        )
        for name, delta in grid
    ]
    solo_acc = dict(
        zip(grid, run_tasks(acc_tasks, jobs=jobs, cache=cache, timings=timings))
    )
    drops = {point: baseline - acc for point, acc in solo_acc.items()}

    # 1b. full-scale savings, only for the feasible grid points, grouped
    # per layer so each task materializes its layer once
    feasible: dict[str, list[float]] = {}
    for name, delta in grid:
        if drops[(name, delta)] <= max_accuracy_drop:
            feasible.setdefault(name, []).append(delta)
    saving_tasks = [
        GridTask(
            fn=_layer_savings,
            args=(spec, name, tuple(deltas), codec, seed),
            # savings are generator-addressed: ``materialize`` is
            # deterministic in (spec, layer, seed), so those stand in
            # for the full-scale stream bytes
            key=result_key(
                "fullscale-savings",
                spec=spec.name,
                total_params=spec.total_params,
                layer=name,
                deltas=tuple(deltas),
                codec=codec_spec(codec),
                seed=int(seed),
            )
            if cache is not None
            else None,
        )
        for name, deltas in feasible.items()
    ]
    layer_savings = run_tasks(saving_tasks, jobs=jobs, cache=cache, timings=timings)
    saving_lookup: dict[tuple[str, float], int] = {}
    for (name, deltas), savings in zip(feasible.items(), layer_savings):
        for delta, saving in zip(deltas, savings):
            saving_lookup[(name, delta)] = int(saving)

    candidates = [
        Candidate(
            layer=name,
            delta_pct=delta,
            saving_bytes=saving_lookup[(name, delta)],
            solo_drop=drops[(name, delta)],
        )
        for name, delta in grid
        if (name, delta) in saving_lookup
    ]
    # best (highest saving) candidate per layer first, ranked by
    # saving per unit of (clamped) solo drop
    candidates.sort(
        key=lambda c: c.saving_bytes / (max(c.solo_drop, 0.0) + 1e-3),
        reverse=True,
    )

    def _apply(layer: str, delta_pct: float) -> None:
        codec_obj = (
            codec
            if isinstance(codec, Codec)
            else get_codec(codec, delta_pct=delta_pct)
        )
        blob = codec_obj.encode(originals[layer].ravel())
        model.set_weights(
            layer, codec_obj.decode(blob).reshape(originals[layer].shape)
        )

    # 2. greedy assembly with joint re-measurement
    assignments: dict[str, float] = {}
    originals: dict[str, np.ndarray] = {}
    current_acc = baseline
    try:
        for cand in candidates:
            if cand.layer in assignments and assignments[cand.layer] >= cand.delta_pct:
                continue
            # tentatively apply (possibly replacing a milder delta)
            if cand.layer in assignments:
                model.set_weights(cand.layer, originals[cand.layer])
            else:
                originals[cand.layer] = model.get_weights(cand.layer).copy()
            _apply(cand.layer, cand.delta_pct)
            acc = _acc(model, x_test, y_test, top_k)
            if baseline - acc <= max_accuracy_drop:
                assignments[cand.layer] = cand.delta_pct
                current_acc = acc
            else:  # revert
                if cand.layer in assignments:
                    _apply(cand.layer, assignments[cand.layer])
                else:
                    model.set_weights(cand.layer, originals.pop(cand.layer))
    finally:
        for name, w in originals.items():
            model.set_weights(name, w)

    saving = sum(
        saving_lookup[(name, delta)] for name, delta in assignments.items()
    )
    return MultiLayerPlan(
        assignments=assignments,
        accuracy=current_acc,
        baseline_accuracy=baseline,
        saving_bytes=saving,
        total_bytes=spec.total_params * 4,
    )
