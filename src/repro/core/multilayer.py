"""Multi-layer compression with per-layer tolerance selection.

The paper compresses a single layer and leaves as future work "a
technique aimed at selecting the set of layers to be compressed and,
for each of them, the appropriate compression level to be used
according to the most profitable energy/latency/accuracy trade-off"
(Sec. V).  This module implements that technique for proxy models:

1. **Candidate generation** — for every parametric layer and every
   delta in a grid, compress the layer alone and measure (a) the
   footprint saving on the *full-scale* architecture and (b) the
   accuracy drop on the proxy's test set.
2. **Greedy assembly** — add (layer, delta) assignments in order of
   saving per unit accuracy-drop, re-measuring the *joint* accuracy
   after each addition (per-layer drops do not compose additively;
   the greedy re-check keeps the result feasible), until the accuracy
   budget is exhausted or no candidate helps.

The output maps layer names to delta values, directly consumable by
``Accelerator.run_model`` via per-layer ``CompressionEffect``s.  The
compressor is pluggable: any :mod:`repro.core.codecs` spec works, with
the paper's ``"linefit"`` as the default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.arch import ArchSpec
from ..nn.graph import Model
from ..nn.train import evaluate
from .codecs import Codec, get_codec
from .pipeline import apply_compression

__all__ = ["Candidate", "MultiLayerPlan", "optimize_multilayer"]


@dataclass(frozen=True)
class Candidate:
    layer: str
    delta_pct: float
    #: bytes saved on the full-scale model
    saving_bytes: int
    #: accuracy drop measured with this candidate applied alone
    solo_drop: float


@dataclass
class MultiLayerPlan:
    """Result of the optimizer."""

    assignments: dict[str, float]  # layer -> delta_pct
    accuracy: float
    baseline_accuracy: float
    saving_bytes: int
    total_bytes: int

    @property
    def footprint_reduction(self) -> float:
        return self.saving_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def accuracy_drop(self) -> float:
        return self.baseline_accuracy - self.accuracy


def _acc(model: Model, x, y, top_k: int) -> float:
    res = evaluate(model, x, y)
    return res.top1 if top_k == 1 else res.top5


class _FullScaleSaver:
    """Memoized full-scale footprint savings.

    The optimizer needs the saving of every candidate once while ranking
    and again in the final summation loop; materializing and compressing
    a full-scale layer is the dominant cost, so a ``(layer, delta)``
    cache (plus a per-layer weights cache across deltas) roughly halves
    optimizer wall-time.
    """

    def __init__(self, spec: ArchSpec, codec: str | Codec, seed: int) -> None:
        self._spec = spec
        self._codec = codec
        self._seed = seed
        self._weights: dict[str, np.ndarray] = {}
        self._savings: dict[tuple[str, float], int] = {}

    def _layer_weights(self, layer: str) -> np.ndarray:
        if layer not in self._weights:
            self._weights[layer] = self._spec.materialize(
                layer, seed=self._seed
            ).ravel()
        return self._weights[layer]

    def __call__(self, layer: str, delta_pct: float) -> int:
        key = (layer, float(delta_pct))
        if key not in self._savings:
            codec = (
                self._codec
                if isinstance(self._codec, Codec)
                else get_codec(self._codec, delta_pct=float(delta_pct))
            )
            blob = codec.encode(self._layer_weights(layer))
            self._savings[key] = max(0, blob.original_bytes - blob.compressed_bytes)
        return self._savings[key]


def optimize_multilayer(
    model: Model,
    spec: ArchSpec,
    x_test: np.ndarray,
    y_test: np.ndarray,
    max_accuracy_drop: float,
    delta_grid=(5.0, 10.0, 15.0, 20.0),
    top_k: int = 1,
    min_depth_fraction: float = 0.4,
    seed: int = 0,
    codec: str | Codec = "linefit",
) -> MultiLayerPlan:
    """Greedy multi-layer delta assignment under an accuracy budget.

    ``model`` is the trained proxy (accuracy oracle); ``spec`` is the
    full-scale architecture (footprint accounting).  Only layers present
    in *both* and deep enough (per ``min_depth_fraction``, following the
    sensitivity analysis) are considered.  ``codec`` selects the
    compressor from the :mod:`repro.core.codecs` registry.
    """
    if max_accuracy_drop < 0:
        raise ValueError("max_accuracy_drop must be non-negative")
    baseline = _acc(model, x_test, y_test, top_k)
    saving_of = _FullScaleSaver(spec, codec, seed)

    full_layers = {l.name: l for l in spec.parametric_layers()}
    max_depth = max(l.depth for l in full_layers.values())
    depth_cut = min_depth_fraction * max_depth
    eligible = [
        name
        for name, layer in model.parametric_layers()
        if name in full_layers and full_layers[name].depth >= depth_cut
    ]
    if not eligible:
        raise ValueError("no eligible layers shared between proxy and spec")

    # 1. candidates: solo accuracy drop + full-scale saving
    candidates: list[Candidate] = []
    for name in eligible:
        for delta in delta_grid:
            _, original = apply_compression(model, name, float(delta), codec=codec)
            drop = baseline - _acc(model, x_test, y_test, top_k)
            model.set_weights(name, original)
            if drop > max_accuracy_drop:
                continue  # infeasible even alone
            candidates.append(
                Candidate(
                    layer=name,
                    delta_pct=float(delta),
                    saving_bytes=saving_of(name, float(delta)),
                    solo_drop=drop,
                )
            )
    # best (highest saving) candidate per layer first, ranked by
    # saving per unit of (clamped) solo drop
    candidates.sort(
        key=lambda c: c.saving_bytes / (max(c.solo_drop, 0.0) + 1e-3),
        reverse=True,
    )

    def _apply(layer: str, delta_pct: float) -> None:
        codec_obj = (
            codec
            if isinstance(codec, Codec)
            else get_codec(codec, delta_pct=delta_pct)
        )
        blob = codec_obj.encode(originals[layer].ravel())
        model.set_weights(
            layer, codec_obj.decode(blob).reshape(originals[layer].shape)
        )

    # 2. greedy assembly with joint re-measurement
    assignments: dict[str, float] = {}
    originals: dict[str, np.ndarray] = {}
    current_acc = baseline
    try:
        for cand in candidates:
            if cand.layer in assignments and assignments[cand.layer] >= cand.delta_pct:
                continue
            # tentatively apply (possibly replacing a milder delta)
            if cand.layer in assignments:
                model.set_weights(cand.layer, originals[cand.layer])
            else:
                originals[cand.layer] = model.get_weights(cand.layer).copy()
            _apply(cand.layer, cand.delta_pct)
            acc = _acc(model, x_test, y_test, top_k)
            if baseline - acc <= max_accuracy_drop:
                assignments[cand.layer] = cand.delta_pct
                current_acc = acc
            else:  # revert
                if cand.layer in assignments:
                    _apply(cand.layer, assignments[cand.layer])
                else:
                    model.set_weights(cand.layer, originals.pop(cand.layer))
    finally:
        for name, w in originals.items():
            model.set_weights(name, w)

    saving = sum(
        saving_of(name, delta) for name, delta in assignments.items()
    )
    return MultiLayerPlan(
        assignments=assignments,
        accuracy=current_acc,
        baseline_accuracy=baseline,
        saving_bytes=saving,
        total_bytes=spec.total_params * 4,
    )
