"""Magnitude pruning, as a stacking substrate.

The paper's contribution list (Sec. I) claims the compression "can be
applied on top of model compression approaches, including parameter
pruning and sharing".  This module provides the standard magnitude
pruning so that claim is testable: pruning zeroes the smallest weights,
and the zero runs it creates are *ideal* input for the weak-monotonic
compressor (a zero run is a perfect segment), so the two techniques
compose super-additively on the weight stream.

Footprint accounting for the pruned-only baseline uses the common
bitmap format: one mask bit per weight plus the packed non-zero values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PrunedTensor", "prune_magnitude", "pruned_footprint_bytes"]


@dataclass(frozen=True)
class PrunedTensor:
    values: np.ndarray  # original shape, zeros at pruned positions
    mask: np.ndarray  # bool, True = kept
    sparsity: float  # fraction pruned

    @property
    def num_params(self) -> int:
        return int(self.values.size)

    @property
    def num_kept(self) -> int:
        return int(self.mask.sum())


def prune_magnitude(weights: np.ndarray, sparsity: float) -> PrunedTensor:
    """Zero the ``sparsity`` fraction of smallest-magnitude weights."""
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    w = np.asarray(weights, dtype=np.float32)
    if sparsity == 0.0 or w.size == 0:
        return PrunedTensor(values=w.copy(), mask=np.ones(w.shape, bool), sparsity=0.0)
    k = int(round(sparsity * w.size))
    k = min(k, w.size - 1)
    flat = np.abs(w).ravel()
    threshold = np.partition(flat, k)[k]
    mask = np.abs(w) >= threshold
    # tie handling can under-prune; drop ties until the count is right
    excess = int(mask.sum()) - (w.size - k)
    if excess > 0:
        tie_idx = np.flatnonzero((np.abs(w).ravel() == threshold) & mask.ravel())
        mask.ravel()[tie_idx[:excess]] = False
    pruned = np.where(mask, w, np.float32(0.0))
    return PrunedTensor(values=pruned, mask=mask, sparsity=k / w.size)


def pruned_footprint_bytes(tensor: PrunedTensor, value_bytes: int = 4) -> int:
    """Bitmap + packed non-zeros: the standard sparse storage cost."""
    bitmap = -(-tensor.num_params // 8)
    return bitmap + tensor.num_kept * value_bytes
