"""Lossy compression of CNN parameters (Sec. III-B of the paper).

The public entry points are :func:`compress` (one stream), and the
:class:`CompressedStream` container it returns, which knows how to
decompress itself, measure its footprint and report the metrics used
throughout the paper's evaluation (compression ratio, memory footprint
reduction, MSE).

A *stream* here is the natural C-order serialization of one layer's
weight tensor.  Compressing a whole model layer-by-layer is handled by
:class:`repro.core.pipeline.CompressionPipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .linefit import evaluate_lines, fit_segments
from .segmentation import (
    delta_from_percent,
    segment_boundaries,
    segment_greedy_reference,
)

__all__ = [
    "StorageFormat",
    "CompressedStream",
    "SEGMENTERS",
    "compress",
    "compress_percent",
    "quantize_coefficient",
]


def quantize_coefficient(values: np.ndarray, nbytes: int) -> np.ndarray:
    """Round line coefficients to the precision a format stores.

    * 4 bytes — plain ``float32`` rounding;
    * 3 bytes — ``float32`` with the low mantissa byte truncated
      (relative error <= 2**-16);
    * 2 bytes — ``float16``.

    Always returns ``float64`` for downstream arithmetic.
    """
    v = np.asarray(values, dtype=np.float64)
    if nbytes >= 4:
        return v.astype(np.float32).astype(np.float64)
    if nbytes == 3:
        bits = v.astype(np.float32).view(np.uint32) & np.uint32(0xFFFFFF00)
        return bits.view(np.float32).astype(np.float64)
    if nbytes == 2:
        return v.astype(np.float16).astype(np.float64)
    raise ValueError(f"unsupported coefficient width: {nbytes} bytes")


@dataclass(frozen=True)
class StorageFormat:
    """Byte costs of the compressed representation.

    The paper stores, per monotonic sub-succession, three parameters: the
    two line coefficients and the segment length.  The default format
    models 24-bit truncated-``float32`` coefficients (low mantissa byte
    dropped — a common hardware packing) plus a ``uint16`` length, i.e.
    **8 bytes per segment** against 4-byte uncompressed weights.  On
    high-entropy weight streams greedy strict-monotonic segments average
    ~2.42 elements, so this format calibrates the delta = 0 compression
    ratio to 4 * 2.42 / 8 = 1.21 — exactly the value the paper reports
    for *all six* network models in Tab. II.

    For streams that are already quantized to int8 (Tab. III) use
    :meth:`int8`, which stores coefficients as ``float16``.
    """

    weight_bytes: int = 4
    slope_bytes: int = 3
    intercept_bytes: int = 3
    length_bytes: int = 2

    @property
    def segment_bytes(self) -> int:
        return self.slope_bytes + self.intercept_bytes + self.length_bytes

    @property
    def max_segment_length(self) -> int:
        """Longest representable segment (length field saturates here)."""
        return (1 << (8 * self.length_bytes)) - 1

    @classmethod
    def float32(cls) -> "StorageFormat":
        return cls()

    @classmethod
    def int8(cls) -> "StorageFormat":
        return cls(weight_bytes=1, slope_bytes=2, intercept_bytes=2, length_bytes=2)


def _split_long_segments(boundaries: np.ndarray, max_len: int) -> np.ndarray:
    """Split segments longer than the length field can encode.

    Long segments are rare (they appear only at large delta), so a thin
    Python loop over the offenders is fine; the common path is a no-op.
    """
    lengths = np.diff(boundaries)
    too_long = np.flatnonzero(lengths > max_len)
    if too_long.size == 0:
        return boundaries
    pieces = [boundaries]
    for i in too_long:
        start, stop = int(boundaries[i]), int(boundaries[i + 1])
        pieces.append(np.arange(start + max_len, stop, max_len, dtype=np.int64))
    return np.unique(np.concatenate(pieces))


@dataclass
class CompressedStream:
    """Result of compressing one weight stream.

    Attributes
    ----------
    m, q:
        Per-segment line coefficients (``float64``; quantized to the
        storage precision when measuring error or serializing).
    lengths:
        Per-segment element counts; ``lengths.sum()`` equals the
        original stream length.
    delta:
        Absolute tolerance used for segmentation.
    fmt:
        Byte-cost model of the representation.
    """

    m: np.ndarray
    q: np.ndarray
    lengths: np.ndarray
    delta: float
    fmt: StorageFormat = field(default_factory=StorageFormat)

    def __post_init__(self) -> None:
        if not (self.m.shape == self.q.shape == self.lengths.shape):
            raise ValueError("m, q and lengths must have identical shapes")
        if self.lengths.size and int(self.lengths.min()) <= 0:
            raise ValueError("segment lengths must be positive")

    # -- sizes -----------------------------------------------------------
    @property
    def num_segments(self) -> int:
        return int(self.lengths.size)

    @property
    def num_weights(self) -> int:
        return int(self.lengths.sum()) if self.lengths.size else 0

    @property
    def original_bytes(self) -> int:
        return self.num_weights * self.fmt.weight_bytes

    @property
    def compressed_bytes(self) -> int:
        return self.num_segments * self.fmt.segment_bytes

    @property
    def compression_ratio(self) -> float:
        """CR = uncompressed bytes / compressed bytes (paper Tab. II)."""
        if self.compressed_bytes == 0:
            return float("inf") if self.original_bytes else 1.0
        return self.original_bytes / self.compressed_bytes

    # -- reconstruction --------------------------------------------------
    def storage_coefficients(self) -> tuple[np.ndarray, np.ndarray]:
        """Coefficients rounded to the precision actually stored."""
        return (
            quantize_coefficient(self.m, self.fmt.slope_bytes),
            quantize_coefficient(self.q, self.fmt.intercept_bytes),
        )

    def decompress(self, dtype=np.float32, storage_precision: bool = True) -> np.ndarray:
        """Reconstruct the approximated stream ``w~``.

        With ``storage_precision=True`` (default) the line coefficients
        are first rounded to the bytes the format actually stores, which
        is what the hardware decompression unit would consume.
        """
        if storage_precision:
            m, q = self.storage_coefficients()
        else:
            m, q = self.m, self.q
        return evaluate_lines(m, q, self.lengths, dtype=dtype)

    def mse(self, original: np.ndarray) -> float:
        """Mean squared error vs. the original stream (paper Tab. II)."""
        w = np.asarray(original, dtype=np.float64).ravel()
        if w.size != self.num_weights:
            raise ValueError(
                f"original has {w.size} weights, stream encodes {self.num_weights}"
            )
        approx = self.decompress(dtype=np.float64)
        diff = approx - w
        return float(np.mean(diff * diff)) if w.size else 0.0


#: partitioning-rule implementations selectable by ``compress(segmenter=)``
#: — an ``identical``-class ablation point: the vectorized partition must
#: be boundary-identical to the sequential greedy reference
SEGMENTERS = {
    "vectorized": segment_boundaries,
    "reference": segment_greedy_reference,
}


def compress(
    weights: np.ndarray,
    delta: float,
    fmt: StorageFormat | None = None,
    segmenter: str = "vectorized",
) -> CompressedStream:
    """Compress a weight stream with absolute tolerance ``delta``.

    Implements the full Sec. III-B flow: weak-monotonic greedy
    segmentation, per-segment least-squares line fit, and the
    three-field-per-segment storage model.  ``segmenter`` selects the
    partitioning-rule implementation (see :data:`SEGMENTERS`).
    """
    fmt = fmt or StorageFormat()
    try:
        segment = SEGMENTERS[segmenter]
    except KeyError:
        raise ValueError(
            f"unknown segmenter {segmenter!r}; use {sorted(SEGMENTERS)}"
        ) from None
    w = np.asarray(weights).ravel()
    if w.size and not np.isfinite(w).all():
        raise ValueError("weight stream contains non-finite values")
    boundaries = segment(w, delta)
    boundaries = _split_long_segments(boundaries, fmt.max_segment_length)
    m, q = fit_segments(w, boundaries)
    lengths = np.diff(boundaries)
    return CompressedStream(m=m, q=q, lengths=lengths, delta=float(delta), fmt=fmt)


def compress_percent(
    weights: np.ndarray,
    delta_pct: float,
    fmt: StorageFormat | None = None,
) -> CompressedStream:
    """Compress with the paper's percentage tolerance convention."""
    w = np.asarray(weights).ravel()
    return compress(w, delta_from_percent(w, delta_pct), fmt=fmt)
