"""Per-segment least-squares line fitting.

For every monotonic sub-succession ``M_i = {w_f, ..., w_l}`` the paper
stores the coefficients ``(m_i, q_i)`` of the line minimizing the mean
squared error over the points ``(j, w_{f+j})``, ``j = 0 .. |M_i| - 1``.

With local abscissae ``x = 0 .. L-1`` the normal equations have the
closed form::

    m = (L * Sxy - Sx * Sy) / (L * Sxx - Sx**2)
    q = (Sy - m * Sx) / L

where ``Sx = L(L-1)/2`` and ``Sxx = (L-1)L(2L-1)/6`` depend only on the
segment length, and ``Sy``, ``Sxy`` are computed for *all* segments at
once with ``np.add.reduceat`` over the stream (``Sxy`` uses the identity
``sum_j j * w_{f+j} = sum_k k * w_k - f * Sy`` on global indices ``k``).
No Python-level loop over segments is required.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fit_segments", "evaluate_lines"]


def fit_segments(
    weights: np.ndarray, boundaries: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Least-squares line per segment.

    Parameters
    ----------
    weights:
        The 1-D stream being compressed.
    boundaries:
        Segment boundary array from
        :func:`repro.core.segmentation.segment_boundaries`.

    Returns
    -------
    (m, q):
        ``float64`` arrays, one slope and intercept per segment.
        Length-1 segments get ``m = 0`` and ``q = w``.
    """
    w = np.asarray(weights, dtype=np.float64).ravel()
    b = np.asarray(boundaries, dtype=np.int64)
    num_segments = b.size - 1
    if num_segments <= 0 or w.size == 0:
        return np.zeros(0), np.zeros(0)
    starts = b[:-1]
    lengths = np.diff(b).astype(np.float64)

    # reduceat with a trailing start index == len(w) would error; starts
    # from segment_boundaries never include n because the last boundary
    # is exclusive and dropped by b[:-1].
    sy = np.add.reduceat(w, starts)
    k = np.arange(w.size, dtype=np.float64)
    sky = np.add.reduceat(k * w, starts)
    sxy = sky - starts * sy

    sx = lengths * (lengths - 1.0) / 2.0
    sxx = (lengths - 1.0) * lengths * (2.0 * lengths - 1.0) / 6.0

    denom = lengths * sxx - sx * sx
    m = np.zeros(num_segments)
    multi = denom > 0  # false exactly for length-1 segments
    m[multi] = (lengths[multi] * sxy[multi] - sx[multi] * sy[multi]) / denom[multi]
    q = (sy - m * sx) / lengths
    return m, q


def evaluate_lines(
    m: np.ndarray,
    q: np.ndarray,
    lengths: np.ndarray,
    dtype=np.float64,
) -> np.ndarray:
    """Evaluate ``m_i * x + q_i`` for ``x = 0 .. L_i - 1``, concatenated.

    This is the *mathematical* decompression (used for accuracy studies
    and MSE metrics); the hardware-faithful accumulator datapath lives in
    :mod:`repro.core.decompressor`.
    """
    m = np.asarray(m, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if m.shape != q.shape or m.shape != lengths.shape:
        raise ValueError("m, q and lengths must have identical shapes")
    n = int(lengths.sum())
    if n == 0:
        return np.zeros(0, dtype=dtype)
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    # Local abscissa for every output element: global index minus the
    # start of its segment, built without a Python loop.
    seg_of = np.repeat(np.arange(lengths.size), lengths)
    x = np.arange(n, dtype=np.float64) - starts[seg_of]
    out = m[seg_of] * x + q[seg_of]
    return out.astype(dtype, copy=False)
