"""Chaining codec stages: transforms feeding a terminal codec.

``ComposedCodec([quantize, linefit])`` encodes by running each
non-terminal stage's :meth:`~repro.core.codecs.base.Codec.transform`
left to right and handing the re-represented stream to the terminal
stage; decoding runs the terminal decode then the stages'
``untransform`` right to left.  Transform side-info (e.g. quantization
scale/zero-point) rides in the blob's ``meta`` so a chain round-trips
through a :class:`~repro.core.model_store.ModelArchive` like any other
codec.

CR accounting follows the terminal stage's convention — for
``quantize-int8|linefit`` that is segments-vs-int8-bytes, exactly the
Tab. III stacked-CR math (the quantization rung's own 4x is accounted
separately, as the paper does).
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError
from .base import Codec, CompressedBlob

__all__ = ["ComposedCodec"]


class ComposedCodec(Codec):
    """A ``stage | ... | terminal`` chain behind the ``Codec`` interface.

    Built by ``get_codec("a|b|c", **terminal_params)``; non-terminal
    stages are transform-capable codecs constructed with their defaults,
    the terminal stage takes the chain's parameters.
    """

    def __init__(self, stages: list[Codec]) -> None:
        if not stages:
            raise CodecError("a codec chain needs at least one stage")
        self.stages = list(stages)
        self.name = "|".join(s.name for s in self.stages)
        self.lossless = all(s.lossless for s in self.stages)

    @property
    def terminal(self) -> Codec:
        return self.stages[-1]

    def params(self) -> dict:
        return self.terminal.params()

    def encode(self, weights: np.ndarray) -> CompressedBlob:
        stream = weights
        infos = []
        for stage in self.stages[:-1]:
            stream, info = stage.transform(stream)
            infos.append(info)
        inner = self.terminal.encode(stream)
        meta = dict(inner.meta)
        meta["transforms"] = infos
        return CompressedBlob(
            codec=self.name,
            params=self.params(),
            payload=inner.payload,
            meta=meta,
            original_bytes=inner.original_bytes,
            compressed_bytes=inner.compressed_bytes,
        )

    def _terminal_blob(self, blob: CompressedBlob) -> CompressedBlob:
        return CompressedBlob(
            codec=self.terminal.name,
            params=self.terminal.params(),
            payload=blob.payload,
            meta=blob.meta,
            original_bytes=blob.original_bytes,
            compressed_bytes=blob.compressed_bytes,
        )

    def decode(self, blob: CompressedBlob) -> np.ndarray:
        infos = blob.meta.get("transforms", [])
        if len(infos) != len(self.stages) - 1:
            raise CodecError(
                f"blob carries {len(infos)} transform records, chain "
                f"{self.name!r} expects {len(self.stages) - 1}"
            )
        stream = self.terminal.decode(self._terminal_blob(blob))
        for stage, info in zip(reversed(self.stages[:-1]), reversed(infos)):
            stream = stage.untransform(stream, info)
        return stream
