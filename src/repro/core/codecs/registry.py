"""String-keyed codec registry and the ``get_codec`` factory.

Codecs register under a short name; ``get_codec("name", **params)``
instantiates one.  Pipe-separated specs build a
:class:`~repro.core.codecs.composed.ComposedCodec` whose non-terminal
stages run as transforms (constructed with their defaults) and whose
terminal stage receives ``**params``::

    get_codec("linefit", delta_pct=15.0)
    get_codec("huffman")                       # lossless baseline
    get_codec("quantize-int8|linefit", delta_pct=5.0, fmt="int8")

Adding a codec is a drop-in::

    @register_codec("my-codec")
    class MyCodec(Codec):
        ...
"""

from __future__ import annotations

from ..errors import CodecError
from .base import Codec

__all__ = ["register_codec", "get_codec", "codec_names"]

_REGISTRY: dict[str, type[Codec]] = {}


def register_codec(name: str):
    """Class decorator: register a :class:`Codec` subclass under ``name``."""

    def decorator(cls: type[Codec]) -> type[Codec]:
        if "|" in name:
            raise CodecError(f"codec name {name!r} must not contain '|'")
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise CodecError(f"codec name {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def codec_names() -> list[str]:
    """Sorted names of every registered codec."""
    return sorted(_REGISTRY)


def get_codec(spec: str | Codec, **params) -> Codec:
    """Instantiate a codec from a registry spec.

    ``spec`` may be a registered name, a ``"stage|...|terminal"`` chain,
    or an already-built :class:`Codec` (returned as-is; ``params`` must
    then be empty).
    """
    if isinstance(spec, Codec):
        if params:
            raise CodecError("cannot re-parameterize an existing Codec instance")
        return spec
    if "|" in spec:
        from .composed import ComposedCodec

        *stage_names, terminal = [s.strip() for s in spec.split("|")]
        if not terminal or any(not s for s in stage_names):
            raise CodecError(f"malformed codec chain {spec!r}")
        stages = [get_codec(s) for s in stage_names]
        return ComposedCodec([*stages, get_codec(terminal, **params)])
    cls = _REGISTRY.get(spec)
    if cls is None:
        raise CodecError(
            f"unknown codec {spec!r}; registered codecs: {codec_names()}"
        )
    try:
        return cls(**params)
    except TypeError as exc:
        raise CodecError(f"bad parameters for codec {spec!r}: {exc}") from exc
