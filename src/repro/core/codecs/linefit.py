"""The paper's line-fit compressor behind the :class:`Codec` interface.

``LineFitCodec`` wraps the existing reference implementation —
weak-monotonic segmentation (:mod:`repro.core.segmentation`), per-segment
least squares (:mod:`repro.core.linefit`), the storage-format cost model
(:mod:`repro.core.compression`) and the RWCS wire format
(:mod:`repro.core.codec`) — without re-implementing any of it, so blobs
produced here are byte-identical to the pre-registry call sites.
"""

from __future__ import annotations

import numpy as np

from .. import codec as wire
from ..compression import SEGMENTERS, CompressedStream, StorageFormat, compress
from ..errors import CodecError
from ..segmentation import delta_from_percent
from .base import Codec, CompressedBlob, as_stream
from .registry import register_codec

__all__ = ["LineFitCodec"]

_NAMED_FORMATS = {
    "float32": StorageFormat.float32,
    "int8": StorageFormat.int8,
}


def _resolve_fmt(fmt) -> tuple[StorageFormat, object]:
    """Accept ``"float32"``/``"int8"``, a field dict, or a StorageFormat.

    Returns the format plus its JSON-serializable spelling for
    :meth:`LineFitCodec.params`.
    """
    if isinstance(fmt, StorageFormat):
        for name, factory in _NAMED_FORMATS.items():
            if fmt == factory():
                return fmt, name
        return fmt, {
            "weight_bytes": fmt.weight_bytes,
            "slope_bytes": fmt.slope_bytes,
            "intercept_bytes": fmt.intercept_bytes,
            "length_bytes": fmt.length_bytes,
        }
    if isinstance(fmt, dict):
        return StorageFormat(**fmt), dict(fmt)
    if fmt in _NAMED_FORMATS:
        return _NAMED_FORMATS[fmt](), fmt
    raise CodecError(
        f"unknown storage format {fmt!r}; use "
        f"{sorted(_NAMED_FORMATS)}, a StorageFormat or a field dict"
    )


@register_codec("linefit")
class LineFitCodec(Codec):
    """Weak-monotonic segmentation + per-segment least-squares lines.

    Parameters
    ----------
    delta_pct:
        Tolerance as a percentage of the stream's amplitude (the
        paper's convention); ignored when ``delta`` is given.
    delta:
        Absolute tolerance, overriding ``delta_pct`` (used when the
        tolerance must be derived from a different stream than the one
        encoded, e.g. the full-stream range of a sliced evaluation).
    fmt:
        Storage cost model: ``"float32"`` (default, 8 B/segment) or
        ``"int8"`` (6 B/segment, Tab. III), a field dict, or a
        :class:`~repro.core.compression.StorageFormat`.
    framing:
        Wire framing: ``"crc"`` (default, the version-3 CRC-framed
        format) or ``"legacy"`` (the pre-integrity version-2 layout).
        An ``identical``-class ablation hook — decoded bytes must not
        depend on the framing, only damage *detection* does.
    segmenter:
        Partitioning-rule implementation
        (:data:`repro.core.compression.SEGMENTERS`): ``"vectorized"``
        (default) or ``"reference"`` (the sequential greedy scan).
        Also ``identical``-class: both must produce the same partition.
    """

    lossless = False

    _FRAMINGS = ("crc", "legacy")

    def __init__(
        self,
        delta_pct: float = 0.0,
        delta: float | None = None,
        fmt="float32",
        framing: str = "crc",
        segmenter: str = "vectorized",
    ) -> None:
        self.delta_pct = float(delta_pct)
        self.delta = None if delta is None else float(delta)
        self.fmt, self._fmt_spec = _resolve_fmt(fmt)
        if framing not in self._FRAMINGS:
            raise CodecError(
                f"unknown framing {framing!r}; use {list(self._FRAMINGS)}"
            )
        if segmenter not in SEGMENTERS:
            raise CodecError(
                f"unknown segmenter {segmenter!r}; use {sorted(SEGMENTERS)}"
            )
        self.framing = framing
        self.segmenter = segmenter

    def params(self) -> dict:
        out: dict = {"delta_pct": self.delta_pct, "fmt": self._fmt_spec}
        if self.delta is not None:
            out["delta"] = self.delta
        # non-default toggles only: existing archives/cache keys keep
        # their byte-identical params spelling
        if self.framing != "crc":
            out["framing"] = self.framing
        if self.segmenter != "vectorized":
            out["segmenter"] = self.segmenter
        return out

    def _delta_for(self, w: np.ndarray) -> float:
        if self.delta is not None:
            return self.delta
        return delta_from_percent(w, self.delta_pct)

    def encode(self, weights: np.ndarray) -> CompressedBlob:
        w = as_stream(weights)
        stream = compress(
            w, self._delta_for(w), fmt=self.fmt, segmenter=self.segmenter
        )
        return self._blob_from_stream(stream, str(w.dtype))

    def _blob_from_stream(self, stream: CompressedStream, dtype: str) -> CompressedBlob:
        pack = wire.encode if self.framing == "crc" else wire.encode_legacy
        return CompressedBlob(
            codec=self.name,
            params=self.params(),
            payload=pack(stream),
            meta={
                "num_segments": stream.num_segments,
                "num_weights": stream.num_weights,
                "dtype": dtype,
            },
            original_bytes=stream.original_bytes,
            compressed_bytes=stream.compressed_bytes,
        )

    def decode_stream(self, blob: CompressedBlob) -> CompressedStream:
        """The parsed :class:`CompressedStream` behind a blob.

        When the blob declares its weight count (``meta.num_weights``),
        the wire decoder additionally checks that the segment lengths
        sum to exactly it — a length field corrupted in storage can no
        longer silently mis-shape the regenerated stream.
        """
        declared = blob.num_weights
        return wire.decode(
            blob.payload, expected_weights=declared if declared else None
        )

    def decode(self, blob: CompressedBlob) -> np.ndarray:
        return self.decode_stream(blob).decompress(dtype=np.float32)

    def reconstruction_mse(self, blob: CompressedBlob, original: np.ndarray) -> float:
        # Defer to the stream's own float64 MSE so the figure is
        # bit-identical with the pre-registry Tab. II path.
        w = np.asarray(original).ravel()
        if w.size == 0:
            return 0.0
        return self.decode_stream(blob).mse(w)
