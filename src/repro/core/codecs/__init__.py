"""Pluggable compression codecs: one interface from segmentation to NoC traffic.

Every compressor — the paper's line-fit scheme and the lossless
baselines alike — implements the same small contract
(:class:`~repro.core.codecs.base.Codec`): ``encode(stream)`` returns a
self-describing :class:`~repro.core.codecs.base.CompressedBlob` whose
byte accounting drives CR metrics, model archives and the accelerator's
traffic/energy model; ``decode(blob)`` reconstructs the stream.  Codecs
are looked up by name through a registry and can be chained with ``|``::

    from repro.core.codecs import get_codec

    blob = get_codec("linefit", delta_pct=15.0).encode(weights)
    blob = get_codec("huffman").encode(weights)             # lossless baseline
    blob = get_codec("quantize-int8|linefit", delta_pct=5.0,
                     fmt="int8").encode(weights)            # Tab. III stacking

Registered codecs
-----------------
``linefit``
    The paper's compressor (reference implementation; wire format is
    byte-identical to :mod:`repro.core.codec`).
``rle`` / ``huffman`` / ``lz``
    The Sec. III-B lossless baselines (exact reconstruction, CR ~= 1 on
    weight streams).
``quantize-int8``
    TFLite-style int8 quantization; standalone or as a transform stage.
"""

from .base import Codec, CodecError, CompressedBlob
from .composed import ComposedCodec
from .linefit import LineFitCodec
from .lossless import HuffmanCodec, LZCodec, RLECodec
from .quantize import QuantizeInt8Codec
from .registry import codec_names, get_codec, register_codec

__all__ = [
    "Codec",
    "CodecError",
    "CompressedBlob",
    "ComposedCodec",
    "LineFitCodec",
    "RLECodec",
    "HuffmanCodec",
    "LZCodec",
    "QuantizeInt8Codec",
    "codec_names",
    "get_codec",
    "register_codec",
]
