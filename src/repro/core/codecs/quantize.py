"""Int8 quantization as a codec stage (Tab. III's first rung).

``quantize-int8`` is the registry form of
:func:`repro.core.quantization.quantize_tensor`.  It serves two roles:

* a **transform stage** in a composed chain — ``"quantize-int8|linefit"``
  reproduces the Tab. III stacking experiment (compress the int8 value
  stream, dequantize after decoding), subsuming the ``quantize_first``
  special case that used to live inside ``CompressionPipeline.run_delta``;
* a **standalone codec** — int8 payload + per-tensor scale/zero-point,
  i.e. plain post-training quantization at CR ~= 4 over fp32.
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError
from ..quantization import quantize_tensor
from .base import Codec, CompressedBlob, as_stream
from .registry import register_codec

__all__ = ["QuantizeInt8Codec"]


@register_codec("quantize-int8")
class QuantizeInt8Codec(Codec):
    lossless = False

    def __init__(self, delta_pct: float = 0.0) -> None:
        # Sweep-uniformity knob; quantization has no tolerance to relax.
        self.delta_pct = float(delta_pct)

    def params(self) -> dict:
        return {}

    # -- transform stage ------------------------------------------------------
    def transform(self, weights: np.ndarray) -> tuple[np.ndarray, dict]:
        qt = quantize_tensor(as_stream(weights))
        stream = qt.values.astype(np.float32).ravel()
        return stream, {"scale": float(qt.scale), "zero_point": int(qt.zero_point)}

    def untransform(self, stream: np.ndarray, info: dict) -> np.ndarray:
        values = np.asarray(stream, dtype=np.float32)
        return (values - np.float32(info["zero_point"])) * np.float32(info["scale"])

    # -- standalone codec -----------------------------------------------------
    def encode(self, weights: np.ndarray) -> CompressedBlob:
        w = as_stream(weights)
        qt = quantize_tensor(w)
        return CompressedBlob(
            codec=self.name,
            params=self.params(),
            payload=qt.values.tobytes(),
            meta={
                "num_weights": int(w.size),
                "dtype": str(w.dtype),
                "scale": float(qt.scale),
                "zero_point": int(qt.zero_point),
            },
            original_bytes=int(w.view(np.uint8).size),
            compressed_bytes=qt.footprint_bytes,
        )

    def decode(self, blob: CompressedBlob) -> np.ndarray:
        values = np.frombuffer(blob.payload, dtype=np.int8).astype(np.float32)
        declared = blob.num_weights
        if declared and values.size != declared:
            raise CodecError(
                f"int8 payload holds {values.size} values, blob declares {declared}"
            )
        try:
            info = {"scale": blob.meta["scale"], "zero_point": blob.meta["zero_point"]}
        except KeyError as exc:
            raise CodecError(f"quantized blob meta missing {exc}") from exc
        return self.untransform(values, info)
