"""The ``Codec`` interface and its ``CompressedBlob`` output.

A *codec* turns a 1-D weight stream (any NumPy dtype, C-order) into a
self-describing :class:`CompressedBlob` and back.  The blob carries the
byte-cost accounting used by every downstream consumer: ``original_bytes``
and ``compressed_bytes`` feed the same CR math as
:class:`repro.core.compression.StorageFormat`, so the accuracy leg
(:class:`repro.core.pipeline.CompressionPipeline`), the storage leg
(:class:`repro.core.model_store.ModelArchive`) and the traffic/energy leg
(:meth:`repro.mapping.schedule.CompressionEffect.from_blob`) all work with
any registered codec.

Codecs come in two flavours:

* **terminal** codecs produce the wire payload (``encode``/``decode``);
* **transform** stages (e.g. int8 quantization) re-represent the stream
  for a downstream terminal codec (``transform``/``untransform``) and are
  chained by :class:`repro.core.codecs.composed.ComposedCodec`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import CodecError, IntegrityError

__all__ = ["Codec", "CompressedBlob", "CodecError"]

#: blob ``meta`` key holding the payload CRC32 (see ``repro.resilience``)
CHECKSUM_KEY = "crc32"


@dataclass(frozen=True)
class CompressedBlob:
    """One codec's output for one weight stream.

    Attributes
    ----------
    codec:
        Registry spec that produced the blob (e.g. ``"linefit"`` or
        ``"quantize-int8|linefit"``).
    params:
        JSON-serializable constructor parameters; ``get_codec(codec,
        **params)`` rebuilds a decoder for this blob.
    payload:
        The wire bytes (for the line-fit codec, exactly the
        :mod:`repro.core.codec` RWCS format).
    meta:
        JSON-serializable per-encode information the decoder needs
        (stream dtype, element count, transform side-info, segment
        counts).
    original_bytes / compressed_bytes:
        CR-accounting byte costs, following the paper's convention:
        the line-fit codec counts ``segments * segment_bytes`` against
        ``weights * weight_bytes`` (O(1) headers excluded); lossless
        codecs count their full payload against the raw stream bytes.
    """

    codec: str
    params: dict
    payload: bytes
    meta: dict = field(default_factory=dict)
    original_bytes: int = 0
    compressed_bytes: int = 0

    @property
    def compression_ratio(self) -> float:
        """CR = uncompressed bytes / compressed bytes (paper Tab. II)."""
        if self.compressed_bytes == 0:
            return float("inf") if self.original_bytes else 1.0
        return self.original_bytes / self.compressed_bytes

    @property
    def num_segments(self) -> int:
        """Segment count for decompressor-timing models (0 if N/A)."""
        return int(self.meta.get("num_segments", 0))

    @property
    def num_weights(self) -> int:
        """Number of stream elements the blob encodes."""
        return int(self.meta.get("num_weights", 0))

    def spec(self) -> dict:
        """Everything :meth:`rebuild` needs, minus the payload.

        This is what :class:`repro.core.model_store.ModelArchive`
        persists per layer so archives round-trip under any codec.
        """
        return {
            "name": self.codec,
            "params": dict(self.params),
            "meta": dict(self.meta),
            "original_bytes": int(self.original_bytes),
            "compressed_bytes": int(self.compressed_bytes),
        }

    @classmethod
    def rebuild(cls, spec: dict, payload: bytes) -> "CompressedBlob":
        """Inverse of :meth:`spec` + the payload bytes."""
        return cls(
            codec=spec["name"],
            params=dict(spec.get("params", {})),
            payload=payload,
            meta=dict(spec.get("meta", {})),
            original_bytes=int(spec.get("original_bytes", 0)),
            compressed_bytes=int(spec.get("compressed_bytes", 0)),
        )

    # -- integrity (see repro.resilience) -----------------------------------
    def with_checksum(self) -> "CompressedBlob":
        """A copy whose ``meta`` records the payload CRC32."""
        meta = dict(self.meta)
        meta[CHECKSUM_KEY] = zlib.crc32(self.payload) & 0xFFFFFFFF
        return CompressedBlob(
            codec=self.codec,
            params=self.params,
            payload=self.payload,
            meta=meta,
            original_bytes=self.original_bytes,
            compressed_bytes=self.compressed_bytes,
        )

    def verify(self, context: str = "") -> bool:
        """Check the payload against the recorded checksum, if any.

        Returns ``True`` when a checksum was present and matched,
        ``False`` when the blob predates checksumming (legacy blobs
        verify vacuously).  Raises
        :class:`~repro.core.errors.IntegrityError` on a mismatch.
        """
        recorded = self.meta.get(CHECKSUM_KEY)
        if recorded is None:
            return False
        actual = zlib.crc32(self.payload) & 0xFFFFFFFF
        if int(recorded) != actual:
            where = f" ({context})" if context else ""
            raise IntegrityError(
                f"payload checksum mismatch{where}: "
                f"recorded 0x{int(recorded):08x}, computed 0x{actual:08x}"
            )
        return True


def as_stream(weights: np.ndarray) -> np.ndarray:
    """Canonical 1-D C-order view of a weight tensor."""
    return np.ascontiguousarray(np.asarray(weights)).ravel()


class Codec:
    """Base class / protocol for registered codecs.

    Subclasses set ``lossless`` and implement :meth:`encode` and
    :meth:`decode`; transform-capable stages additionally implement
    :meth:`transform` / :meth:`untransform`.  Constructors must accept a
    ``delta_pct`` keyword (the sweep knob of the paper's Fig. 8 flow);
    lossless codecs accept and ignore it so one driver loop can sweep
    every registered codec.
    """

    #: registry key, set by ``@register_codec``
    name: str = "?"
    #: True when ``decode(encode(w))`` reproduces ``w`` exactly
    lossless: bool = True

    def params(self) -> dict:
        """JSON-serializable constructor parameters (see ``get_codec``)."""
        return {}

    # -- terminal interface ---------------------------------------------------
    def encode(self, weights: np.ndarray) -> CompressedBlob:
        raise NotImplementedError

    def decode(self, blob: CompressedBlob) -> np.ndarray:
        raise NotImplementedError

    # -- composition interface ------------------------------------------------
    def transform(self, weights: np.ndarray) -> tuple[np.ndarray, dict]:
        """Re-represent the stream for a downstream stage.

        Returns the transformed stream plus JSON-serializable side-info
        consumed by :meth:`untransform`.  Only transform-capable stages
        (e.g. ``quantize-int8``) implement this.
        """
        raise CodecError(f"codec {self.name!r} cannot be a non-terminal stage")

    def untransform(self, stream: np.ndarray, info: dict) -> np.ndarray:
        """Inverse of :meth:`transform` (up to the stage's own loss)."""
        raise CodecError(f"codec {self.name!r} cannot be a non-terminal stage")

    # -- metrics --------------------------------------------------------------
    def reconstruction_mse(self, blob: CompressedBlob, original: np.ndarray) -> float:
        """MSE of ``decode(blob)`` against the original stream (Tab. II)."""
        w = np.asarray(original, dtype=np.float64).ravel()
        if w.size == 0:
            return 0.0
        approx = np.asarray(self.decode(blob), dtype=np.float64).ravel()
        if approx.size != w.size:
            raise CodecError(
                f"blob encodes {approx.size} weights, original has {w.size}"
            )
        diff = approx - w
        return float(np.mean(diff * diff))
