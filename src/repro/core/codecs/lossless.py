"""Lossless baseline compressors adapted to the :class:`Codec` interface.

The paper's Sec. III-B argument — weight streams are too high-entropy
for classical compression — becomes directly measurable once RLE,
Huffman and LZSS flow through the same pipeline as the line-fit codec:
their CR hovers near (or below) 1.0 on weights while accuracy is exactly
unchanged, because decoding is exact.

Each payload is self-contained: a small header carries the stream dtype
and element count (plus the Huffman code table), so a blob decodes
without out-of-band state.  All three accept-and-ignore the sweep knob
``delta_pct`` so one driver loop can sweep every registered codec.
"""

from __future__ import annotations

import struct

import numpy as np

from ...baselines.huffman import HuffmanCode, huffman_decode, huffman_encode
from ...baselines.lz import lz_decode, lz_encode
from ...baselines.rle import rle_decode, rle_encode
from ..errors import CodecError
from .base import Codec, CompressedBlob, as_stream
from .registry import register_codec

__all__ = ["RLECodec", "HuffmanCodec", "LZCodec"]

#: dtype string <= 15 bytes, padded; then u64 element count
_STREAM_HEADER = struct.Struct("<16sQ")


def _pack_stream_header(w: np.ndarray) -> bytes:
    name = w.dtype.str.encode()
    if len(name) > 16:
        raise CodecError(f"dtype {w.dtype} name too long to serialize")
    return _STREAM_HEADER.pack(name, w.size)


def _unpack_stream_header(payload: bytes) -> tuple[np.dtype, int, bytes]:
    if len(payload) < _STREAM_HEADER.size:
        raise CodecError("truncated lossless payload (missing stream header)")
    name, count = _STREAM_HEADER.unpack_from(payload)
    try:
        dtype = np.dtype(name.rstrip(b"\0").decode())
    except (TypeError, ValueError, UnicodeDecodeError) as exc:
        raise CodecError(f"bad dtype in lossless payload: {exc}") from exc
    if dtype.itemsize == 0:
        raise CodecError(f"bad dtype in lossless payload: {dtype} has zero itemsize")
    return dtype, count, payload[_STREAM_HEADER.size :]


def _bytes_to_stream(raw: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    expected = count * dtype.itemsize
    if len(raw) != expected:
        raise CodecError(
            f"payload decodes to {len(raw)} bytes, expected {expected}"
        )
    try:
        return np.frombuffer(raw, dtype=dtype).copy()
    except ValueError as exc:
        raise CodecError(f"payload bytes do not form a {dtype} stream: {exc}") from exc


class _LosslessCodec(Codec):
    """Shared framing for byte-oriented lossless codecs."""

    lossless = True

    def __init__(self, delta_pct: float = 0.0) -> None:
        # The tolerance knob exists only for sweep uniformity; lossless
        # codecs have nothing to relax.
        self.delta_pct = float(delta_pct)

    def params(self) -> dict:
        return {}

    def _encode_bytes(self, buf: np.ndarray) -> bytes:
        raise NotImplementedError

    def _decode_bytes(self, body: bytes, count_bytes: int) -> bytes:
        raise NotImplementedError

    def encode(self, weights: np.ndarray) -> CompressedBlob:
        w = as_stream(weights)
        buf = w.view(np.uint8)
        body = self._encode_bytes(buf)
        payload = _pack_stream_header(w) + body
        return CompressedBlob(
            codec=self.name,
            params=self.params(),
            payload=payload,
            meta={"num_weights": int(w.size), "dtype": str(w.dtype)},
            original_bytes=int(buf.size),
            compressed_bytes=len(body),
        )

    def decode(self, blob: CompressedBlob) -> np.ndarray:
        dtype, count, body = _unpack_stream_header(blob.payload)
        declared = blob.num_weights
        if declared and count != declared:
            raise CodecError(
                f"payload header declares {count} weights, blob meta says {declared}"
            )
        try:
            raw = self._decode_bytes(body, count * dtype.itemsize)
        except CodecError:
            raise
        except (ValueError, KeyError, IndexError, OverflowError, struct.error) as exc:
            # adversarial/corrupted body bytes must surface as CodecError,
            # whatever the underlying byte-level decoder tripped over
            raise CodecError(f"corrupt {self.name} payload: {exc}") from exc
        return _bytes_to_stream(raw, dtype, count)


@register_codec("rle")
class RLECodec(_LosslessCodec):
    """Byte-level run-length encoding (``(count, value)`` pairs)."""

    def _encode_bytes(self, buf: np.ndarray) -> bytes:
        return rle_encode(buf)

    def _decode_bytes(self, body: bytes, count_bytes: int) -> bytes:
        return rle_decode(body)


@register_codec("lz")
class LZCodec(_LosslessCodec):
    """LZ77/LZSS dictionary coder.

    Encoding is O(n) Python per byte; prefer sampled streams (see
    ``repro.experiments.table2_compression``) for multi-megabyte inputs.
    """

    def _encode_bytes(self, buf: np.ndarray) -> bytes:
        return lz_encode(buf)

    def _decode_bytes(self, body: bytes, count_bytes: int) -> bytes:
        return lz_decode(body)


@register_codec("huffman")
class HuffmanCodec(_LosslessCodec):
    """Byte-level Huffman coding; the code table rides in the payload.

    Table entries serialize as ``(symbol u8, length u8, code u32)``; the
    table cost counts toward ``compressed_bytes``, mirroring
    :func:`repro.baselines.huffman.huffman_ratio`'s accounting.
    """

    _ENTRY = struct.Struct("<BBI")
    _TABLE_HEADER = struct.Struct("<H")

    def _encode_bytes(self, buf: np.ndarray) -> bytes:
        bits, code = huffman_encode(buf)
        entries = b"".join(
            self._ENTRY.pack(sym, length, value)
            for sym, (length, value) in sorted(code.table.items())
        )
        return self._TABLE_HEADER.pack(len(code.table)) + entries + bits

    def _decode_bytes(self, body: bytes, count_bytes: int) -> bytes:
        if len(body) < self._TABLE_HEADER.size:
            raise CodecError("truncated huffman payload (missing table)")
        (n_entries,) = self._TABLE_HEADER.unpack_from(body)
        offset = self._TABLE_HEADER.size
        end = offset + n_entries * self._ENTRY.size
        if len(body) < end:
            raise CodecError("truncated huffman payload (incomplete table)")
        table = {}
        for i in range(n_entries):
            sym, length, value = self._ENTRY.unpack_from(body, offset + i * self._ENTRY.size)
            table[sym] = (length, value)
        if count_bytes == 0:
            return b""
        return huffman_decode(body[end:], HuffmanCode(table=table), count_bytes)
