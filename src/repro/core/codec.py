"""Byte-level serialization of compressed weight streams.

This is the wire/storage format whose size the compression-ratio numbers
refer to, and the payload the memory controller actually ships over the
NoC to the PEs.  Layout (little-endian), matching
:class:`repro.core.compression.StorageFormat`:

    header:  magic 'RWCS' | u8 version | u8 fmt flags | u32 num_segments
             | u32 header crc | f64 delta
    body:    num_segments * (slope | intercept | length)
    trailer: ceil(num_segments / 64) * u32 frame CRC32

Coefficients are stored at the format's width: 4 bytes = ``float32``,
3 bytes = ``float32`` with the low mantissa byte dropped (the default
8-byte-per-segment format calibrated to the paper's delta=0 CR of 1.21),
2 bytes = ``float16``.  Lengths are ``uint16``.  The flags byte is
self-describing: bit 0 selects the int8 weight class and two 2-bit
fields carry explicit slope/intercept widths (0 = class default, so
default-format messages are byte-identical to ones written before the
width bits existed).  Formats the body layout cannot represent fail at
*encode* time with :class:`CodecError` — historically they encoded fine
and produced blobs no decoder could parse.  The O(1) header and the
integrity trailer are excluded from compression-ratio accounting,
mirroring the paper's three-fields-per-segment cost model.

Integrity framing (version 3)
-----------------------------
Because the stream is *regenerative* — each ⟨m, q, len⟩ triple expands
into a whole sub-succession of weights — a single flipped bit silently
poisons every weight of its segment (and, via a corrupted length field,
desynchronizes everything after it).  Version 3 therefore frames the
body in groups of :data:`SEGMENTS_PER_FRAME` segments, each covered by a
CRC32 in the trailer, and protects the header fields and the trailer
itself with a header CRC32 (computed over the message with the CRC field
zeroed).  Every single-bit flip anywhere in a v3 message is detected.
Version-2 messages (written before the framing existed) still decode,
with no integrity guarantees — the legacy fallback.

``decode`` raises :class:`IntegrityError` on checksum or finiteness
violations and :class:`CodecError` on structural ones;
:func:`parse_lenient` parses damaged v3 messages without raising so a
degradation policy (see :mod:`repro.resilience`) can salvage the
undamaged frames.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from .compression import CompressedStream, StorageFormat
from .errors import CodecError, IntegrityError

__all__ = [
    "encode",
    "encode_legacy",
    "decode",
    "parse_lenient",
    "LenientStream",
    "frame_trailer_bytes",
    "HEADER_BYTES",
    "LEGACY_HEADER_BYTES",
    "SEGMENTS_PER_FRAME",
    "CodecError",
    "IntegrityError",
]

_MAGIC = b"RWCS"
_VERSION = 3
_LEGACY_VERSION = 2
#: v3: magic | version | flags | num_segments | header crc | delta
_HEADER = struct.Struct("<4sBBII d")
#: v2 (legacy, pre-integrity): magic | version | flags | num_segments | delta
_HEADER_V2 = struct.Struct("<4sBBI d")
HEADER_BYTES = _HEADER.size
LEGACY_HEADER_BYTES = _HEADER_V2.size
#: byte offset of the u32 header-CRC field inside the v3 header
_CRC_OFFSET = 4 + 1 + 1 + 4

#: segments covered by one trailer CRC32 — the damage-localization grain
SEGMENTS_PER_FRAME = 64

_FLAG_INT8 = 0x01
#: 2-bit coefficient-width codes (0 = class default, 1/2/3 = 2/3/4 bytes)
_SLOPE_SHIFT = 1
_INTERCEPT_SHIFT = 3
_WIDTH_MASK = 0x03
_KNOWN_FLAGS = (
    _FLAG_INT8 | (_WIDTH_MASK << _SLOPE_SHIFT) | (_WIDTH_MASK << _INTERCEPT_SHIFT)
)

_WIDTH_CODES = {2: 1, 3: 2, 4: 3}
_CODE_WIDTHS = {code: width for width, code in _WIDTH_CODES.items()}


def _format_flags(fmt: StorageFormat) -> int:
    """Pack a storage format into the header flags byte.

    Class-default coefficient widths emit a bare ``0x00``/``0x01`` so
    every message written before the explicit width bits existed — and
    every new message in a default format — stays byte-identical.
    Non-default widths get explicit 2-bit codes; formats the body layout
    cannot represent at all raise :class:`CodecError` here, at encode
    time, instead of producing a blob no decoder can parse.
    """
    if fmt.length_bytes != 2:
        raise CodecError(
            f"wire format requires a 2-byte length field, "
            f"got {fmt.length_bytes}"
        )
    for name, width in (("slope", fmt.slope_bytes), ("intercept", fmt.intercept_bytes)):
        if width not in _WIDTH_CODES:
            raise CodecError(
                f"wire format cannot store {width}-byte {name} coefficients "
                f"(supported widths: 2, 3, 4)"
            )
    flags = _FLAG_INT8 if fmt.weight_bytes == 1 else 0
    default = StorageFormat.int8() if flags else StorageFormat.float32()
    if fmt.slope_bytes != default.slope_bytes:
        flags |= _WIDTH_CODES[fmt.slope_bytes] << _SLOPE_SHIFT
    if fmt.intercept_bytes != default.intercept_bytes:
        flags |= _WIDTH_CODES[fmt.intercept_bytes] << _INTERCEPT_SHIFT
    return flags


def _format_from_flags(flags: int) -> StorageFormat:
    """Inverse of :func:`_format_flags` (width code 0 = class default)."""
    base = StorageFormat.int8() if flags & _FLAG_INT8 else StorageFormat.float32()
    slope_code = (flags >> _SLOPE_SHIFT) & _WIDTH_MASK
    intercept_code = (flags >> _INTERCEPT_SHIFT) & _WIDTH_MASK
    if not (slope_code or intercept_code):
        return base
    return StorageFormat(
        weight_bytes=base.weight_bytes,
        slope_bytes=_CODE_WIDTHS.get(slope_code, base.slope_bytes),
        intercept_bytes=_CODE_WIDTHS.get(intercept_code, base.intercept_bytes),
    )


def frame_trailer_bytes(num_segments: int) -> int:
    """Size of the v3 per-frame CRC trailer for a segment count."""
    return 4 * (-(-int(num_segments) // SEGMENTS_PER_FRAME))


def _pack_coeff(values: np.ndarray, nbytes: int) -> np.ndarray:
    """Pack float coefficients into an ``(n, nbytes)`` uint8 array."""
    if nbytes == 2:
        return values.astype(np.float16).view(np.uint8).reshape(-1, 2)
    raw = np.ascontiguousarray(values.astype(np.float32)).view(np.uint8).reshape(-1, 4)
    if nbytes == 4:
        return raw
    if nbytes == 3:
        return raw[:, 1:]  # little-endian: byte 0 is the low mantissa byte
    raise ValueError(f"unsupported coefficient width: {nbytes}")


def _unpack_coeff(raw: np.ndarray, nbytes: int) -> np.ndarray:
    """Inverse of :func:`_pack_coeff`; returns float64."""
    if nbytes == 2:
        return raw.reshape(-1, 2).copy().view(np.float16).ravel().astype(np.float64)
    if nbytes == 4:
        return raw.reshape(-1, 4).copy().view(np.float32).ravel().astype(np.float64)
    if nbytes == 3:
        full = np.zeros((raw.shape[0] // 3 if raw.ndim == 1 else raw.shape[0], 4), np.uint8)
        full[:, 1:] = raw.reshape(-1, 3)
        return full.view(np.float32).ravel().astype(np.float64)
    raise ValueError(f"unsupported coefficient width: {nbytes}")


def _frame_crcs(body: bytes, num_segments: int, segment_bytes: int) -> np.ndarray:
    """CRC32 of each :data:`SEGMENTS_PER_FRAME`-segment group of the body."""
    frame_bytes = SEGMENTS_PER_FRAME * segment_bytes
    n_frames = -(-num_segments // SEGMENTS_PER_FRAME)
    return np.fromiter(
        (
            zlib.crc32(body[i * frame_bytes : (i + 1) * frame_bytes])
            for i in range(n_frames)
        ),
        dtype=np.uint32,
        count=n_frames,
    )


def encode(stream: CompressedStream) -> bytes:
    """Serialize a compressed stream to bytes (version 3, CRC-framed)."""
    fmt = stream.fmt
    flags = _format_flags(fmt)
    n = stream.num_segments
    if stream.lengths.size and int(stream.lengths.max()) > fmt.max_segment_length:
        raise ValueError("segment length exceeds the storage format's length field")
    body = np.empty((n, fmt.segment_bytes), dtype=np.uint8)
    body[:, : fmt.slope_bytes] = _pack_coeff(stream.m, fmt.slope_bytes)
    body[:, fmt.slope_bytes : fmt.slope_bytes + fmt.intercept_bytes] = _pack_coeff(
        stream.q, fmt.intercept_bytes
    )
    body[:, -fmt.length_bytes :] = (
        stream.lengths.astype("<u2").view(np.uint8).reshape(-1, 2)
    )
    body_bytes = body.tobytes()
    trailer = _frame_crcs(body_bytes, n, fmt.segment_bytes).astype("<u4").tobytes()
    header0 = _HEADER.pack(_MAGIC, _VERSION, flags, n, 0, float(stream.delta))
    crc = zlib.crc32(trailer, zlib.crc32(header0))
    header = _HEADER.pack(_MAGIC, _VERSION, flags, n, crc, float(stream.delta))
    return header + body_bytes + trailer


def encode_legacy(stream: CompressedStream) -> bytes:
    """Serialize in the pre-integrity version-2 layout (no CRCs).

    Exists for the fault-injection campaign and the legacy-fallback
    tests: it produces exactly the messages archives written before the
    framing version bump contain.  New code should use :func:`encode`.
    """
    fmt = stream.fmt
    flags = _format_flags(fmt)
    n = stream.num_segments
    if stream.lengths.size and int(stream.lengths.max()) > fmt.max_segment_length:
        raise ValueError("segment length exceeds the storage format's length field")
    body = np.empty((n, fmt.segment_bytes), dtype=np.uint8)
    body[:, : fmt.slope_bytes] = _pack_coeff(stream.m, fmt.slope_bytes)
    body[:, fmt.slope_bytes : fmt.slope_bytes + fmt.intercept_bytes] = _pack_coeff(
        stream.q, fmt.intercept_bytes
    )
    body[:, -fmt.length_bytes :] = (
        stream.lengths.astype("<u2").view(np.uint8).reshape(-1, 2)
    )
    header = _HEADER_V2.pack(_MAGIC, _LEGACY_VERSION, flags, n, float(stream.delta))
    return header + body.tobytes()


@dataclass
class LenientStream:
    """A v3/v2 message parsed without raising on *content* damage.

    ``damaged`` flags the segments whose frame CRC failed (always all-
    False for legacy v2 messages, which carry no CRCs).  ``m``, ``q``
    and ``lengths`` are the raw parsed values — inside damaged frames
    they are not to be trusted.  Structural damage (bad magic, size
    mismatch) still raises, because then nothing about the message can
    be trusted; a header-CRC mismatch alone does *not* — the per-frame
    comparison still localizes the damage, at worst flagging one extra
    frame when the hit landed in the trailer.
    """

    m: np.ndarray
    q: np.ndarray
    lengths: np.ndarray
    delta: float
    fmt: StorageFormat
    damaged: np.ndarray  # bool, per segment

    @property
    def num_segments(self) -> int:
        return int(self.lengths.size)


def _parse(data: bytes, strict: bool) -> LenientStream:
    if len(data) < 5:
        raise CodecError("truncated compressed stream (missing header)")
    magic, version = data[:4], data[4]
    if magic != _MAGIC:
        raise CodecError(f"bad magic {magic!r}, expected {_MAGIC!r}")
    if version == _LEGACY_VERSION:
        if len(data) < LEGACY_HEADER_BYTES:
            raise CodecError("truncated compressed stream (missing header)")
        _, _, flags, num_segments, delta = _HEADER_V2.unpack_from(data)
        header_bytes, trailer_len = LEGACY_HEADER_BYTES, 0
    elif version == _VERSION:
        if len(data) < HEADER_BYTES:
            raise CodecError("truncated compressed stream (missing header)")
        _, _, flags, num_segments, header_crc, delta = _HEADER.unpack_from(data)
        header_bytes, trailer_len = HEADER_BYTES, frame_trailer_bytes(num_segments)
    else:
        raise CodecError(f"unsupported version {version}")
    if flags & ~_KNOWN_FLAGS:
        raise CodecError(f"unknown format flags 0x{flags & ~_KNOWN_FLAGS:02x}")
    fmt = _format_from_flags(flags)
    body_len = num_segments * fmt.segment_bytes
    expected = header_bytes + body_len + trailer_len
    if len(data) != expected:
        raise CodecError(f"body size mismatch: got {len(data)}, expected {expected}")

    damaged = np.zeros(num_segments, dtype=bool)
    if version == _VERSION:
        trailer = data[header_bytes + body_len :]
        crc = zlib.crc32(
            trailer,
            zlib.crc32(
                data[:_CRC_OFFSET] + b"\x00\x00\x00\x00" + data[_CRC_OFFSET + 4 : header_bytes]
            ),
        )
        if crc != header_crc and strict:
            raise IntegrityError("header checksum mismatch (corrupted framing)")
        # lenient + header-CRC mismatch: the hit landed in the header
        # fields or in the trailer itself.  The message is structurally
        # coherent (magic/version/size all checked out), so fall through
        # to the per-frame comparison — body damage is flagged exactly,
        # and a corrupted trailer CRC flags only its own frame (a
        # conservative false positive instead of losing the whole layer)
        body_bytes = data[header_bytes : header_bytes + body_len]
        stored = np.frombuffer(trailer, dtype="<u4")
        actual = _frame_crcs(body_bytes, num_segments, fmt.segment_bytes)
        bad_frames = np.flatnonzero(stored != actual)
        for f in bad_frames:
            lo = int(f) * SEGMENTS_PER_FRAME
            damaged[lo : lo + SEGMENTS_PER_FRAME] = True
        if strict and bad_frames.size:
            segs = np.flatnonzero(damaged)
            raise IntegrityError(
                f"frame checksum mismatch in {bad_frames.size} frame(s), "
                f"covering segments {segs[0]}..{segs[-1]}",
                segments=tuple(segs.tolist()),
            )

    body = np.frombuffer(
        data, dtype=np.uint8, offset=header_bytes, count=body_len
    ).reshape(num_segments, fmt.segment_bytes)
    m = _unpack_coeff(body[:, : fmt.slope_bytes], fmt.slope_bytes)
    q = _unpack_coeff(
        body[:, fmt.slope_bytes : fmt.slope_bytes + fmt.intercept_bytes],
        fmt.intercept_bytes,
    )
    lengths = body[:, -fmt.length_bytes :].copy().view("<u2").ravel().astype(np.int64)
    return LenientStream(
        m=m, q=q, lengths=lengths, delta=float(delta), fmt=fmt, damaged=damaged
    )


def _validate(parsed: LenientStream, expected_weights: int | None) -> None:
    """Strict bounds validation on the decoded ⟨m, q, len⟩ triples."""
    lengths = parsed.lengths
    bad_len = np.flatnonzero(lengths <= 0)
    if bad_len.size:
        raise CodecError(
            f"segment {int(bad_len[0])} has non-positive length {int(lengths[bad_len[0]])}"
        )
    non_finite = np.flatnonzero(~(np.isfinite(parsed.m) & np.isfinite(parsed.q)))
    if non_finite.size:
        raise IntegrityError(
            f"segment {int(non_finite[0])} has non-finite line coefficients",
            segments=tuple(non_finite.tolist()),
        )
    if expected_weights is not None:
        total = np.cumsum(lengths)
        declared = int(expected_weights)
        over = np.flatnonzero(total > declared)
        if over.size:
            raise CodecError(
                f"segment {int(over[0])} overruns the declared weight count: "
                f"segments sum to {int(total[-1])}, declared {declared}"
            )
        got = int(total[-1]) if lengths.size else 0
        if got != declared:
            raise CodecError(
                f"segment lengths sum to {got}, declared weight count is {declared}"
            )


def decode(data: bytes, expected_weights: int | None = None) -> CompressedStream:
    """Parse bytes produced by :func:`encode` back into a stream.

    Parameters
    ----------
    data:
        A version-3 (CRC-framed) or legacy version-2 message.
    expected_weights:
        When given, the segment lengths must sum to exactly this count;
        the error names the first overrunning segment.

    Raises
    ------
    IntegrityError
        On checksum mismatches (v3) and non-finite coefficients.
    CodecError
        On truncated buffers, bad magic, unknown versions, unknown
        format flags, body-size mismatches, non-positive segment
        lengths, and declared-weight-count violations.
    """
    parsed = _parse(data, strict=True)
    _validate(parsed, expected_weights)
    return CompressedStream(
        m=parsed.m,
        q=parsed.q,
        lengths=parsed.lengths,
        delta=parsed.delta,
        fmt=parsed.fmt,
    )


def parse_lenient(data: bytes) -> LenientStream:
    """Parse a message, flagging (not raising on) damaged v3 frames.

    The entry point of the graceful-degradation path: structurally
    broken messages still raise ``CodecError``/``IntegrityError``, but
    frame-CRC failures come back as the ``damaged`` mask so a policy can
    zero-fill the affected segments (:func:`repro.resilience.decode_degraded`).
    """
    return _parse(data, strict=False)
