"""Byte-level serialization of compressed weight streams.

This is the wire/storage format whose size the compression-ratio numbers
refer to, and the payload the memory controller actually ships over the
NoC to the PEs.  Layout (little-endian), matching
:class:`repro.core.compression.StorageFormat`:

    header:  magic 'RWCS' | u8 version | u8 fmt flags | u32 num_segments
             | f64 delta
    body:    num_segments * (slope | intercept | length)

Coefficients are stored at the format's width: 4 bytes = ``float32``,
3 bytes = ``float32`` with the low mantissa byte dropped (the default
8-byte-per-segment format calibrated to the paper's delta=0 CR of 1.21),
2 bytes = ``float16``.  Lengths are ``uint16``.  The O(1) header is
excluded from compression-ratio accounting, mirroring the paper's
three-fields-per-segment cost model.
"""

from __future__ import annotations

import struct

import numpy as np

from .compression import CompressedStream, StorageFormat
from .errors import CodecError

__all__ = ["encode", "decode", "HEADER_BYTES", "CodecError"]

_MAGIC = b"RWCS"
_VERSION = 2
_HEADER = struct.Struct("<4sBBI d")
HEADER_BYTES = _HEADER.size

_FLAG_INT8 = 0x01
_KNOWN_FLAGS = _FLAG_INT8


def _pack_coeff(values: np.ndarray, nbytes: int) -> np.ndarray:
    """Pack float coefficients into an ``(n, nbytes)`` uint8 array."""
    if nbytes == 2:
        return values.astype(np.float16).view(np.uint8).reshape(-1, 2)
    raw = np.ascontiguousarray(values.astype(np.float32)).view(np.uint8).reshape(-1, 4)
    if nbytes == 4:
        return raw
    if nbytes == 3:
        return raw[:, 1:]  # little-endian: byte 0 is the low mantissa byte
    raise ValueError(f"unsupported coefficient width: {nbytes}")


def _unpack_coeff(raw: np.ndarray, nbytes: int) -> np.ndarray:
    """Inverse of :func:`_pack_coeff`; returns float64."""
    if nbytes == 2:
        return raw.reshape(-1, 2).copy().view(np.float16).ravel().astype(np.float64)
    if nbytes == 4:
        return raw.reshape(-1, 4).copy().view(np.float32).ravel().astype(np.float64)
    if nbytes == 3:
        full = np.zeros((raw.shape[0] // 3 if raw.ndim == 1 else raw.shape[0], 4), np.uint8)
        full[:, 1:] = raw.reshape(-1, 3)
        return full.view(np.float32).ravel().astype(np.float64)
    raise ValueError(f"unsupported coefficient width: {nbytes}")


def encode(stream: CompressedStream) -> bytes:
    """Serialize a compressed stream to bytes."""
    fmt = stream.fmt
    flags = _FLAG_INT8 if fmt.weight_bytes == 1 else 0
    header = _HEADER.pack(
        _MAGIC, _VERSION, flags, stream.num_segments, float(stream.delta)
    )
    n = stream.num_segments
    if stream.lengths.size and int(stream.lengths.max()) > fmt.max_segment_length:
        raise ValueError("segment length exceeds the storage format's length field")
    body = np.empty((n, fmt.segment_bytes), dtype=np.uint8)
    body[:, : fmt.slope_bytes] = _pack_coeff(stream.m, fmt.slope_bytes)
    body[:, fmt.slope_bytes : fmt.slope_bytes + fmt.intercept_bytes] = _pack_coeff(
        stream.q, fmt.intercept_bytes
    )
    body[:, -fmt.length_bytes :] = (
        stream.lengths.astype("<u2").view(np.uint8).reshape(-1, 2)
    )
    return header + body.tobytes()


def decode(data: bytes) -> CompressedStream:
    """Parse bytes produced by :func:`encode` back into a stream.

    Raises
    ------
    CodecError
        On truncated buffers, bad magic, unknown versions, unknown
        format flags and body-size mismatches.
    """
    if len(data) < HEADER_BYTES:
        raise CodecError("truncated compressed stream (missing header)")
    try:
        magic, version, flags, num_segments, delta = _HEADER.unpack_from(data)
    except struct.error as exc:  # pragma: no cover - guarded by length check
        raise CodecError(f"malformed compressed stream header: {exc}") from exc
    if magic != _MAGIC:
        raise CodecError(f"bad magic {magic!r}, expected {_MAGIC!r}")
    if version != _VERSION:
        raise CodecError(f"unsupported version {version}")
    if flags & ~_KNOWN_FLAGS:
        raise CodecError(f"unknown format flags 0x{flags & ~_KNOWN_FLAGS:02x}")
    fmt = StorageFormat.int8() if flags & _FLAG_INT8 else StorageFormat.float32()
    expected = HEADER_BYTES + num_segments * fmt.segment_bytes
    if len(data) != expected:
        raise CodecError(f"body size mismatch: got {len(data)}, expected {expected}")
    body = np.frombuffer(data, dtype=np.uint8, offset=HEADER_BYTES).reshape(
        num_segments, fmt.segment_bytes
    )
    m = _unpack_coeff(body[:, : fmt.slope_bytes], fmt.slope_bytes)
    q = _unpack_coeff(
        body[:, fmt.slope_bytes : fmt.slope_bytes + fmt.intercept_bytes],
        fmt.intercept_bytes,
    )
    lengths = (
        body[:, -fmt.length_bytes :].copy().view("<u2").ravel().astype(np.int64)
    )
    return CompressedStream(m=m, q=q, lengths=lengths, delta=float(delta), fmt=fmt)
