"""Streamed weight delivery: the decode→consume boundary as an object.

Before this module, every consumer of compressed weights materialized
the full decoded array first (`codec.decode(blob)` → ndarray → MAC
loop).  A :class:`WeightProvider` inverts that: consumers pull decoded
weights *tile by tile* through a :class:`WeightCursor`, and the provider
decides how the tiles come to exist —

* :class:`ArrayProvider` serves views of an already-materialized array
  (the compatibility path: zero copies, zero behavior change);
* :class:`StreamProvider` decodes a line-fit
  :class:`~repro.core.compression.CompressedStream` on demand through
  :class:`~repro.core.decompressor.WeightStream`, so the full weight
  array is never allocated — the software analogue of the paper's
  in-PE decompression unit feeding the MAC datapath directly;
* :class:`BlobProvider` adapts any registered codec's
  :class:`~repro.core.codecs.CompressedBlob`: pure ``linefit`` blobs
  stream for real; other codecs (whose decoders are not incremental)
  materialize once per provider and then serve views — same contract,
  documented fallback.

Tile values are **bit-identical** to the materialized decode for every
provider: streaming only changes *when* weights exist, never what they
are (property-tested in ``tests/core/test_streamed_decode.py``).

:func:`provider_for` normalizes anything weight-shaped (ndarray,
``CompressedStream``, ``CompressedBlob``, or an existing provider) so
call sites across ``nn``/``mapping`` accept one spelling.
"""

from __future__ import annotations

import threading

import numpy as np

from .compression import CompressedStream
from .decompressor import DEFAULT_TILE_WEIGHTS, WeightStream
from .errors import CodecError

__all__ = [
    "WeightCursor",
    "WeightProvider",
    "ArrayProvider",
    "StreamProvider",
    "BlobProvider",
    "provider_for",
]


class WeightCursor:
    """Forward read cursor over one pass of a provider's weight stream.

    The base implementation serves slices of a backing array; streaming
    providers substitute a :class:`~repro.core.decompressor.WeightStream`
    backed cursor.  ``read(n)`` returns exactly ``min(n, remaining)``
    elements; returned arrays may be views and must be treated as
    read-only by consumers.
    """

    def __init__(self, data: np.ndarray) -> None:
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return self._data.size - self._pos

    def read(self, n: int) -> np.ndarray:
        n = min(int(n), self.remaining)
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def tiles(self, tile_weights: int = DEFAULT_TILE_WEIGHTS):
        """Iterate the remaining weights in tiles of ``tile_weights``."""
        if tile_weights <= 0:
            raise ValueError("tile_weights must be positive")
        while self.remaining:
            yield self.read(tile_weights)


class _StreamCursor(WeightCursor):
    """Cursor decoding tiles on demand from a ``WeightStream``."""

    def __init__(self, stream: CompressedStream, dtype) -> None:
        self._ws = WeightStream(stream, acc_dtype=dtype)

    @property
    def remaining(self) -> int:
        return self._ws.remaining

    def read(self, n: int) -> np.ndarray:
        return self._ws.read(n)


class WeightProvider:
    """Source of one layer's weight stream, consumed tile-by-tile.

    Subclasses implement :meth:`cursor` (a fresh pass over the stream)
    and :attr:`num_weights`; :meth:`materialize` is derived but may be
    overridden with something cheaper.  Providers are reusable: each
    :meth:`cursor` call starts an independent pass, so one provider can
    feed many forward passes.
    """

    #: number of weights a full pass yields
    num_weights: int = 0

    def cursor(self, dtype=np.float32) -> WeightCursor:
        raise NotImplementedError

    def materialize(self, dtype=np.float32) -> np.ndarray:
        """The full decoded stream (compatibility/fallback path)."""
        return self.cursor(dtype=dtype).read(self.num_weights)

    @property
    def streaming(self) -> bool:
        """True when cursors decode incrementally (no full-size buffer)."""
        return False

    #: segment count for decompressor-timing models (0 when N/A)
    num_segments: int = 0
    #: compression ratio of the backing representation (1.0 when raw)
    compression_ratio: float = 1.0


class ArrayProvider(WeightProvider):
    """Provider over an already-materialized weight array (zero-copy)."""

    def __init__(self, weights: np.ndarray) -> None:
        self._w = np.ascontiguousarray(np.asarray(weights)).ravel()
        self.num_weights = int(self._w.size)

    def cursor(self, dtype=np.float32) -> WeightCursor:
        return WeightCursor(self._w.astype(dtype, copy=False))

    def materialize(self, dtype=np.float32) -> np.ndarray:
        return self._w.astype(dtype, copy=False)


class StreamProvider(WeightProvider):
    """Streaming provider over a line-fit :class:`CompressedStream`.

    Each cursor decodes tiles on demand through
    :class:`~repro.core.decompressor.WeightStream`; the full weight
    array is never allocated by this provider.
    """

    def __init__(self, stream: CompressedStream) -> None:
        self._stream = stream
        self.num_weights = stream.num_weights
        self.num_segments = stream.num_segments
        self.compression_ratio = stream.compression_ratio

    @property
    def stream(self) -> CompressedStream:
        return self._stream

    @property
    def streaming(self) -> bool:
        return True

    def cursor(self, dtype=np.float32) -> WeightCursor:
        return _StreamCursor(self._stream, dtype)


class BlobProvider(WeightProvider):
    """Provider over any registered codec's :class:`CompressedBlob`.

    A pure ``linefit`` blob parses to a :class:`CompressedStream` and
    streams for real.  Other codecs' decoders are whole-payload, so the
    first cursor materializes the decode once (cached on the provider)
    and subsequent cursors serve views — the provider contract holds
    either way, only the peak memory differs.

    Providers are safe to share across threads: the materialize-once
    step is guarded by a lock (exactly one decode runs, concurrent
    cursors wait for the finished array instead of observing a
    partially-populated cache), and every cursor carries its own read
    position, so interleaved consumers never perturb each other.  The
    cached array is served as a read-only view contract — consumers
    must not write through it.
    """

    def __init__(self, blob) -> None:
        self._blob = blob
        self.num_weights = blob.num_weights
        self.num_segments = blob.num_segments
        self.compression_ratio = blob.compression_ratio
        self._stream: CompressedStream | None = None
        self._decoded: np.ndarray | None = None
        self._materialize_lock = threading.Lock()
        if blob.codec == "linefit":
            from .codecs import get_codec  # local import: codecs -> core cycles

            codec = get_codec(blob.codec, **blob.params)
            self._stream = codec.decode_stream(blob)
            self.num_weights = self._stream.num_weights
            self.num_segments = self._stream.num_segments

    @property
    def blob(self):
        return self._blob

    @property
    def streaming(self) -> bool:
        return self._stream is not None

    def _materialized(self) -> np.ndarray:
        # double-checked: the lock-free fast path reads an attribute
        # that is only ever assigned a *fully decoded* array under the
        # lock, so concurrent cursors either see None (and queue on the
        # lock) or the finished decode — never a partial one, and the
        # decode itself runs exactly once
        decoded = self._decoded
        if decoded is None:
            with self._materialize_lock:
                decoded = self._decoded
                if decoded is None:
                    from .codecs import get_codec

                    codec = get_codec(self._blob.codec, **self._blob.params)
                    decoded = np.asarray(codec.decode(self._blob)).ravel()
                    if self.num_weights and decoded.size != self.num_weights:
                        raise CodecError(
                            f"blob decoded to {decoded.size} weights, "
                            f"declared {self.num_weights}"
                        )
                    self.num_weights = int(decoded.size)
                    self._decoded = decoded
        return decoded

    def cursor(self, dtype=np.float32) -> WeightCursor:
        if self._stream is not None:
            return _StreamCursor(self._stream, dtype)
        return WeightCursor(self._materialized().astype(dtype, copy=False))

    def materialize(self, dtype=np.float32) -> np.ndarray:
        if self._stream is not None:
            return WeightProvider.materialize(self, dtype=dtype)
        return self._materialized().astype(dtype, copy=False)


def provider_for(source) -> WeightProvider:
    """Normalize anything weight-shaped into a :class:`WeightProvider`.

    Accepts an existing provider (returned as-is), a line-fit
    :class:`CompressedStream`, any codec's :class:`CompressedBlob`, or a
    raw ndarray.
    """
    if isinstance(source, WeightProvider):
        return source
    if isinstance(source, CompressedStream):
        return StreamProvider(source)
    if isinstance(source, np.ndarray):
        return ArrayProvider(source)
    # duck-typed CompressedBlob (avoid importing codecs at module import)
    if hasattr(source, "payload") and hasattr(source, "codec"):
        return BlobProvider(source)
    raise TypeError(
        f"cannot build a WeightProvider from {type(source).__name__}"
    )
