"""Pareto-front utilities for the accuracy / latency / energy space.

The paper's contribution (3) is precisely that the tunable delta lets a
designer "play in the multi-objective design space accuracy vs. latency
vs. energy, selecting the most appropriate Pareto point".  These helpers
extract that front from a delta sweep.
"""

from __future__ import annotations

from dataclasses import dataclass


__all__ = ["DesignPoint", "pareto_front", "dominates", "knee_point"]


@dataclass(frozen=True)
class DesignPoint:
    """One delta configuration in objective space.

    ``accuracy`` is maximized; ``latency`` and ``energy`` (normalized to
    the uncompressed model) are minimized.
    """

    label: str
    accuracy: float
    latency: float
    energy: float


def dominates(a: DesignPoint, b: DesignPoint) -> bool:
    """True iff ``a`` is at least as good as ``b`` everywhere and better somewhere."""
    at_least = (
        a.accuracy >= b.accuracy and a.latency <= b.latency and a.energy <= b.energy
    )
    strictly = (
        a.accuracy > b.accuracy or a.latency < b.latency or a.energy < b.energy
    )
    return at_least and strictly


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """Non-dominated subset, in input order."""
    return [
        p
        for p in points
        if not any(dominates(q, p) for q in points if q is not p)
    ]


def knee_point(
    points: list[DesignPoint],
    max_accuracy_drop: float,
    baseline_accuracy: float | None = None,
) -> DesignPoint:
    """The headline-style operating point (cf. the paper's abstract:
    "up to 63 % latency reduction ... with less than 5 % accuracy
    degradation").

    Among points whose accuracy drop from the baseline is within
    ``max_accuracy_drop``, return the one with the lowest latency
    (energy breaking ties).
    """
    if not points:
        raise ValueError("no design points given")
    base = baseline_accuracy if baseline_accuracy is not None else max(
        p.accuracy for p in points
    )
    admissible = [p for p in points if base - p.accuracy <= max_accuracy_drop]
    if not admissible:
        raise ValueError(
            f"no point within {max_accuracy_drop} of baseline accuracy {base}"
        )
    return min(admissible, key=lambda p: (p.latency, p.energy))
