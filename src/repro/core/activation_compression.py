"""Applying the weight compressor to activation streams (extension).

The paper compresses only the *parameters*; its conclusion mentions
extending the approach.  Feature maps are a natural next target: after
ReLU roughly half of all activations are exact zeros, and zero runs are
perfect weak-monotonic segments, so the same codec achieves *higher*
compression ratios on activations than on weights at the same delta.
Compressing the ofmap write-back (and the consumer layer's ifmap read)
attacks the activation half of the traffic of the paper's Fig. 1.

Unlike weights (compressed once, offline), activations are compressed
on the fly per inference, so the paper's hardware argument (multiplier-
free decompression, Fig. 6) matters doubly here; the same
:class:`~repro.core.decompressor.DecompressionUnit` cycle model applies.

This module measures, on a trained proxy:

* the per-layer compression ratio of real activation streams
  (:func:`activation_cr_profile`);
* the end-to-end accuracy when every intermediate activation is
  round-tripped through the lossy codec
  (:func:`evaluate_with_compressed_activations`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.graph import Model
from ..nn.train import topk_accuracy
from .compression import compress_percent

__all__ = [
    "ActivationProfile",
    "activation_cr_profile",
    "evaluate_with_compressed_activations",
]


@dataclass(frozen=True)
class ActivationProfile:
    layer: str
    zero_fraction: float
    cr: float
    num_values: int


def activation_cr_profile(
    model: Model,
    x: np.ndarray,
    delta_pct: float,
    max_values: int = 500_000,
) -> list[ActivationProfile]:
    """Compress every node's activation stream; report CR per layer.

    Only array-producing nodes with at least 64 values are profiled
    (tiny vectors carry no stable statistics).
    """
    _, acts = model.forward_traced(x)
    out = []
    for name, arr in acts.items():
        flat = np.asarray(arr, dtype=np.float32).ravel()[:max_values]
        if flat.size < 64:
            continue
        stream = compress_percent(flat, delta_pct)
        out.append(
            ActivationProfile(
                layer=name,
                zero_fraction=float((flat == 0).mean()),
                cr=stream.compression_ratio,
                num_values=int(flat.size),
            )
        )
    return out


def _roundtrip(arr: np.ndarray, delta_pct: float) -> np.ndarray:
    flat = np.asarray(arr, dtype=np.float32).ravel()
    stream = compress_percent(flat, delta_pct)
    return stream.decompress().reshape(arr.shape)


def evaluate_with_compressed_activations(
    model: Model,
    x: np.ndarray,
    y: np.ndarray,
    delta_pct: float,
    top_k: int = 1,
    batch_size: int = 128,
    layers: set[str] | None = None,
) -> float:
    """Accuracy when intermediate activations are codec-round-tripped.

    ``layers`` restricts compression to a subset of nodes; by default
    every node is compressed.  The depth principle of the paper's Fig. 9
    holds for activations too: input-side feature maps are fragile while
    deep, sparse post-ReLU maps tolerate the codec — so a deployment
    would compress only the deep write-backs.  The final logits node is
    always left untouched.
    """
    last = model.node_names[-1]

    def transform(name: str, out: np.ndarray) -> np.ndarray:
        if name == last or out.size < 64:
            return out
        if layers is not None and name not in layers:
            return out
        return _roundtrip(out, delta_pct)

    outs = [
        model.forward_transformed(x[start : start + batch_size], transform)
        for start in range(0, len(x), batch_size)
    ]
    logits = np.concatenate(outs, axis=0)
    return topk_accuracy(logits, y, top_k)
