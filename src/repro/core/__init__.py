"""The paper's primary contribution: lossy weight-stream compression.

Sub-modules
-----------
segmentation
    Weak-sense monotonic greedy partitioning (Eq. (1)).
linefit
    Vectorized per-segment least-squares fits.
compression
    ``compress`` / ``CompressedStream`` — the public compression API.
decompressor
    Cycle/bit-level model of the on-PE decompression unit (Fig. 6),
    vectorized batch decode and the ``WeightStream`` tile cursor.
provider
    Streamed weight delivery: the ``WeightProvider`` contract that lets
    consumers pull decoded tiles on demand (fused decode+MAC).
codec
    Byte-level wire format of compressed streams.
codecs
    Pluggable codec registry: ``get_codec("linefit"|"huffman"|"rle"|
    "lz"|"quantize-int8", ...)``, ``|``-chained composition, and the
    ``Codec``/``CompressedBlob`` contract every consumer speaks.
metrics
    CR / weighted CR / footprint / MSE reporting (Tab. II).
quantization
    TFLite-style int8 post-training quantization (Tab. III).
layer_selection
    The paper's deepest-largest layer policy plus multi-layer extensions.
sensitivity
    Per-layer accuracy sensitivity to weight perturbation (Fig. 9).
pareto
    Pareto-front utilities for the accuracy/latency/energy space.
pipeline
    The end-to-end evaluation flow of Fig. 8.
multilayer
    Multi-layer delta assignment (the paper's future work).
pruning
    Magnitude pruning substrate for the stacking claim.
activation_compression
    The codec applied to feature-map streams (extension).
model_store
    Whole-model compressed archives (the deployable artifact).
"""

from .activation_compression import (
    ActivationProfile,
    activation_cr_profile,
    evaluate_with_compressed_activations,
)
from .codecs import (
    Codec,
    CodecError,
    ComposedCodec,
    CompressedBlob,
    LineFitCodec,
    codec_names,
    get_codec,
    register_codec,
)
from .compression import (
    CompressedStream,
    StorageFormat,
    compress,
    compress_percent,
    quantize_coefficient,
)
from .decompressor import (
    DecompressionUnit,
    DecompressorTiming,
    WeightStream,
    decompress_accumulate,
)
from .errors import FaultError, IntegrityError
from .layer_selection import select_layer, select_layer_model, select_multi
from .metrics import (
    CompressionReport,
    footprint_ratio,
    layer_report,
    param_weighted_cr,
    weighted_ratio,
)
from .model_store import ModelArchive, compress_model, load_archive
from .multilayer import MultiLayerPlan, optimize_multilayer
from .pareto import DesignPoint, dominates, knee_point, pareto_front
from .pruning import PrunedTensor, prune_magnitude, pruned_footprint_bytes
from .pipeline import CompressionPipeline, DeltaRecord, apply_compression
from .provider import (
    ArrayProvider,
    BlobProvider,
    StreamProvider,
    WeightCursor,
    WeightProvider,
    provider_for,
)
from .quantization import QuantizedTensor, model_footprint, quantize_model, quantize_tensor
from .segmentation import delta_from_percent, is_weak_monotonic, segment_boundaries
from .sensitivity import LayerSensitivity, layer_sensitivity, normalized_sensitivity

__all__ = [
    "ActivationProfile",
    "activation_cr_profile",
    "evaluate_with_compressed_activations",
    "Codec",
    "CodecError",
    "IntegrityError",
    "FaultError",
    "ComposedCodec",
    "CompressedBlob",
    "LineFitCodec",
    "codec_names",
    "get_codec",
    "register_codec",
    "ModelArchive",
    "compress_model",
    "load_archive",
    "CompressedStream",
    "StorageFormat",
    "compress",
    "compress_percent",
    "quantize_coefficient",
    "DecompressionUnit",
    "DecompressorTiming",
    "WeightStream",
    "decompress_accumulate",
    "WeightCursor",
    "WeightProvider",
    "ArrayProvider",
    "StreamProvider",
    "BlobProvider",
    "provider_for",
    "CompressionReport",
    "layer_report",
    "weighted_ratio",
    "footprint_ratio",
    "param_weighted_cr",
    "delta_from_percent",
    "is_weak_monotonic",
    "segment_boundaries",
    "select_layer",
    "select_layer_model",
    "select_multi",
    "MultiLayerPlan",
    "optimize_multilayer",
    "PrunedTensor",
    "prune_magnitude",
    "pruned_footprint_bytes",
    "DesignPoint",
    "dominates",
    "knee_point",
    "pareto_front",
    "CompressionPipeline",
    "DeltaRecord",
    "apply_compression",
    "QuantizedTensor",
    "model_footprint",
    "quantize_model",
    "quantize_tensor",
    "LayerSensitivity",
    "layer_sensitivity",
    "normalized_sensitivity",
]
