"""Whole-model compressed archives.

The deployable artifact of this system: a container holding, per layer,
either the wire-format compressed weight stream (for layers the
selection policy / multi-layer optimizer chose) or the raw tensor, plus
everything needed to restore an inference-ready model.  This is what a
host would flash into the accelerator's parameter storage.

Format: a ``.npz`` with
  ``meta.layers``              ordered layer names (JSON)
  ``meta.assignments``         layer -> delta_pct for compressed layers
  ``compressed.<name>``        codec bytes (uint8) for compressed layers
  ``shape.<name>``             original tensor shape
  ``raw.<name>``               raw float32 tensor for untouched layers
  ``state.<key>``              non-weight model state (biases, BN, ...)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..nn.graph import Model
from .codec import decode, encode
from .compression import compress_percent

__all__ = ["ModelArchive", "compress_model", "load_archive"]


@dataclass
class ModelArchive:
    """In-memory form of a compressed model container."""

    #: layer -> delta_pct used
    assignments: dict[str, float]
    #: layer -> (codec bytes, original shape)
    compressed: dict[str, tuple[bytes, tuple[int, ...]]]
    #: layer -> raw weight tensor (not compressed)
    raw: dict[str, np.ndarray]
    #: everything else the model needs (biases, BN stats, ...)
    state: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def compressed_weight_bytes(self) -> int:
        return sum(len(blob) for blob, _ in self.compressed.values())

    @property
    def raw_weight_bytes(self) -> int:
        return sum(a.nbytes for a in self.raw.values())

    def weights_footprint(self) -> int:
        """Parameter-storage bytes (weight tensors only)."""
        return self.compressed_weight_bytes + self.raw_weight_bytes

    # -- persistence -------------------------------------------------------
    def to_file(self, path: str | Path) -> None:
        arrays: dict[str, np.ndarray] = {
            "meta.layers": np.frombuffer(
                json.dumps(sorted(set(self.compressed) | set(self.raw))).encode(),
                dtype=np.uint8,
            ),
            "meta.assignments": np.frombuffer(
                json.dumps(self.assignments).encode(), dtype=np.uint8
            ),
        }
        for name, (blob, shape) in self.compressed.items():
            arrays[f"compressed.{name}"] = np.frombuffer(blob, dtype=np.uint8)
            arrays[f"shape.{name}"] = np.asarray(shape, dtype=np.int64)
        for name, arr in self.raw.items():
            arrays[f"raw.{name}"] = arr
        for key, arr in self.state.items():
            arrays[f"state.{key}"] = arr
        np.savez_compressed(path, **arrays)

    # -- application -------------------------------------------------------
    def apply(self, model: Model) -> None:
        """Install the archive's weights into a model (decompressing)."""
        for name, (blob, shape) in self.compressed.items():
            stream = decode(blob)
            model.set_weights(name, stream.decompress().reshape(shape))
        for name, arr in self.raw.items():
            model.set_weights(name, arr)
        if self.state:
            # merge: archive state keys override, others stay
            current = model.state_dict()
            for key, arr in self.state.items():
                if key not in current:
                    raise ValueError(f"archive state key {key!r} unknown to model")
                current[key] = arr
            model.load_state_dict(current)


def compress_model(
    model: Model,
    assignments: dict[str, float],
    include_state: bool = True,
) -> ModelArchive:
    """Build an archive from a trained model and a delta assignment.

    Layers named in ``assignments`` are stored as codec streams at their
    delta; every other parametric layer is stored raw.  With
    ``include_state`` the non-weight state (biases, batch-norm
    statistics) rides along so :meth:`ModelArchive.apply` fully restores
    inference behaviour.
    """
    parametric = dict(model.parametric_layers())
    unknown = set(assignments) - set(parametric)
    if unknown:
        raise ValueError(f"assignments for unknown layers: {sorted(unknown)}")
    compressed = {}
    raw = {}
    for name in parametric:
        weights = model.get_weights(name)
        if name in assignments:
            stream = compress_percent(weights.ravel(), assignments[name])
            compressed[name] = (encode(stream), tuple(weights.shape))
        else:
            raw[name] = weights.copy()
    state = {}
    if include_state:
        weight_keys = {f"{n}.param0" for n in parametric}
        state = {
            k: v.copy()
            for k, v in model.state_dict().items()
            if k not in weight_keys
        }
    return ModelArchive(
        assignments=dict(assignments), compressed=compressed, raw=raw, state=state
    )


def load_archive(path: str | Path) -> ModelArchive:
    with np.load(path) as data:
        assignments = json.loads(bytes(data["meta.assignments"]).decode())
        compressed = {}
        raw = {}
        state = {}
        for key in data.files:
            if key.startswith("compressed."):
                name = key[len("compressed.") :]
                compressed[name] = (
                    bytes(data[key]),
                    tuple(int(v) for v in data[f"shape.{name}"]),
                )
            elif key.startswith("raw."):
                raw[key[len("raw.") :]] = data[key]
            elif key.startswith("state."):
                state[key[len("state.") :]] = data[key]
    return ModelArchive(
        assignments={k: float(v) for k, v in assignments.items()},
        compressed=compressed,
        raw=raw,
        state=state,
    )
