"""Whole-model compressed archives.

The deployable artifact of this system: a container holding, per layer,
either a codec's compressed weight blob (for layers the selection
policy / multi-layer optimizer chose) or the raw tensor, plus
everything needed to restore an inference-ready model.  This is what a
host would flash into the accelerator's parameter storage.

Archives are codec-agnostic: each compressed layer records the registry
name and parameters of the codec that produced it (plus the blob's
decode metadata), so an archive built with ``codec="huffman"`` restores
exactly like one built with the default ``"linefit"``.  Archives written
before the codec registry existed (no ``meta.codecs`` entry) decode
through the line-fit wire format, as before.

Integrity (archive format version 2): every compressed layer's codec
spec carries a CRC32 of its payload (``meta.codecs[layer].meta.crc32``),
verified before decoding; the line-fit wire payload additionally
carries its own per-frame framing (:mod:`repro.core.codec` version 3).
Version-1 archives (no checksums, v2 wire payloads) still load and
apply — the legacy fallback.  On damage, :meth:`ModelArchive.apply`
follows a configurable per-layer degradation policy: ``"raise"``
(default), ``"zero"`` (salvage undamaged segments, zero the rest), or
``"raw"`` (restore the optional uncompressed fallback copy).

Format: a ``.npz`` with
  ``meta.format``              archive format version (absent = 1)
  ``meta.layers``              ordered layer names (JSON)
  ``meta.assignments``         layer -> delta_pct for compressed layers
  ``meta.codecs``              layer -> codec spec (name/params/meta/bytes)
  ``compressed.<name>``        codec payload bytes (uint8)
  ``shape.<name>``             original tensor shape
  ``raw.<name>``               raw float32 tensor for untouched layers
  ``fallback.<name>``          optional raw copy of a *compressed* layer
  ``state.<key>``              non-weight model state (biases, BN, ...)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..nn.graph import Model
from .codec import decode as wire_decode
from .codecs import Codec, CompressedBlob, get_codec
from .errors import CodecError, IntegrityError

__all__ = ["ModelArchive", "compress_model", "load_archive", "FORMAT_VERSION"]

#: current archive format: 2 = per-layer payload CRCs + optional fallbacks
FORMAT_VERSION = 2

#: degradation policies accepted by :meth:`ModelArchive.apply`
_POLICIES = ("raise", "zero", "raw")


@dataclass
class ModelArchive:
    """In-memory form of a compressed model container."""

    #: layer -> delta_pct used
    assignments: dict[str, float]
    #: layer -> (codec payload bytes, original shape)
    compressed: dict[str, tuple[bytes, tuple[int, ...]]]
    #: layer -> raw weight tensor (not compressed)
    raw: dict[str, np.ndarray]
    #: everything else the model needs (biases, BN stats, ...)
    state: dict[str, np.ndarray] = field(default_factory=dict)
    #: layer -> codec spec (see ``CompressedBlob.spec``); layers absent
    #: here decode through the legacy line-fit wire path
    codecs: dict[str, dict] = field(default_factory=dict)
    #: optional raw copies of compressed layers (the ``"raw"`` policy)
    fallback: dict[str, np.ndarray] = field(default_factory=dict)
    #: archive format version this container was loaded from/built at
    version: int = FORMAT_VERSION

    @property
    def compressed_weight_bytes(self) -> int:
        return sum(len(blob) for blob, _ in self.compressed.values())

    @property
    def raw_weight_bytes(self) -> int:
        return sum(a.nbytes for a in self.raw.values())

    def weights_footprint(self) -> int:
        """Parameter-storage bytes (weight tensors only).

        Fallback copies are intentionally excluded: they model a host-
        side recovery image, not what is flashed into the accelerator's
        parameter storage.
        """
        return self.compressed_weight_bytes + self.raw_weight_bytes

    # -- persistence -------------------------------------------------------
    def to_file(self, path: str | Path) -> None:
        arrays: dict[str, np.ndarray] = {
            "meta.format": np.asarray([self.version], dtype=np.int64),
            "meta.layers": np.frombuffer(
                json.dumps(sorted(set(self.compressed) | set(self.raw))).encode(),
                dtype=np.uint8,
            ),
            "meta.assignments": np.frombuffer(
                json.dumps(self.assignments).encode(), dtype=np.uint8
            ),
        }
        if self.codecs:
            arrays["meta.codecs"] = np.frombuffer(
                json.dumps(self.codecs).encode(), dtype=np.uint8
            )
        for name, (blob, shape) in self.compressed.items():
            arrays[f"compressed.{name}"] = np.frombuffer(blob, dtype=np.uint8)
            arrays[f"shape.{name}"] = np.asarray(shape, dtype=np.int64)
        for name, arr in self.raw.items():
            arrays[f"raw.{name}"] = arr
        for name, arr in self.fallback.items():
            arrays[f"fallback.{name}"] = arr
        for key, arr in self.state.items():
            arrays[f"state.{key}"] = arr
        np.savez_compressed(path, **arrays)

    # -- application -------------------------------------------------------
    def _decode_layer(self, name: str, payload: bytes) -> np.ndarray:
        spec = self.codecs.get(name)
        if spec is None:
            # legacy archive: line-fit wire format, no registry record
            return wire_decode(payload).decompress()
        codec = get_codec(spec["name"], **spec.get("params", {}))
        blob = CompressedBlob.rebuild(spec, payload)
        # v2 archives record a payload CRC; v1 specs verify vacuously
        blob.verify(context=f"layer {name!r}")
        return codec.decode(blob)

    def _degrade_layer(
        self, name: str, shape: tuple[int, ...], error: CodecError, on_fault: str
    ) -> tuple[np.ndarray, str]:
        """Apply the degradation policy to one damaged layer."""
        if on_fault == "raw":
            if name in self.fallback:
                return self.fallback[name].reshape(shape).copy(), "raw-fallback"
            raise IntegrityError(
                f"layer {name!r} is damaged and the archive stores no raw "
                f"fallback copy (build with compress_model(raw_fallback=True))"
            ) from error
        # "zero": salvage undamaged line-fit frames, zero everything else
        num_weights = int(np.prod(shape, dtype=np.int64))
        spec = self.codecs.get(name)
        terminal = (spec["name"].rsplit("|", 1)[-1] if spec else "linefit").strip()
        if terminal == "linefit" and (spec is None or spec["name"] == "linefit"):
            from ..resilience.degrade import decode_degraded  # late: avoid cycle

            payload = self.compressed[name][0]
            try:
                stream, report = decode_degraded(payload, num_weights)
                return (
                    stream.reshape(shape),
                    f"zero-fill ({report.damaged_segments}/{report.num_segments} "
                    f"segments, {report.zeroed_weights} weights zeroed)",
                )
            except CodecError:
                pass  # structurally unsalvageable: fall through to full zero
        return np.zeros(shape, dtype=np.float32), "zero-fill (whole layer)"

    def apply(self, model: Model, on_fault: str = "raise") -> dict[str, str]:
        """Install the archive's weights into a model (decompressing).

        ``on_fault`` selects the per-layer degradation policy when a
        payload fails integrity verification or decoding:

        * ``"raise"`` — propagate the :class:`CodecError` (default);
        * ``"zero"`` — keep the undamaged segments of a line-fit payload
          and zero-fill the damaged ones (whole-layer zeros for other
          codecs or structurally broken payloads);
        * ``"raw"`` — restore the archive's uncompressed fallback copy
          (requires ``compress_model(..., raw_fallback=True)``).

        Returns a report: damaged layer -> action taken (empty when
        every layer decoded cleanly).
        """
        if on_fault not in _POLICIES:
            raise ValueError(f"unknown degradation policy {on_fault!r}; use {_POLICIES}")
        report: dict[str, str] = {}
        for name, (payload, shape) in self.compressed.items():
            try:
                tensor = self._decode_layer(name, payload).reshape(shape)
            except CodecError as exc:
                if on_fault == "raise":
                    raise
                tensor, action = self._degrade_layer(name, shape, exc, on_fault)
                report[name] = action
            model.set_weights(name, tensor)
        for name, arr in self.raw.items():
            model.set_weights(name, arr)
        if self.state:
            # merge: archive state keys override, others stay
            current = model.state_dict()
            for key, arr in self.state.items():
                if key not in current:
                    raise ValueError(f"archive state key {key!r} unknown to model")
                current[key] = arr
            model.load_state_dict(current)
        return report


def compress_model(
    model: Model,
    assignments: dict[str, float],
    include_state: bool = True,
    codec: str | Codec = "linefit",
    raw_fallback: bool = False,
) -> ModelArchive:
    """Build an archive from a trained model and a delta assignment.

    Layers named in ``assignments`` are stored as codec blobs at their
    delta; every other parametric layer is stored raw.  ``codec`` is any
    :mod:`repro.core.codecs` spec (per-layer deltas parameterize it;
    lossless codecs ignore them).  With ``include_state`` the non-weight
    state (biases, batch-norm statistics) rides along so
    :meth:`ModelArchive.apply` fully restores inference behaviour.  With
    ``raw_fallback`` each compressed layer additionally keeps its
    uncompressed tensor, enabling the ``"raw"`` degradation policy.
    """
    parametric = dict(model.parametric_layers())
    unknown = set(assignments) - set(parametric)
    if unknown:
        raise ValueError(f"assignments for unknown layers: {sorted(unknown)}")
    compressed = {}
    codecs = {}
    fallback = {}
    for name, delta in assignments.items():
        weights = model.get_weights(name)
        codec_obj = (
            codec
            if isinstance(codec, Codec)
            else get_codec(codec, delta_pct=float(delta))
        )
        blob = codec_obj.encode(weights.ravel()).with_checksum()
        compressed[name] = (blob.payload, tuple(weights.shape))
        codecs[name] = blob.spec()
        if raw_fallback:
            fallback[name] = weights.copy()
    raw = {
        name: model.get_weights(name).copy()
        for name in parametric
        if name not in assignments
    }
    state = {}
    if include_state:
        weight_keys = {f"{n}.param0" for n in parametric}
        state = {
            k: v.copy()
            for k, v in model.state_dict().items()
            if k not in weight_keys
        }
    return ModelArchive(
        assignments=dict(assignments),
        compressed=compressed,
        raw=raw,
        state=state,
        codecs=codecs,
        fallback=fallback,
        version=FORMAT_VERSION,
    )


def load_archive(path: str | Path) -> ModelArchive:
    with np.load(path) as data:
        version = (
            int(data["meta.format"][0]) if "meta.format" in data.files else 1
        )
        assignments = json.loads(bytes(data["meta.assignments"]).decode())
        codecs = (
            json.loads(bytes(data["meta.codecs"]).decode())
            if "meta.codecs" in data.files
            else {}
        )
        compressed = {}
        raw = {}
        state = {}
        fallback = {}
        for key in data.files:
            if key.startswith("compressed."):
                name = key[len("compressed.") :]
                compressed[name] = (
                    bytes(data[key]),
                    tuple(int(v) for v in data[f"shape.{name}"]),
                )
            elif key.startswith("raw."):
                raw[key[len("raw.") :]] = data[key]
            elif key.startswith("fallback."):
                fallback[key[len("fallback.") :]] = data[key]
            elif key.startswith("state."):
                state[key[len("state.") :]] = data[key]
    return ModelArchive(
        assignments={k: float(v) for k, v in assignments.items()},
        compressed=compressed,
        raw=raw,
        state=state,
        codecs=codecs,
        fallback=fallback,
        version=version,
    )
