"""Layer-selection policy (Sec. IV-A, *Layer Selection* block of Fig. 8).

The paper compresses a single layer per network, chosen as "the layer
with the largest number of parameters and more in depth located": deep
layers tolerate perturbation best (Fig. 9), and the largest layer
maximizes the weighted compression ratio.

Two criteria can conflict (e.g. ResNet-50's deepest 3x3 convs are
slightly *larger* than ``fc1000`` but much shallower), so the policy is:
consider every parametric layer whose parameter count is within
``tolerance`` of the maximum, then pick the deepest of those.  With the
default 25 % tolerance this reproduces the paper's Tab. I selection for
all six models.

``select_multi`` implements the paper's *future work* extension: a
greedy multi-layer selection maximizing footprint reduction under an
accuracy-driven depth constraint.
"""

from __future__ import annotations


from ..nn.arch import ArchSpec, LayerSpec
from ..nn.graph import Model

__all__ = ["select_layer", "select_layer_model", "select_multi"]


def _pick(records: list[tuple[str, int, int]], tolerance: float) -> str:
    """records = (name, params, depth); deepest among near-maximal."""
    if not records:
        raise ValueError("model has no parametric layers")
    max_params = max(p for _, p, _ in records)
    threshold = (1.0 - tolerance) * max_params
    candidates = [r for r in records if r[1] >= threshold]
    return max(candidates, key=lambda r: r[2])[0]


def select_layer(spec: ArchSpec, tolerance: float = 0.25) -> LayerSpec:
    """Select the compression target of a full-scale model."""
    records = [
        (l.name, l.weight_params, l.depth) for l in spec.parametric_layers()
    ]
    return spec.layer(_pick(records, tolerance))


def select_layer_model(model: Model, tolerance: float = 0.25) -> str:
    """Select the compression target node of a trainable proxy model.

    Bias parameters are excluded from the size criterion, mirroring the
    full-model policy (only the weight tensor is compressed).
    """
    records = []
    for depth, (name, layer) in enumerate(model.parametric_layers()):
        weight = layer.params()[0]
        records.append((name, weight.size, depth))
    return _pick(records, tolerance)


def select_multi(
    spec: ArchSpec,
    max_layers: int,
    min_depth_fraction: float = 0.5,
) -> list[LayerSpec]:
    """Greedy multi-layer selection (the paper's future-work extension).

    Chooses up to ``max_layers`` layers by descending parameter count,
    restricted to the deepest ``1 - min_depth_fraction`` of the network
    (the sensitivity analysis shows shallow layers are fragile).
    """
    if max_layers < 1:
        raise ValueError("max_layers must be >= 1")
    layers = spec.parametric_layers()
    if not layers:
        raise ValueError("model has no parametric layers")
    max_depth = max(l.depth for l in layers)
    depth_cut = min_depth_fraction * max_depth
    eligible = [l for l in layers if l.depth >= depth_cut]
    if not eligible:  # degenerate tiny models: fall back to the deepest
        eligible = [max(layers, key=lambda l: l.depth)]
    ranked = sorted(eligible, key=lambda l: l.weight_params, reverse=True)
    chosen = ranked[:max_layers]
    # report in network order
    order = {l.name: i for i, l in enumerate(spec.layers)}
    return sorted(chosen, key=lambda l: order[l.name])
