"""Disk outputs: ``trace.json`` + ``metrics.json`` (+ ``metrics.csv``).

One directory per observed run: the trace is Chrome trace-event JSON
(open in https://ui.perfetto.dev), the metrics are the registry's flat
snapshot rows as JSON and, for spreadsheet consumption, CSV.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path

__all__ = ["obs_dir_from_env", "write_outputs"]

#: environment variable naming the output directory (CLI ``--obs`` wins)
ENV_VAR = "REPRO_OBS"


def obs_dir_from_env() -> str | None:
    """The ``REPRO_OBS`` directory, or ``None`` when unset/empty."""
    return os.environ.get(ENV_VAR) or None


def _labels_csv(labels: dict) -> str:
    return ";".join(f"{k}={v}" for k, v in sorted(labels.items()))


def write_outputs(obs, directory: str | Path) -> Path:
    """Write ``trace.json``, ``metrics.json`` and ``metrics.csv``.

    Returns the directory (created if needed).  ``obs`` is an
    :class:`repro.obs.Obs`; its trace and metrics are dumped as-is, so
    call this after the observed work is complete.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / "trace.json", "w", encoding="utf-8") as f:
        json.dump(obs.trace.chrome(), f)

    rows = obs.metrics.snapshot()
    with open(directory / "metrics.json", "w", encoding="utf-8") as f:
        json.dump({"version": 1, "metrics": rows}, f, indent=1)

    with open(directory / "metrics.csv", "w", encoding="utf-8", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["name", "kind", "labels", "value", "count", "sum"])
        for row in rows:
            writer.writerow(
                [
                    row["name"],
                    row["kind"],
                    _labels_csv(row["labels"]),
                    row.get("value", ""),
                    row.get("count", ""),
                    row.get("sum", ""),
                ]
            )
    return directory
