"""Unified observability: metrics registry + span tracing.

The paper's claims are measurements, so the reproduction carries its
own measurement substrate.  One :class:`Obs` object bundles a
:class:`~repro.obs.registry.MetricsRegistry` (counters / gauges /
histograms with labels) and a :class:`~repro.obs.trace.Tracer` (spans
exported as Chrome trace-event JSON, loadable in Perfetto).

Instrumented code never takes an ``obs=`` parameter — it reads the
ambient context:

>>> import repro.obs as obs
>>> o = obs.Obs()
>>> with obs.use(o):
...     with obs.current().span("encode", cat="demo"):
...         obs.current().count("blobs")
>>> o.metrics.value("blobs")
1.0

The default context is :data:`NULL`, a disabled instance whose ``span``
returns a shared no-op context manager and whose metric methods return
without recording — the zero-overhead-when-disabled guard every hot
path relies on (the NoC simulator additionally gates its in-loop
counters on ``enabled``).

Cross-process propagation: :func:`capture` installs a fresh recording
``Obs`` (how a pool worker records under its own context), and
:meth:`Obs.export` / :meth:`Obs.adopt` move the recorded spans and
metric rows across a pickle boundary — the parent re-parents worker
spans onto per-task tracks and merges the metric rows in task order, so
a serial and a parallel run of the same grid produce identical metric
dumps (modulo wall-clock values; see
:func:`repro.obs.registry.is_time_metric`).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

from .export import obs_dir_from_env, write_outputs
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    is_time_metric,
)
from .trace import Tracer

__all__ = [
    "Obs",
    "NULL",
    "current",
    "enabled",
    "use",
    "capture",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "is_time_metric",
    "obs_dir_from_env",
    "write_outputs",
]


class _NullSpan:
    """Reusable no-op context manager (stateless, hence re-entrant)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class Obs:
    """One observation scope: a metrics registry plus a tracer.

    ``enabled=False`` builds the null instance: every recording method
    is a cheap early return, so instrumentation can stay unconditional
    at call sites.
    """

    def __init__(self, enabled: bool = True, pid: int | None = None) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.trace = Tracer(pid=pid)

    # -- recording ---------------------------------------------------------
    def span(self, name: str, cat: str = "repro", **args):
        if not self.enabled:
            return _NULL_SPAN
        return self.trace.span(name, cat=cat, **args)

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        if self.enabled:
            self.metrics.counter(name, **labels).add(value)

    def gauge(self, name: str, value: float, **labels) -> None:
        if self.enabled:
            self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        if self.enabled:
            self.metrics.histogram(name, **labels).observe(value)

    # -- cross-process transport ------------------------------------------
    def export(self) -> dict:
        """Picklable snapshot: recorded spans + metric rows."""
        return {"events": self.trace.events, "metrics": self.metrics.snapshot()}

    def adopt(
        self,
        exported: dict,
        tid: int | None = None,
        track_name: str | None = None,
        prefix: str = "",
        labels: dict | None = None,
    ) -> None:
        """Merge an :meth:`export` from another scope (typically a pool
        worker): spans re-parented onto track ``tid`` starting now,
        metric rows folded into this registry."""
        if not self.enabled:
            return
        self.trace.adopt(exported["events"], tid=tid, track_name=track_name)
        self.metrics.merge_rows(exported["metrics"], prefix=prefix, labels=labels)


#: the ambient default: disabled, records nothing
NULL = Obs(enabled=False)

_current: ContextVar[Obs] = ContextVar("repro_obs", default=NULL)


def current() -> Obs:
    """The ambient observation scope (:data:`NULL` unless installed)."""
    return _current.get()


def enabled() -> bool:
    return _current.get().enabled


@contextmanager
def use(obs: Obs):
    """Install ``obs`` as the ambient scope for the with-body."""
    token = _current.set(obs)
    try:
        yield obs
    finally:
        _current.reset(token)


@contextmanager
def capture():
    """Record the with-body under a fresh enabled scope.

    This is the worker-side half of cross-process span propagation:
    the task runs under its own ``Obs`` regardless of the ambient one,
    and the caller ships ``captured.export()`` back for the parent to
    :meth:`Obs.adopt`.  Used identically on the serial path so serial
    and parallel sweeps produce the same merged output.
    """
    with use(Obs()) as obs:
        yield obs
