"""Span tracer emitting Chrome trace-event JSON (Perfetto-loadable).

Spans are recorded as matched ``B``/``E`` duration events on a
``(pid, tid)`` track; timestamps are microseconds relative to the
tracer's creation (``perf_counter``-based, so NTP adjustments cannot
produce negative durations).  The export format is the Trace Event
JSON understood by ``chrome://tracing`` and https://ui.perfetto.dev —
``{"traceEvents": [...]}``.

Cross-process merging: a worker records spans on its own tracer,
ships ``tracer.events`` home (plain picklable dicts), and the parent
re-parents them with :meth:`Tracer.adopt` — pid/tid rewritten to a
track of the parent's choosing, timestamps shifted onto the parent's
timeline.  Track naming uses the standard ``process_name`` /
``thread_name`` metadata events.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

__all__ = ["Tracer"]

_ARG_TYPES = (str, int, float, bool, type(None))


def _jsonable(value):
    return value if isinstance(value, _ARG_TYPES) else repr(value)


class Tracer:
    """Appender of trace events on one ``(pid, tid)`` track."""

    def __init__(self, pid: int | None = None, tid: int = 0) -> None:
        self.pid = os.getpid() if pid is None else pid
        self.tid = tid
        self.events: list[dict] = []
        self._t0 = time.perf_counter()
        self._named_tracks: set[tuple[int, int, str]] = set()

    def now_us(self) -> float:
        """Microseconds since tracer creation (monotonic)."""
        return (time.perf_counter() - self._t0) * 1e6

    @contextmanager
    def span(self, name: str, cat: str = "repro", **args):
        """Record a ``B``/``E`` pair around the with-body."""
        event = {
            "ph": "B",
            "name": name,
            "cat": cat,
            "ts": self.now_us(),
            "pid": self.pid,
            "tid": self.tid,
        }
        if args:
            event["args"] = {k: _jsonable(v) for k, v in args.items()}
        self.events.append(event)
        try:
            yield
        finally:
            self.events.append(
                {
                    "ph": "E",
                    "name": name,
                    "cat": cat,
                    "ts": self.now_us(),
                    "pid": self.pid,
                    "tid": self.tid,
                }
            )

    def instant(self, name: str, cat: str = "repro", **args) -> None:
        event = {
            "ph": "i",
            "s": "t",
            "name": name,
            "cat": cat,
            "ts": self.now_us(),
            "pid": self.pid,
            "tid": self.tid,
        }
        if args:
            event["args"] = {k: _jsonable(v) for k, v in args.items()}
        self.events.append(event)

    # -- track naming ------------------------------------------------------
    def _name_track(self, meta: str, pid: int, tid: int, name: str) -> None:
        key = (pid, tid, meta)
        if key in self._named_tracks:
            return
        self._named_tracks.add(key)
        self.events.append(
            {
                "ph": "M",
                "name": meta,
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": name},
            }
        )

    def thread_name(self, tid: int, name: str, pid: int | None = None) -> None:
        self._name_track("thread_name", self.pid if pid is None else pid, tid, name)

    def process_name(self, pid: int, name: str) -> None:
        self._name_track("process_name", pid, 0, name)

    # -- cross-process merge ----------------------------------------------
    def adopt(
        self,
        events: list[dict],
        pid: int | None = None,
        tid: int | None = None,
        at_ts: float | None = None,
        track_name: str | None = None,
    ) -> None:
        """Re-parent foreign events onto this tracer's timeline.

        ``pid``/``tid`` override the originals (default: this tracer's
        pid, the events' own tids); timestamps are shifted so the
        earliest adopted event lands at ``at_ts`` (default: now).  The
        foreign events are copied, never mutated — the caller may hold
        other references.
        """
        if not events:
            return
        pid = self.pid if pid is None else pid
        base = min(e["ts"] for e in events if e.get("ph") != "M")
        shift = (self.now_us() if at_ts is None else at_ts) - base
        if track_name is not None and tid is not None:
            self.thread_name(tid, track_name, pid=pid)
        for e in events:
            e = dict(e)
            e["pid"] = pid
            if tid is not None:
                e["tid"] = tid
            if e.get("ph") != "M":
                e["ts"] = e["ts"] + shift
            self.events.append(e)

    def chrome(self) -> dict:
        """The Trace Event JSON document (Perfetto/chrome://tracing)."""
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}
