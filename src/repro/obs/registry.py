"""Label-aware metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` is a flat namespace of instruments keyed by
``(name, labels)``.  Three instrument kinds cover the repo's needs:

* :class:`Counter` — monotonically increasing float (``add``);
* :class:`Gauge` — last-written value (``set``);
* :class:`Histogram` — bucketed distribution (``observe``) with an
  exact ``count``/``sum`` alongside the bucket census.

Registries serialize to a deterministic row list (:meth:`MetricsRegistry.
snapshot`, sorted by name then labels) that is picklable and
JSON-ready — the unit of cross-process metric propagation: a pool worker
snapshots its registry, the parent merges the rows back with
:meth:`MetricsRegistry.merge_rows`.  Merging is commutative for
counters and histograms (sums) and last-writer-wins for gauges, so a
serial sweep and a parallel sweep of the same grid merge to identical
registries (modulo wall-clock-valued metrics, which by convention carry
a ``_seconds`` name suffix so consumers can exclude them from identity
comparisons).
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_SUFFIX",
    "is_time_metric",
]

#: naming convention for wall-clock-valued metrics (excluded from
#: serial-vs-parallel identity comparisons)
TIME_SUFFIX = "_seconds"

#: default histogram bucket upper bounds (seconds-flavored)
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


def is_time_metric(name: str) -> bool:
    """True for metrics whose values are wall-clock measurements."""
    return name.endswith(TIME_SUFFIX)


class Counter:
    """Monotonically increasing sum."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, value: float = 1.0) -> None:
        self.value += value

    def row(self) -> dict:
        return {"value": self.value}

    def merge_row(self, row: dict) -> None:
        self.value += row["value"]


class Gauge:
    """Last-written value (merge is last-writer-wins)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def row(self) -> dict:
        return {"value": self.value}

    def merge_row(self, row: dict) -> None:
        self.value = row["value"]


class Histogram:
    """Bucketed distribution with exact count and sum.

    ``buckets`` are ascending upper bounds; one implicit overflow bucket
    catches everything above the last bound.  Merging requires equal
    bounds and sums the per-bucket counts.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be strictly ascending: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def row(self) -> dict:
        les: list = [*self.bounds, "+Inf"]
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": [
                {"le": le, "count": c} for le, c in zip(les, self.counts)
            ],
        }

    def merge_row(self, row: dict) -> None:
        bounds = tuple(b["le"] for b in row["buckets"][:-1])
        if bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{bounds} vs {self.bounds}"
            )
        for i, b in enumerate(row["buckets"]):
            self.counts[i] += b["count"]
        self.count += row["count"]
        self.total += row["sum"]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create instrument store keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    @staticmethod
    def _key(name: str, labels: dict) -> tuple[str, tuple[tuple[str, str], ...]]:
        return name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))

    def _get(self, kind: type, name: str, labels: dict, **kwargs):
        key = self._key(name, labels)
        inst = self._metrics.get(key)
        if inst is None:
            inst = self._metrics[key] = kind(**kwargs)
        elif not isinstance(inst, kind):
            raise TypeError(
                f"metric {name!r}{dict(key[1])} is a {inst.kind}, "
                f"not a {kind.kind}"
            )
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- serialization / merging ------------------------------------------
    def snapshot(self) -> list[dict]:
        """Deterministic flat row list (sorted by name, then labels)."""
        rows = []
        for (name, labels), inst in sorted(self._metrics.items()):
            rows.append(
                {
                    "name": name,
                    "kind": inst.kind,
                    "labels": dict(labels),
                    **inst.row(),
                }
            )
        return rows

    def merge_rows(
        self,
        rows: list[dict],
        prefix: str = "",
        labels: dict | None = None,
    ) -> None:
        """Fold snapshot rows in: counters/histograms sum, gauges take
        the incoming value.  ``prefix``/``labels`` rename/re-label the
        incoming rows (e.g. scoping a sub-registry under ``sweep.`` or
        tagging every row with its experiment)."""
        for row in rows:
            row_labels = dict(row.get("labels", {}))
            if labels:
                row_labels.update(labels)
            kind = _KINDS[row["kind"]]
            kwargs = {}
            if kind is Histogram:
                kwargs["buckets"] = tuple(
                    b["le"] for b in row["buckets"][:-1]
                )
            inst = self._get(kind, prefix + row["name"], row_labels, **kwargs)
            inst.merge_row(row)

    def merge(
        self,
        other: "MetricsRegistry",
        prefix: str = "",
        labels: dict | None = None,
    ) -> None:
        self.merge_rows(other.snapshot(), prefix=prefix, labels=labels)

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Scalar value of a counter/gauge (``default`` when absent)."""
        inst = self._metrics.get(self._key(name, labels))
        return default if inst is None else inst.value
