"""Perf smoke: guard the NoC fast path against throughput regressions.

``BENCH_noc.json`` is the committed baseline: wall-clock for the two
characterization workloads on the recording host, before and after the
fast-path rework, plus a calibration constant (a fixed pure-Python spin
timed on the same host).  This test re-times the workloads and fails if
either runs more than 2x slower than the recorded post-rework time —
after scaling the budget by how much slower *this* host runs the
calibration spin, so a slow CI runner doesn't trip the guard and a fast
one doesn't mask a real regression.

The calibration spin deliberately shares no code with the simulator:
calibrating against the simulator itself would scale the budget up by
exactly the regression being hunted.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

import numpy as np

from repro.core.codecs import LineFitCodec, get_codec
from repro.core.provider import BlobProvider, provider_for
from repro.mapping import Accelerator
from repro.mapping.accelerator import AcceleratorConfig
from repro.noc import (
    Mesh,
    MemoryInterface,
    NocSimulator,
    PETask,
    ProcessingElement,
    ReadJob,
)
from repro.noc.patterns import characterize, transpose, uniform_random
from repro.nn import zoo

BASELINE_PATH = Path(__file__).parent / "BENCH_noc.json"
BASELINE = json.loads(BASELINE_PATH.read_text())

#: fail when a workload runs more than this factor slower than the
#: committed (machine-scaled) baseline
MAX_SLOWDOWN = 2.0


def _spin(n: int = 2_000_000) -> int:
    acc = 0
    for i in range(n):
        acc += i * i
    return acc


@pytest.fixture(scope="module")
def machine_scale() -> float:
    """This host's speed relative to the baseline-recording host."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        _spin()
        best = min(best, time.perf_counter() - t0)
    return best / BASELINE["calibration_seconds"]


def _budget(name: str, machine_scale: float) -> float:
    return BASELINE["benchmarks"][name]["post_seconds"] * machine_scale * MAX_SLOWDOWN


def _assert_within_budget(name, elapsed, machine_scale):
    budget = _budget(name, machine_scale)
    assert elapsed <= budget, (
        f"{name}: {elapsed:.3f}s exceeds {budget:.3f}s "
        f"(committed baseline {BASELINE['benchmarks'][name]['post_seconds']}s "
        f"x machine scale {machine_scale:.2f} x slowdown guard {MAX_SLOWDOWN}) — "
        f"the NoC fast path has regressed by more than {MAX_SLOWDOWN}x; "
        "if the slowdown is intentional, re-record benchmarks/BENCH_noc.json"
    )


def test_latency_sweep_throughput(benchmark, machine_scale):
    rates = (0.01, 0.03, 0.06, 0.10, 0.14)
    duration = BASELINE["duration"]

    def run():
        characterize(uniform_random, rates, duration=duration)
        characterize(transpose, rates, duration=duration)

    t0 = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    _assert_within_budget("noc_latency_sweep", time.perf_counter() - t0, machine_scale)


def _layer_hotspot_run(acc, layer, compression=None):
    sched = acc.schedule_layer(layer, compression=compression)
    sim = NocSimulator(Mesh(4, 4))
    mcs = {c: MemoryInterface(c) for c in sim.mesh.corner_ids()}
    for mc in mcs.values():
        sim.attach_node(mc)
    for pe_id, (w, i, o, comp, dec, macs) in sched.pe_work.items():
        pe = ProcessingElement(pe_id)
        pe.assign(
            PETask(
                w,
                i,
                o,
                sim.mesh.nearest_corner(pe_id),
                comp,
                dec,
                macs,
                streamed=sched.streamed,
            )
        )
        sim.attach_node(pe)
    for job in sched.dram_reads():
        mcs[job.mc].schedule_read(ReadJob(job.dsts, job.nbytes, job.traffic_class))
    return sim.run()


def test_layer_hotspot_throughput(benchmark, machine_scale):
    acc = Accelerator()
    layer = zoo.lenet5.full().layer("dense_1")

    t0 = time.perf_counter()
    benchmark.pedantic(lambda: _layer_hotspot_run(acc, layer), rounds=1, iterations=1)
    _assert_within_budget("noc_layer_hotspot", time.perf_counter() - t0, machine_scale)


def test_layer_hotspot_fused_throughput(benchmark, machine_scale):
    """The fused streamed-decode arm of the layer hotspot.

    Compressed weight flits plus decode/fetch overlap must keep this
    workload at least ``min_speedup_vs_seed`` times faster than the
    pre-rework (seed) materialized run — the roadmap's fused-kernel
    target — in addition to the usual slowdown guard on its own
    baseline.
    """
    acc = Accelerator(AcceleratorConfig(streamed_decode=True))
    spec = zoo.lenet5.full()
    layer = spec.layer("dense_1")
    blob = LineFitCodec(delta=0.05).encode(spec.materialize("dense_1").ravel())
    effect = acc.compression_effect(provider_for(blob))
    assert effect.streamed

    t0 = time.perf_counter()
    benchmark.pedantic(
        lambda: _layer_hotspot_run(acc, layer, compression=effect),
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - t0
    _assert_within_budget("noc_layer_hotspot_fused", elapsed, machine_scale)

    entry = BASELINE["benchmarks"]["noc_layer_hotspot_fused"]
    seed_budget = entry["pre_seconds"] * machine_scale / entry["min_speedup_vs_seed"]
    assert elapsed <= seed_budget, (
        f"fused layer run: {elapsed:.3f}s misses the "
        f"{entry['min_speedup_vs_seed']}x-over-seed target "
        f"({entry['pre_seconds']}s x machine scale {machine_scale:.2f} / "
        f"{entry['min_speedup_vs_seed']} = {seed_budget:.3f}s)"
    )


def test_decode_throughput(benchmark, machine_scale):
    """Per-codec decode bandwidth, materialized and streamed arms.

    Each codec must stay within ``MAX_SLOWDOWN`` of its committed MB/s
    on both arms (after machine scaling); a drop means the vectorized
    batch decoder or a provider cursor has regressed.
    """
    spec = BASELINE["decode_throughput"]
    weights = (
        np.random.default_rng(42)
        .standard_normal(spec["num_weights"])
        .astype(np.float32)
    )
    mb = weights.nbytes / 1e6
    tile = spec["tile_weights"]

    def measure():
        rates = {}
        for name in spec["codecs"]:
            codec = get_codec(name, delta_pct=10.0)
            blob = codec.encode(weights)
            t_mat = min(_timed(codec.decode, blob) for _ in range(2))

            def streamed():
                cur = BlobProvider(blob).cursor()
                while cur.remaining:
                    cur.read(tile)

            t_str = min(_timed(streamed) for _ in range(2))
            rates[name] = (mb / t_mat, mb / t_str)
        return rates

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, entry in spec["codecs"].items():
        for arm, measured in zip(("materialized_mbps", "streamed_mbps"), rates[name]):
            required = entry[arm] / (machine_scale * MAX_SLOWDOWN)
            assert measured >= required, (
                f"{name} {arm}: {measured:.1f} MB/s below the "
                f"{required:.1f} MB/s floor (committed {entry[arm]} MB/s / "
                f"machine scale {machine_scale:.2f} / slowdown guard "
                f"{MAX_SLOWDOWN}) — decode throughput has regressed; if "
                "intentional, re-record benchmarks/BENCH_noc.json"
            )


def _timed(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0
