"""Perf smoke: guard the NoC fast path against throughput regressions.

``BENCH_noc.json`` is the committed baseline: wall-clock for the two
characterization workloads on the recording host, before and after the
fast-path rework, plus a calibration constant (a fixed pure-Python spin
timed on the same host).  This test re-times the workloads and fails if
either runs more than 2x slower than the recorded post-rework time —
after scaling the budget by how much slower *this* host runs the
calibration spin, so a slow CI runner doesn't trip the guard and a fast
one doesn't mask a real regression.

The calibration spin deliberately shares no code with the simulator:
calibrating against the simulator itself would scale the budget up by
exactly the regression being hunted.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.mapping import Accelerator
from repro.noc import (
    Mesh,
    MemoryInterface,
    NocSimulator,
    PETask,
    ProcessingElement,
    ReadJob,
)
from repro.noc.patterns import characterize, transpose, uniform_random
from repro.nn import zoo

BASELINE_PATH = Path(__file__).parent / "BENCH_noc.json"
BASELINE = json.loads(BASELINE_PATH.read_text())

#: fail when a workload runs more than this factor slower than the
#: committed (machine-scaled) baseline
MAX_SLOWDOWN = 2.0


def _spin(n: int = 2_000_000) -> int:
    acc = 0
    for i in range(n):
        acc += i * i
    return acc


@pytest.fixture(scope="module")
def machine_scale() -> float:
    """This host's speed relative to the baseline-recording host."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        _spin()
        best = min(best, time.perf_counter() - t0)
    return best / BASELINE["calibration_seconds"]


def _budget(name: str, machine_scale: float) -> float:
    return BASELINE["benchmarks"][name]["post_seconds"] * machine_scale * MAX_SLOWDOWN


def _assert_within_budget(name, elapsed, machine_scale):
    budget = _budget(name, machine_scale)
    assert elapsed <= budget, (
        f"{name}: {elapsed:.3f}s exceeds {budget:.3f}s "
        f"(committed baseline {BASELINE['benchmarks'][name]['post_seconds']}s "
        f"x machine scale {machine_scale:.2f} x slowdown guard {MAX_SLOWDOWN}) — "
        f"the NoC fast path has regressed by more than {MAX_SLOWDOWN}x; "
        "if the slowdown is intentional, re-record benchmarks/BENCH_noc.json"
    )


def test_latency_sweep_throughput(benchmark, machine_scale):
    rates = (0.01, 0.03, 0.06, 0.10, 0.14)
    duration = BASELINE["duration"]

    def run():
        characterize(uniform_random, rates, duration=duration)
        characterize(transpose, rates, duration=duration)

    t0 = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    _assert_within_budget("noc_latency_sweep", time.perf_counter() - t0, machine_scale)


def test_layer_hotspot_throughput(benchmark, machine_scale):
    acc = Accelerator()
    layer = zoo.lenet5.full().layer("dense_1")

    def run():
        sched = acc.schedule_layer(layer)
        sim = NocSimulator(Mesh(4, 4))
        mcs = {c: MemoryInterface(c) for c in sim.mesh.corner_ids()}
        for mc in mcs.values():
            sim.attach_node(mc)
        for pe_id, (w, i, o, comp, dec, macs) in sched.pe_work.items():
            pe = ProcessingElement(pe_id)
            pe.assign(
                PETask(w, i, o, sim.mesh.nearest_corner(pe_id), comp, dec, macs)
            )
            sim.attach_node(pe)
        for job in sched.dram_reads():
            mcs[job.mc].schedule_read(ReadJob(job.dsts, job.nbytes, job.traffic_class))
        return sim.run()

    t0 = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    _assert_within_budget("noc_layer_hotspot", time.perf_counter() - t0, machine_scale)
