"""Architecture design-space sweeps around the paper's configuration.

The paper fixes one accelerator design point (4x4 mesh, 8 KB local
memories, corner MCs).  These sweeps show how the headline result —
memory-bound inference, compression savings proportional to weight
traffic — responds to the main architectural knobs, using the
transaction model plus the CACTI-style memory estimator.
"""

from __future__ import annotations


from repro.analysis.report import render_table
from repro.core import compress_percent
from repro.energy import estimate_sram
from repro.mapping import Accelerator, AcceleratorConfig
from repro.noc.memory_if import DramConfig
from repro.nn import zoo


def test_local_memory_sweep(benchmark, save_artifact):
    """Bigger local memories cut conv-layer refetch traffic (under the
    conservative banded model), at a CACTI-predicted cost per access."""
    spec = zoo.lenet5.full()

    def sweep():
        rows = []
        for kb in (4, 8, 16, 32):
            from repro.noc.pe import PEConfig

            acc = Accelerator(
                AcceleratorConfig(
                    pe=PEConfig(local_memory_bytes=kb * 1024),
                    refetch_model="banded",  # expose the SRAM sensitivity
                )
            )
            res = acc.run_model(spec, mode="txn")
            sram = estimate_sram(kb * 1024)
            rows.append(
                [
                    f"{kb} KB",
                    res.total_latency.total,
                    f"{res.total_energy.total * 1e6:.2f}",
                    f"{sram.energy_per_byte * 1e12:.2f}",
                    f"{sram.leakage_w * 1e3:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact(
        "sweep_local_memory",
        render_table(
            ["local mem", "latency (cyc)", "energy (uJ)",
             "SRAM pJ/B (CACTI)", "SRAM leak mW"],
            rows,
            title="Sweep — PE local memory size (LeNet-5)",
        ),
    )
    lats = [r[1] for r in rows]
    assert lats == sorted(lats, reverse=True)  # more SRAM, less refetch


def test_dram_bandwidth_sweep(benchmark, save_artifact):
    """Memory-bound inference: latency ~ 1/bandwidth until the NoC or
    compute floor appears."""
    spec = zoo.lenet5.full()

    def sweep():
        rows = []
        for bw in (4.0, 8.0, 16.0, 32.0):
            acc = Accelerator(
                AcceleratorConfig(dram=DramConfig(bandwidth_bytes_per_cycle=bw))
            )
            res = acc.run_model(spec, mode="txn")
            t = res.total_latency
            rows.append([f"{bw:.0f} B/cyc", t.total, t.memory, t.communication, t.computation])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact(
        "sweep_dram_bandwidth",
        render_table(
            ["DRAM bw", "total", "memory", "comm", "compute"],
            rows,
            title="Sweep — main-memory bandwidth (LeNet-5)",
        ),
    )
    totals = [r[1] for r in rows]
    assert totals == sorted(totals, reverse=True)
    # memory-bound at the paper's 8 B/cyc point
    assert rows[1][2] > rows[1][3] + rows[1][4]


def test_mesh_size_sweep(benchmark, save_artifact):
    """More PEs cut compute time but the memory wall stays."""
    spec = zoo.lenet5.full()

    def sweep():
        rows = []
        for dim in (4, 6, 8):
            acc = Accelerator(AcceleratorConfig(mesh_width=dim, mesh_height=dim))
            res = acc.run_model(spec, mode="txn")
            t = res.total_latency
            pes = dim * dim - 4
            rows.append([f"{dim}x{dim} ({pes} PEs)", t.total, t.memory, t.computation])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact(
        "sweep_mesh_size",
        render_table(
            ["mesh", "total", "memory", "compute"],
            rows,
            title="Sweep — mesh size (LeNet-5, 4 corner MCs)",
        ),
    )
    compute = [r[3] for r in rows]
    assert compute == sorted(compute, reverse=True)


def test_compression_savings_vs_bandwidth(benchmark, save_artifact):
    """The compression win shrinks as memory bandwidth grows — the
    technique matters most exactly where the paper positions it
    (bandwidth-starved edge accelerators)."""
    spec = zoo.lenet5.full()
    w = spec.materialize("dense_1").ravel()
    stream = compress_percent(w, 15.0)

    def sweep():
        rows = []
        for bw in (4.0, 8.0, 32.0):
            acc = Accelerator(
                AcceleratorConfig(dram=DramConfig(bandwidth_bytes_per_cycle=bw))
            )
            base = acc.run_model(spec, mode="txn").total_latency.total
            eff = acc.compression_effect(stream)
            comp = acc.run_model(spec, {"dense_1": eff}, mode="txn").total_latency.total
            rows.append([f"{bw:.0f} B/cyc", base, comp, f"{1 - comp / base:.1%}"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact(
        "sweep_savings_vs_bandwidth",
        render_table(
            ["DRAM bw", "base latency", "compressed", "saving"],
            rows,
            title="Sweep — compression saving vs memory bandwidth (delta=15%)",
        ),
    )
    savings = [float(r[3].rstrip("%")) for r in rows]
    assert savings[0] >= savings[-1]


def test_batch_size_sweep(benchmark, save_artifact):
    """Batching amortizes weight traffic, so the compression win shrinks
    as the batch grows — single-inference edge workloads (the paper's
    target) benefit the most."""
    spec = zoo.lenet5.full()
    w = spec.materialize("dense_1").ravel()
    stream = compress_percent(w, 15.0)
    acc = Accelerator()
    eff = acc.compression_effect(stream)

    def sweep():
        rows = []
        for batch in (1, 4, 16):
            base = acc.run_model(spec, mode="txn", batch=batch).total_latency.total
            comp = acc.run_model(
                spec, {"dense_1": eff}, mode="txn", batch=batch
            ).total_latency.total
            rows.append(
                [batch, base, comp, f"{1 - comp / base:.1%}"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact(
        "sweep_batch_size",
        render_table(
            ["batch", "base latency", "compressed", "saving"],
            rows,
            title="Sweep — compression saving vs batch size (LeNet-5, delta=15%)",
        ),
    )
    savings = [float(r[3].rstrip("%")) for r in rows]
    assert savings == sorted(savings, reverse=True)
