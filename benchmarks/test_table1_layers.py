"""Bench: regenerate Tab. I (selected-layer parameter fractions)."""

from __future__ import annotations

from repro.experiments import table1_layers


def test_table1_layers(benchmark, save_artifact):
    rows = benchmark.pedantic(table1_layers.run, rounds=1, iterations=1)
    save_artifact("table1_layers", table1_layers.render(rows))

    by_model = {r.model: r for r in rows}
    for model, (params_k, layer, kind, fraction) in table1_layers.PAPER.items():
        r = by_model[model]
        assert r.layer == layer, model
        assert r.params_k == __import__("pytest").approx(params_k, rel=0.05)
        assert abs(r.fraction - fraction) < 0.06
