"""Bench: regenerate Fig. 2 (LeNet-5 latency/energy breakdown)."""

from __future__ import annotations

from repro.experiments import fig2_breakdown


def test_fig2_breakdown(benchmark, fast_mode, save_artifact):
    result = benchmark.pedantic(
        lambda: fig2_breakdown.run(fast=fast_mode), rounds=1, iterations=1
    )
    save_artifact("fig2_breakdown", fig2_breakdown.render(result))

    # reproduction assertions: the paper's qualitative claims
    total = result.total_latency
    assert total.memory > total.communication + total.computation
    energy = result.total_energy
    assert energy.component_total("main_mem") > 0.5 * energy.total
    by_layer = {l.layer_name: l.latency.total for l in result.layers}
    assert max(by_layer, key=by_layer.get) == "dense_1"
