"""Fleet chaos benchmark: availability and recovery under fault load.

``BENCH_fleet.json`` is the committed baseline.  One campaign, run
end to end against real worker processes:

* **steady state** — 3 replicas, closed-loop load, no faults: every
  request Ok, throughput guarded through the calibration-spin machine
  scale (the fleet adds IPC + routing on top of the in-process service,
  so this has its own baseline, not ``BENCH_serve.json``'s).
* **chaos campaign** — the same fleet under load while the campaign
  SIGKILLs one replica and bit-flips the archive file before killing a
  second (which restarts onto the damaged bytes and serves degraded).
  The guarded properties are the robustness acceptance criteria: zero
  silent drops, availability >= the floor, both replicas restarted,
  degraded replies carry damage reports, recovery bounded.

The absolute-throughput guard is deliberately loose (MAX_SLOWDOWN 2x):
the interesting regressions here are availability cliffs and recovery
stalls, which are machine-independent.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import pytest

from repro.resilience.chaos import ChaosEvent, run_campaign
from repro.runtime.pool import RunPolicy
from repro.serve.demo import (
    BENCH_INPUT_SHAPE,
    bench_archive_model,
    demo_inputs,
    save_bench_archive,
)
from repro.serve.fleet import FleetConfig, ReplicaFleet, ReplicaSpec

BASELINE_PATH = Path(__file__).parent / "BENCH_fleet.json"
BASELINE = json.loads(BASELINE_PATH.read_text())

MAX_SLOWDOWN = 2.0
DEADLINE_S = 1.0
REPLICAS = 3
CONCURRENCY = 8


def _spin(n: int = 2_000_000) -> int:
    acc = 0
    for i in range(n):
        acc += i * i
    return acc


@pytest.fixture(scope="module")
def machine_scale() -> float:
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        _spin()
        best = min(best, time.perf_counter() - t0)
    return best / BASELINE["calibration_seconds"]


def _fleet(tmp_path):
    path = save_bench_archive(tmp_path / "bench-fleet.npz")
    spec = ReplicaSpec(
        factory=bench_archive_model,
        factory_kwargs={"path": str(path), "on_fault": "zero"},
    )
    config = FleetConfig(
        replicas=REPLICAS,
        probe_interval_s=0.1,
        policy=RunPolicy(timeout=DEADLINE_S),
        restart_policy=RunPolicy(
            backoff=0.05, max_backoff=0.5, jitter=True, jitter_seed=0
        ),
    )
    return ReplicaFleet(spec, config), path


def test_fleet_steady_state_throughput(
    benchmark, machine_scale, fast_mode, save_artifact
):
    """3 healthy replicas: all Ok, throughput above the scaled floor."""
    entry = BASELINE["benchmarks"]["fleet_steady"]
    duration = 2.0 if fast_mode else 5.0

    def measure():
        async def go():
            import tempfile

            with tempfile.TemporaryDirectory() as td:
                fleet, _ = _fleet(Path(td))
                async with fleet:
                    return await run_campaign(
                        fleet,
                        demo_inputs(32, BENCH_INPUT_SHAPE),
                        duration_s=duration,
                        concurrency=CONCURRENCY,
                        deadline=DEADLINE_S,
                    )

        return asyncio.run(go())

    res = benchmark.pedantic(measure, rounds=1, iterations=1)
    rps = res.total / res.elapsed_s
    save_artifact(
        "fleet_steady_state",
        "\n".join(
            [
                f"fleet: steady state ({REPLICAS} replicas, "
                f"concurrency {CONCURRENCY}, {duration:.0f}s)",
                f"  requests      {res.total}  ({rps:,.0f} rps)",
                f"  ok            {res.ok}",
                f"  availability  {res.availability:.4f}",
                f"  untyped       {res.untyped}",
            ]
        ),
    )
    assert res.untyped == 0
    assert res.availability >= entry["min_availability"]
    required = entry["fleet_rps"] / (machine_scale * MAX_SLOWDOWN)
    assert rps >= required, (
        f"fleet throughput {rps:,.0f} rps below the {required:,.0f} rps floor "
        f"(committed {entry['fleet_rps']} rps / machine scale "
        f"{machine_scale:.2f} / slowdown guard {MAX_SLOWDOWN}) — the "
        "routing/IPC path has regressed; if intentional, re-record "
        "benchmarks/BENCH_fleet.json"
    )


def test_fleet_chaos_campaign(benchmark, machine_scale, fast_mode, save_artifact):
    """Kill + corrupt under load: the acceptance criteria, measured."""
    entry = BASELINE["benchmarks"]["fleet_chaos"]
    duration = 6.0 if fast_mode else 10.0

    def measure():
        async def go():
            import tempfile

            with tempfile.TemporaryDirectory() as td:
                fleet, path = _fleet(Path(td))
                events = (
                    ChaosEvent(at=duration * 0.2, kind="kill", target=0),
                    ChaosEvent(at=duration * 0.45, kind="corrupt", target=1),
                )
                async with fleet:
                    return await run_campaign(
                        fleet,
                        demo_inputs(32, BENCH_INPUT_SHAPE),
                        duration_s=duration,
                        concurrency=CONCURRENCY,
                        events=events,
                        archive_path=path,
                        deadline=DEADLINE_S,
                    )

        return asyncio.run(go())

    res = benchmark.pedantic(measure, rounds=1, iterations=1)
    rps = res.total / res.elapsed_s
    save_artifact(
        "fleet_chaos_campaign",
        "\n".join(
            [
                f"fleet: chaos campaign ({REPLICAS} replicas, kill + "
                f"corrupt-archive kill, {duration:.0f}s under load)",
                f"  requests      {res.total}  ({rps:,.0f} rps)",
                f"  ok            {res.ok}  (degraded {res.degraded_ok})",
                f"  availability  {res.availability:.4f} "
                f"(floor {entry['min_availability']})",
                f"  untyped       {res.untyped}",
                f"  by_status     {res.by_status}",
                f"  restarts      {res.restarts}",
                f"  recovery      {res.recovery_s:.2f}s "
                f"(bound {entry['max_recovery_s']}s)"
                if res.recovery_s is not None
                else "  recovery      DID NOT RECOVER",
                f"  corrupted     {sorted(res.corrupted_digests)}",
            ]
        ),
    )
    # -- the acceptance criteria ------------------------------------------
    # 1. zero silent drops: every request got exactly one typed reply
    assert res.untyped == 0, f"untyped outcomes: {res.by_status}"
    # 2. availability floor under kill + corruption
    assert res.availability >= entry["min_availability"], res.by_status
    # 3. both faulted replicas restarted within the campaign
    assert res.restarts >= 2
    # 4. the replica on the damaged archive served, and said so
    assert res.degraded_ok >= 1, "no degraded Ok replies with damage reports"
    # 5. recovery completed within the bound (machine-scaled)
    bound = entry["max_recovery_s"] * max(machine_scale, 1.0)
    assert res.recovery_s is not None, "fleet never became whole again"
    assert res.recovery_s <= bound, (
        f"recovery took {res.recovery_s:.2f}s, bound {bound:.2f}s"
    )
