"""Benchmark-harness configuration.

Every ``test_*`` module here regenerates one table or figure of the
paper (plus ablation studies), prints it paper-style, and saves it
under ``benchmarks/out/``.  Timings are collected with
pytest-benchmark; the *content* of the regenerated artifact is the
point, the timing is a bonus.

By default the heavy experiments run in reduced ("fast") form so the
whole suite completes in minutes; set ``REPRO_FULL=1`` for the
full-fidelity run used in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def pytest_configure(config):
    if os.environ.get("REPRO_FULL", "") in ("", "0"):
        os.environ.setdefault("REPRO_FAST", "1")
    OUT_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def fast_mode() -> bool:
    return os.environ.get("REPRO_FAST", "") not in ("", "0")


@pytest.fixture
def save_artifact():
    """Print a rendered table/figure and persist it to benchmarks/out/."""

    def _save(name: str, text: str) -> None:
        print("\n" + text)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _save
