"""Serving saturation benchmark: batching throughput and degradation.

``BENCH_serve.json`` is the committed baseline.  Two workloads:

* **batched vs serial** — the same closed-loop client at concurrency 1
  (every batch is a single request: pure service overhead per reply)
  and at high concurrency (batches fill, overhead amortizes).  The
  guarded ratio is machine-independent; the absolute batched
  throughput is additionally guarded through the calibration-spin
  machine scale, like the NoC baselines.
* **saturation sweep** — offered load swept past the knee (closed-loop
  concurrency ramp against a small admission queue).  Past the knee
  the service must *degrade, not collapse*: every request still gets a
  typed reply, admitted p99 stays under the deadline, and the overflow
  shows up as explicit shed replies.

The model is the tiny bench MLP on purpose: its ~10 µs forward makes
per-request *service* overhead (event-loop round trip, queueing,
dispatch) the dominant cost, which is exactly what micro-batching
amortizes and therefore what this benchmark must be sensitive to.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.runtime.pool import RunPolicy
from repro.serve import InferenceService, Ok, ServeConfig
from repro.serve.demo import BENCH_INPUT_SHAPE, bench_model, demo_inputs

BASELINE_PATH = Path(__file__).parent / "BENCH_serve.json"
BASELINE = json.loads(BASELINE_PATH.read_text())

#: fail when throughput drops more than this factor below the committed
#: (machine-scaled) baseline
MAX_SLOWDOWN = 2.0

#: per-request deadline used by every workload (admitted p99 must stay
#: under this — the service discards later results as typed errors)
DEADLINE_S = 1.0


def _spin(n: int = 2_000_000) -> int:
    acc = 0
    for i in range(n):
        acc += i * i
    return acc


@pytest.fixture(scope="module")
def machine_scale() -> float:
    """This host's speed relative to the baseline-recording host."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        _spin()
        best = min(best, time.perf_counter() - t0)
    return best / BASELINE["calibration_seconds"]


def _percentile(xs: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(xs), q)) if xs else float("nan")


async def _closed_loop(
    served, total: int, concurrency: int, max_queue: int
) -> tuple[list, float, InferenceService]:
    """``concurrency`` workers submit ``total`` requests back to back."""
    config = ServeConfig(
        max_batch=32,
        max_queue=max_queue,
        policy=RunPolicy(timeout=DEADLINE_S),
    )
    svc = InferenceService(served, config)
    xs = demo_inputs(64, BENCH_INPUT_SHAPE)
    replies: list = []

    async def worker(k: int) -> None:
        for j in range(k, total, concurrency):
            replies.append(await svc.submit(xs[j % len(xs)]))

    async with svc:
        t0 = time.perf_counter()
        await asyncio.gather(*(worker(k) for k in range(concurrency)))
        elapsed = time.perf_counter() - t0
    return replies, elapsed, svc


def _run(served, total, concurrency, max_queue=128):
    return asyncio.run(_closed_loop(served, total, concurrency, max_queue))


def test_batched_vs_serial_throughput(
    benchmark, machine_scale, fast_mode, save_artifact
):
    """Micro-batching must amortize service overhead >= the committed ratio."""
    served = bench_model()
    total = 600 if fast_mode else 4000
    entry = BASELINE["benchmarks"]["serve_batched"]

    def measure():
        serial_replies, serial_s, _ = _run(served, total, concurrency=1)
        batched_replies, batched_s, svc = _run(served, total, concurrency=64)
        return serial_replies, serial_s, batched_replies, batched_s, svc

    serial_replies, serial_s, batched_replies, batched_s, svc = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )
    assert all(isinstance(r, Ok) for r in serial_replies)
    assert all(isinstance(r, Ok) for r in batched_replies)

    serial_rps = total / serial_s
    batched_rps = total / batched_s
    ratio = batched_rps / serial_rps
    mean_batch = svc.ok / svc.batches
    lat = [r.latency_s for r in batched_replies]
    save_artifact(
        "serve_batched_vs_serial",
        "\n".join(
            [
                "serve: batched vs serial closed-loop throughput",
                f"  requests          {total}",
                f"  serial            {serial_rps:,.0f} rps (batch size 1)",
                f"  batched (c=64)    {batched_rps:,.0f} rps "
                f"(mean batch {mean_batch:.1f})",
                f"  speedup           {ratio:.2f}x "
                f"(floor {entry['min_speedup_vs_serial']}x)",
                f"  batched latency   p50={_percentile(lat, 50) * 1e3:.2f}ms "
                f"p99={_percentile(lat, 99) * 1e3:.2f}ms",
            ]
        ),
    )

    # bit-identity: batched replies == direct serial forwards, bitwise
    xs = demo_inputs(64, BENCH_INPUT_SHAPE)
    for i, r in enumerate(batched_replies[: len(xs)]):
        assert np.array_equal(r.output, served.forward(xs[i % len(xs)])), (
            "batched serving output diverged from serial execution"
        )

    # p99 of admitted requests stays under the deadline
    assert _percentile(lat, 99) <= DEADLINE_S

    # the machine-independent ratio floor (the headline guard)
    assert ratio >= entry["min_speedup_vs_serial"], (
        f"batched/serial = {ratio:.2f}x is below the "
        f"{entry['min_speedup_vs_serial']}x floor — micro-batching is no "
        "longer amortizing service overhead; if intentional, re-record "
        "benchmarks/BENCH_serve.json"
    )

    # absolute floor, scaled to this host
    required = entry["batched_rps"] / (machine_scale * MAX_SLOWDOWN)
    assert batched_rps >= required, (
        f"batched throughput {batched_rps:,.0f} rps below the "
        f"{required:,.0f} rps floor (committed {entry['batched_rps']} rps / "
        f"machine scale {machine_scale:.2f} / slowdown guard {MAX_SLOWDOWN}) "
        "— the serving path has regressed; if intentional, re-record "
        "benchmarks/BENCH_serve.json"
    )


def test_saturation_sweep(benchmark, fast_mode, save_artifact):
    """Past the knee: typed degradation, bounded admitted latency."""
    served = bench_model()
    levels = BASELINE["saturation"]["concurrency_levels"]
    max_queue = BASELINE["saturation"]["max_queue"]
    per_level = 400 if fast_mode else 2000

    def measure():
        rows = []
        for c in levels:
            replies, elapsed, svc = _run(
                served, per_level, concurrency=c, max_queue=max_queue
            )
            ok_lat = [r.latency_s for r in replies if isinstance(r, Ok)]
            rows.append(
                {
                    "concurrency": c,
                    "replies": len(replies),
                    "ok": svc.ok,
                    "shed": svc.shed,
                    "expired": svc.deadline_expired + svc.deadline_exceeded,
                    "ok_rps": svc.ok / elapsed,
                    "p50_ms": _percentile(ok_lat, 50) * 1e3,
                    "p99_ms": _percentile(ok_lat, 99) * 1e3,
                    "p99_s": _percentile(ok_lat, 99),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        "serve: saturation sweep (closed loop, "
        f"max_queue={max_queue}, deadline={DEADLINE_S}s)",
        f"  {'conc':>5} {'ok_rps':>9} {'p50_ms':>7} {'p99_ms':>7} "
        f"{'ok':>6} {'shed':>6} {'expired':>7}",
    ]
    for r in rows:
        lines.append(
            f"  {r['concurrency']:>5} {r['ok_rps']:>9,.0f} {r['p50_ms']:>7.2f} "
            f"{r['p99_ms']:>7.2f} {r['ok']:>6} {r['shed']:>6} {r['expired']:>7}"
        )
    save_artifact("serve_saturation", "\n".join(lines))

    for r in rows:
        # zero silent drops: every request resolved to a typed reply
        assert r["replies"] == per_level
        assert r["ok"] + r["shed"] + r["expired"] == per_level, (
            f"c={r['concurrency']}: "
            f"{per_level - r['ok'] - r['shed'] - r['expired']} requests "
            "got no typed outcome"
        )
        # admitted requests meet their deadline (or get typed errors)
        if r["ok"]:
            assert r["p99_s"] <= DEADLINE_S, (
                f"c={r['concurrency']}: admitted p99 {r['p99_s']:.3f}s "
                f"exceeds the {DEADLINE_S}s deadline"
            )
    # the ramp actually crossed the knee: the top level sheds
    assert rows[-1]["shed"] > 0, (
        "saturation sweep never saturated — raise the concurrency ramp "
        "or shrink max_queue in BENCH_serve.json"
    )
    # and the service survived it: still serving at the top level
    assert rows[-1]["ok"] > 0
