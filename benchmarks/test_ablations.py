"""Ablation benches for the design choices called out in DESIGN.md."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import render_table
from repro.core import (
    StorageFormat,
    compress,
    compress_percent,
    select_multi,
    weighted_ratio,
)
from repro.mapping import Accelerator, AcceleratorConfig
from repro.nn import zoo


class TestWeakVsStrictMonotonicity:
    """DESIGN.md ablation 1: the tolerance threshold is what rescues the
    adversarial streams of the paper's Fig. 5."""

    def test_adversarial_stream(self, benchmark, save_artifact):
        rng = np.random.default_rng(0)
        n = 100_000
        # pairwise-alternating worst case, Fig. 5a
        adversarial = (np.arange(n) * 0.01 + (np.arange(n) % 2) * 0.5).astype(np.float32)
        gaussian = rng.normal(size=n).astype(np.float32)

        def sweep():
            return [
                [name, f"{pct}%", compress_percent(w, pct).compression_ratio]
                for name, w in (("adversarial", adversarial), ("gaussian", gaussian))
                for pct in (0, 5, 15, 30)
            ]

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        save_artifact(
            "ablation_weak_vs_strict",
            render_table(["stream", "delta", "CR"], rows,
                         title="Ablation — strict (delta=0) vs weak monotonicity"),
        )
        by = {(r[0], r[1]): r[2] for r in rows}
        # strict sense on the adversarial stream: CR pinned near 1
        assert by[("adversarial", "0%")] == pytest.approx(1.0, abs=0.05)
        # the weak sense recovers it spectacularly (one long ramp)
        assert by[("adversarial", "30%")] > 100


class TestDecompressorThroughput:
    """DESIGN.md ablation 3: decompression units per PE."""

    def test_units_sweep(self, benchmark, save_artifact):
        spec = zoo.lenet5.full()
        weights = spec.materialize("dense_1").ravel()
        stream = compress_percent(weights, 15.0)

        def sweep():
            rows = []
            for units in (1, 2, 4, 8):
                acc = Accelerator(AcceleratorConfig(decompressor_units=units))
                eff = acc.compression_effect(stream)
                res = acc.run_model(spec, {"dense_1": eff}, mode="txn")
                rows.append([units, res.total_latency.computation,
                             res.total_latency.total])
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        save_artifact(
            "ablation_decompressor_units",
            render_table(["units/PE", "compute cycles", "total cycles"], rows,
                         title="Ablation — decompression units per PE (delta=15%)"),
        )
        compute = [r[1] for r in rows]
        assert compute == sorted(compute, reverse=True)


class TestStorageFormatOverhead:
    """DESIGN.md ablation 4: bytes per segment set the delta=0 CR."""

    def test_format_sweep(self, benchmark, save_artifact):
        w = np.random.default_rng(1).normal(size=500_000).astype(np.float32)

        formats = {
            "f32+f32+u16 (10B)": StorageFormat(4, 4, 4, 2),
            "f24+f24+u16 (8B, default)": StorageFormat(),
            "f16+f16+u16 (6B)": StorageFormat(4, 2, 2, 2),
        }

        def sweep():
            rows = []
            for name, fmt in formats.items():
                cs = compress(w, 0.0, fmt=fmt)
                rows.append([name, cs.compression_ratio, cs.mse(w)])
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        save_artifact(
            "ablation_storage_format",
            render_table(["format", "CR @ delta=0", "MSE"], rows,
                         title="Ablation — segment storage format"),
        )
        by = {r[0]: r for r in rows}
        assert by["f24+f24+u16 (8B, default)"][1] == pytest.approx(1.21, abs=0.02)
        # cheaper coefficients: better CR, worse MSE
        assert by["f16+f16+u16 (6B)"][1] > by["f32+f32+u16 (10B)"][1]
        assert by["f16+f16+u16 (6B)"][2] > by["f32+f32+u16 (10B)"][2]


class TestMultiLayerSelection:
    """DESIGN.md ablation 5 / the paper's future work: compressing
    multiple deep layers lifts the weighted CR of the Amdahl-limited
    models."""

    def test_resnet_multi_layer(self, benchmark, save_artifact):
        spec = zoo.resnet50.full()

        def sweep():
            rows = []
            for k in (1, 2, 4, 8):
                chosen = select_multi(spec, max_layers=k)
                compressed_params = sum(l.weight_params for l in chosen)
                # assume each chosen layer compresses at the fc1000 delta=6% CR
                wcr = weighted_ratio(spec.total_params, compressed_params, 6.0)
                rows.append([k, compressed_params / spec.total_params, wcr])
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        save_artifact(
            "ablation_multi_layer",
            render_table(
                ["layers", "param fraction", "weighted CR (layer CR=6)"],
                rows,
                title="Ablation — multi-layer selection on ResNet50 (future work)",
            ),
        )
        wcrs = [r[2] for r in rows]
        assert wcrs == sorted(wcrs)
        assert wcrs[-1] > 1.5 * wcrs[0]


class TestTransactionModelAgreement:
    """DESIGN.md ablation 2: transaction model vs flit-level truth."""

    def test_agreement_sweep(self, benchmark, save_artifact):
        acc = Accelerator()
        spec = zoo.lenet5.full()

        def sweep():
            rows = []
            flit = acc.run_model(spec, mode="flit")
            txn = acc.run_model(spec, mode="txn")
            for lf, lt in zip(flit.layers, txn.layers):
                ratio = lt.latency.total / lf.latency.total
                rows.append([lf.layer_name, lf.latency.total, lt.latency.total, ratio])
            rows.append(
                ["TOTAL", flit.total_latency.total, txn.total_latency.total,
                 txn.total_latency.total / flit.total_latency.total]
            )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        save_artifact(
            "ablation_txn_vs_flit",
            render_table(["layer", "flit cycles", "txn cycles", "txn/flit"], rows,
                         title="Ablation — transaction model vs flit-level simulator"),
        )
        total_ratio = rows[-1][3]
        assert 0.85 < total_ratio < 1.25
        for r in rows[:-1]:
            assert 0.7 < r[3] < 1.5, r[0]


class TestRoutingAlgorithms:
    """Routing ablation: XY vs YX vs partially adaptive west-first
    under the transpose pattern (the classic case where dimension-order
    routing concentrates load and adaptivity helps)."""

    def test_routing_sweep(self, benchmark, save_artifact):
        from repro.noc.patterns import characterize, transpose

        rate = 0.10

        def sweep():
            rows = []
            for name in ("xy", "yx", "west-first"):
                from repro.noc.mesh import Mesh

                pts = characterize(
                    transpose,
                    [rate],
                    mesh_factory=lambda n=name: Mesh(4, 4, routing=n),
                    duration=1500,
                )
                rows.append([name, f"{pts[0].mean_latency:.1f}",
                             f"{pts[0].throughput:.3f}"])
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        save_artifact(
            "ablation_routing",
            render_table(
                ["routing", "mean latency", "throughput"],
                rows,
                title=f"Ablation — routing algorithm, transpose traffic @ {rate} flits/node/cycle",
            ),
        )
        by = {r[0]: float(r[1]) for r in rows}
        # the adaptive algorithm should not be significantly worse than
        # the best dimension-order variant on this pattern
        assert by["west-first"] <= 1.5 * min(by["xy"], by["yx"])


class TestStaticVsDemandScheduling:
    """DESIGN.md ablation 8: pre-programmed memory interfaces vs
    PE-issued request packets.  Demand mode pays the request round trip
    and loses both the shared-ifmap DRAM read and chunked streaming
    (a whole requested block is read before the first flit ships)."""

    def test_scheduling_modes(self, benchmark, save_artifact):
        spec = zoo.lenet5.full()

        def sweep():
            rows = []
            for demand in (False, True):
                acc = Accelerator(AcceleratorConfig(demand_mode=demand))
                res = acc.run_model(spec, mode="flit")
                t = res.total_latency
                rows.append(
                    ["demand" if demand else "static", t.total, t.memory,
                     t.communication]
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        save_artifact(
            "ablation_scheduling",
            render_table(
                ["scheduling", "total cycles", "memory", "comm"],
                rows,
                title="Ablation — static vs demand-driven memory scheduling (LeNet-5)",
            ),
        )
        static, demand = rows[0][1], rows[1][1]
        assert demand > static            # the round trips are not free
        assert demand < 2.5 * static      # but the cost stays bounded


class TestVirtualChannels:
    """VC-count ablation under mixed worm/short traffic: more VCs cut
    the latency of short packets stuck behind long worms."""

    def test_vc_sweep(self, benchmark, save_artifact):
        from repro.noc.patterns import characterize, uniform_random
        from repro.noc.mesh import Mesh

        rate = 0.10

        def sweep():
            rows = []
            for vcs in (1, 2, 4):
                pts = characterize(
                    uniform_random,
                    [rate],
                    mesh_factory=lambda v=vcs: Mesh(4, 4, buffer_depth=2, num_vcs=v),
                    duration=1500,
                    payload_bytes=96,
                )
                rows.append([vcs, f"{pts[0].mean_latency:.1f}", f"{pts[0].throughput:.3f}"])
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        save_artifact(
            "ablation_virtual_channels",
            render_table(
                ["VCs", "mean latency", "throughput"],
                rows,
                title=f"Ablation — virtual channels, uniform traffic @ {rate}",
            ),
        )
        lats = [float(r[1]) for r in rows]
        assert lats[-1] <= lats[0]  # VCs never hurt at this load
