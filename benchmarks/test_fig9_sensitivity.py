"""Bench: regenerate Fig. 9 (per-layer sensitivity)."""

from __future__ import annotations

from repro.experiments import fig9_sensitivity


def test_fig9_sensitivity(benchmark, fast_mode, save_artifact):
    results = benchmark.pedantic(
        lambda: fig9_sensitivity.run(fast=fast_mode), rounds=1, iterations=1
    )
    save_artifact("fig9_sensitivity", fig9_sensitivity.render(results))

    for r in results:
        values = dict(r.normalized)
        # the selection-policy justification: the first conv layer is
        # more sensitive than the deep layer the policy selects
        first_conv = r.normalized[0]
        assert first_conv[0].startswith("conv")
        selected = {"LeNet-5": "dense_1", "AlexNet": "dense_2"}[r.model]
        assert values[first_conv[0]] >= values[selected]
