"""Bench: regenerate Fig. 3 (entropy of weights vs random vs text)."""

from __future__ import annotations

from repro.experiments import fig3_entropy
from repro.nn import zoo


def test_fig3_entropy(benchmark, fast_mode, save_artifact):
    result = benchmark.pedantic(
        lambda: fig3_entropy.run(fast=fast_mode), rounds=1, iterations=1
    )
    save_artifact("fig3_entropy", fig3_entropy.render(result))

    # weights look like random data (within 1 bit/byte), text does not
    for module in zoo.ALL_MODELS:
        assert result[module.NAME] > result["random"] - 1.0
        assert result[module.NAME] > result["text"] + 2.0
    assert result["random"] > 7.9
    assert result["text"] < 5.0
