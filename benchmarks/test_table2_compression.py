"""Bench: regenerate Tab. II (compression efficiency sweeps)."""

from __future__ import annotations

import pytest

from repro.experiments import table2_compression


def test_table2_compression(benchmark, fast_mode, save_artifact):
    sweeps = benchmark.pedantic(
        lambda: table2_compression.run(fast=fast_mode), rounds=1, iterations=1
    )
    save_artifact("table2_compression", table2_compression.render(sweeps))

    for sweep in sweeps:
        paper = table2_compression.PAPER[sweep.model]
        crs = [r.cr for r in sweep.reports]
        # CR grows monotonically with delta, starting at the 1.21 anchor
        assert crs == sorted(crs)
        assert crs[0] == pytest.approx(1.21, abs=0.03)
        for r in sweep.reports:
            expected_cr = paper[r.delta_pct][0]
            # shape reproduction: within 35% of the paper at every delta
            assert r.cr == pytest.approx(expected_cr, rel=0.35), (
                sweep.model,
                r.delta_pct,
            )
            assert r.weighted_cr <= r.cr + 1e-9
        # Amdahl behaviour: small-fraction models stay below wCR 2.2
        if sweep.model in ("MobileNet", "Inception-v3", "ResNet50"):
            assert max(r.weighted_cr for r in sweep.reports) < 2.2
