"""Microbenchmarks of the performance-critical kernels.

These are true pytest-benchmark timings (multiple rounds) for the inner
loops everything else is built on: segmentation, line fitting,
decompression, convolution and the NoC cycle loop.  They guard against
performance regressions in the vectorized kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compression import compress
from repro.core.decompressor import decompress_accumulate
from repro.core.linefit import fit_segments
from repro.core.segmentation import segment_boundaries
from repro.nn.layers import Conv2D
from repro.noc import Mesh, NocSimulator, Packet, TrafficClass
from repro.noc.simulator import Node


@pytest.fixture(scope="module")
def stream():
    return np.random.default_rng(0).normal(size=1_000_000).astype(np.float32)


def test_segmentation_throughput(benchmark, stream):
    """Greedy weak-monotonic segmentation of 1M weights."""
    boundaries = benchmark(segment_boundaries, stream, 0.1)
    assert boundaries[-1] == stream.size


def test_linefit_throughput(benchmark, stream):
    boundaries = segment_boundaries(stream, 0.1)
    m, q = benchmark(fit_segments, stream, boundaries)
    assert m.size == boundaries.size - 1


def test_compress_end_to_end(benchmark, stream):
    cs = benchmark(compress, stream, 0.2)
    assert cs.num_weights == stream.size


def test_decompress_vectorized(benchmark, stream):
    cs = compress(stream, 0.2)
    out = benchmark(cs.decompress)
    assert out.size == stream.size


def test_decompress_hw_accumulator(benchmark, stream):
    cs = compress(stream[:100_000], 0.3)
    out = benchmark(decompress_accumulate, cs)
    assert out.size == 100_000


def test_conv2d_forward(benchmark):
    rng = np.random.default_rng(0)
    conv = Conv2D(16, 32, 3, padding=1, rng=rng)
    x = rng.normal(size=(8, 16, 28, 28)).astype(np.float32)
    y = benchmark(conv.forward, x)
    assert y.shape == (8, 32, 28, 28)


def test_noc_cycle_rate(benchmark):
    """Flit-level simulation of a 12-flow transfer burst."""

    def run():
        sim = NocSimulator(Mesh(4, 4))

        class Sink(Node):
            pass

        class Src(Node):
            def __init__(self, node_id, dst):
                super().__init__(node_id)
                self.dst = dst
                self.sent = False

            def step(self, cycle):
                if not self.sent:
                    self.send(
                        Packet(self.node_id, self.dst, 1024, TrafficClass.WEIGHTS),
                        cycle,
                    )
                    self.sent = True

            @property
            def idle(self):
                return self.sent

        for corner in (0, 3, 12, 15):
            sim.attach_node(Sink(corner))
        for pe in Mesh(4, 4).pe_ids():
            sim.attach_node(Src(pe, [0, 3, 12, 15][pe % 4]))
        return sim.run().cycles

    cycles = benchmark(run)
    assert cycles > 0
