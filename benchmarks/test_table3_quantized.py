"""Bench: regenerate Tab. III (compression on top of int8 quantization)."""

from __future__ import annotations

from repro.experiments import table3_quantized


def test_table3_quantized(benchmark, fast_mode, save_artifact):
    results = benchmark.pedantic(
        lambda: table3_quantized.run(fast=fast_mode), rounds=1, iterations=1
    )
    save_artifact("table3_quantized", table3_quantized.render(results))

    for r in results:
        # quantization alone compresses ~2-4x
        assert 1.5 < r.qt_weighted_cr < 4.5
        # stacking the proposed compression buys further footprint at
        # small delta without hurting accuracy much
        first = r.rows[0]
        assert first.accuracy >= r.qt_accuracy - 0.05
        wcrs = [row.weighted_cr for row in r.rows]
        assert wcrs == sorted(wcrs)
        assert wcrs[-1] > r.qt_weighted_cr
