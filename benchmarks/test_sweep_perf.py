"""Perf smoke: guard the sharded sweep runtime's coordination costs.

``BENCH_sweep.json`` is the committed baseline: wall-clock for a
12-task bench grid on the recording host under the in-process pool and
under the sharded runtime, plus the same calibration spin constant the
NoC baseline uses.  Three guards:

* a cold one-worker sharded run stays within its machine-scaled budget
  *and* within ``max_overhead_vs_serial`` of a plain serial
  ``run_tasks`` measured in the same session — lease files, heartbeats,
  done markers and the assembly pass must stay cheap;
* two cold workers beat one by ``min_speedup_vs_one_worker``.  This is
  only physically expressible on multi-core hardware, and the recording
  host exposed a single CPU (measured 0.95x there), so the assertion is
  enforced when ``os.cpu_count() >= 2`` and skipped otherwise — the
  coordination and byte-identity checks still run everywhere;
* resuming a completed sweep costs at most ``max_fraction_of_cold`` of
  the cold run: every shard must short-circuit on its done marker.

Every timed arm also cross-checks byte identity of the produced result
set against the serial reference — a sweep runtime that got faster by
dropping or reordering results is not faster.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.runtime import ResultCache, run_tasks
from repro.runtime.grids import bench_grid, bench_point
from repro.runtime.shard import results_digest, run_sharded

BASELINE_PATH = Path(__file__).parent / "BENCH_sweep.json"
BASELINE = json.loads(BASELINE_PATH.read_text())

#: fail when an arm runs more than this factor slower than the
#: committed (machine-scaled) baseline
MAX_SLOWDOWN = 2.0


def _spin(n: int = 2_000_000) -> int:
    acc = 0
    for i in range(n):
        acc += i * i
    return acc


@pytest.fixture(scope="module")
def machine_scale() -> float:
    """This host's speed relative to the baseline-recording host."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        _spin()
        best = min(best, time.perf_counter() - t0)
    return best / BASELINE["calibration_seconds"]


@pytest.fixture(scope="module")
def grid():
    g = BASELINE["grid"]
    # warm numpy's kernels and allocator before anything is timed: the
    # first arm to run otherwise pays first-touch costs the later arms
    # don't, skewing the overhead ratio
    bench_point(seed=0, n=g["n"], reps=2)
    return bench_grid(size=g["size"], n=g["n"], reps=g["reps"])


def _cold_sharded(grid, root: Path, workers: int) -> tuple[float, ResultCache]:
    cache = ResultCache(root=root, enabled=True)
    t0 = time.perf_counter()
    run_sharded(
        grid,
        BASELINE["grid"]["shards"],
        cache=cache,
        workers=workers,
        lease_ttl=10.0,
        poll=0.01,
    )
    return time.perf_counter() - t0, cache


@pytest.fixture(scope="module")
def cold_one(grid, tmp_path_factory):
    """One cold one-worker sharded run, shared by the tests below."""
    seconds, cache = _cold_sharded(
        grid, tmp_path_factory.mktemp("sweep-one"), workers=1
    )
    return {"seconds": seconds, "cache": cache}


def _assert_within_budget(name, elapsed, machine_scale):
    budget = BASELINE["benchmarks"][name]["seconds"] * machine_scale * MAX_SLOWDOWN
    assert elapsed <= budget, (
        f"{name}: {elapsed:.3f}s exceeds {budget:.3f}s "
        f"(committed baseline {BASELINE['benchmarks'][name]['seconds']}s "
        f"x machine scale {machine_scale:.2f} x slowdown guard {MAX_SLOWDOWN}) — "
        "the sharded sweep runtime has regressed; if the slowdown is "
        "intentional, re-record benchmarks/BENCH_sweep.json"
    )


def test_sweep_one_worker_overhead(benchmark, machine_scale, grid, cold_one, tmp_path):
    """Sharding one worker over N shards must cost ~nothing vs serial."""
    serial_cache = ResultCache(root=tmp_path / "serial", enabled=True)
    t0 = time.perf_counter()
    benchmark.pedantic(
        lambda: run_tasks(grid, jobs=1, cache=serial_cache), rounds=1, iterations=1
    )
    serial = time.perf_counter() - t0

    _assert_within_budget("sweep_one_worker_cold", cold_one["seconds"], machine_scale)
    assert results_digest(grid, cold_one["cache"]) == results_digest(
        grid, serial_cache
    ), "sharded one-worker result set is not byte-identical to serial"

    max_overhead = BASELINE["benchmarks"]["sweep_one_worker_cold"][
        "max_overhead_vs_serial"
    ]
    assert cold_one["seconds"] <= serial * max_overhead, (
        f"one-worker sharded run {cold_one['seconds']:.3f}s is more than "
        f"{max_overhead}x the serial run {serial:.3f}s measured on this host — "
        "lease/marker/assembly overhead has regressed"
    )


def test_sweep_two_worker_speedup(benchmark, machine_scale, grid, cold_one, tmp_path):
    """Two cold workers over a shared lease dir approach 2x on 2+ cores."""
    t0 = time.perf_counter()
    two_cache = benchmark.pedantic(
        lambda: _cold_sharded(grid, tmp_path / "two-a", workers=2)[1],
        rounds=1,
        iterations=1,
    )
    two = time.perf_counter() - t0

    _assert_within_budget("sweep_two_worker_cold", two, machine_scale)
    assert results_digest(grid, two_cache) == results_digest(
        grid, cold_one["cache"]
    ), "two-worker result set is not byte-identical to one-worker"

    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            "two-worker speedup needs >=2 CPUs to be physically expressible; "
            "coordination and byte identity verified above"
        )

    min_speedup = BASELINE["benchmarks"]["sweep_two_worker_cold"][
        "min_speedup_vs_one_worker"
    ]
    speedup = cold_one["seconds"] / two
    if speedup < min_speedup:
        # one retry absorbs scheduler noise on loaded CI runners: re-time
        # both arms back to back and take the cleaner ratio
        one_r, _ = _cold_sharded(grid, tmp_path / "one-b", workers=1)
        two_r, _ = _cold_sharded(grid, tmp_path / "two-b", workers=2)
        speedup = max(speedup, one_r / two_r)
    assert speedup >= min_speedup, (
        f"two cold workers are only {speedup:.2f}x faster than one "
        f"(target {min_speedup}x, {os.cpu_count()} CPUs) — shard claiming is "
        "serializing the workers; if intentional, re-record "
        "benchmarks/BENCH_sweep.json"
    )


def test_sweep_resume_overhead(grid, cold_one):
    """Re-running a finished sweep must short-circuit on done markers."""
    t0 = time.perf_counter()
    run_sharded(
        grid,
        BASELINE["grid"]["shards"],
        cache=cold_one["cache"],
        workers=1,
        lease_ttl=10.0,
        poll=0.01,
    )
    resume = time.perf_counter() - t0

    max_fraction = BASELINE["benchmarks"]["sweep_resume"]["max_fraction_of_cold"]
    assert resume <= cold_one["seconds"] * max_fraction, (
        f"resuming a completed sweep took {resume:.3f}s — more than "
        f"{max_fraction:.0%} of the {cold_one['seconds']:.3f}s cold run; "
        "done markers are not short-circuiting shard work"
    )
