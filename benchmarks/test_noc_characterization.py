"""Bench: NoC simulator characterization (latency vs load, hotspots).

Not a paper artifact per se — this validates the NoC substrate the way
Noxim itself is validated, so that the paper's latency results rest on
a credible interconnect model.
"""

from __future__ import annotations

from repro.analysis.linkstats import link_utilization, render_link_report
from repro.analysis.report import render_table
from repro.mapping import Accelerator
from repro.noc.patterns import characterize, transpose, uniform_random
from repro.nn import zoo


def test_latency_vs_load_curves(benchmark, save_artifact):
    rates = (0.01, 0.03, 0.06, 0.10, 0.14)

    def run():
        uni = characterize(uniform_random, rates, duration=1200)
        tra = characterize(transpose, rates, duration=1200)
        return uni, tra

    uni, tra = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{p.injection_rate:.2f}", f"{p.mean_latency:.1f}", f"{p.throughput:.3f}",
         f"{t.mean_latency:.1f}", f"{t.throughput:.3f}"]
        for p, t in zip(uni, tra)
    ]
    save_artifact(
        "noc_characterization",
        render_table(
            ["inj rate", "uniform lat", "uniform thr", "transpose lat", "transpose thr"],
            rows,
            title="NoC characterization — latency/throughput vs offered load (4x4 mesh)",
        ),
    )
    # the canonical shape: latency monotone in load, low-load latency small
    lats = [p.mean_latency for p in uni]
    assert lats == sorted(lats)
    assert lats[0] < 40
    # below saturation, delivered throughput tracks offered load
    assert abs(uni[0].throughput - rates[0]) / rates[0] < 0.4


def test_link_hotspots_around_memory_corners(benchmark, save_artifact):
    """During a real layer, the hottest links neighbor the MC corners."""
    acc = Accelerator()
    spec = zoo.lenet5.full()
    layer = spec.layer("dense_1")

    def run():

        sched = acc.schedule_layer(layer)
        # run flit-level manually to keep the stats object
        from repro.noc import (
            Mesh,
            MemoryInterface,
            NocSimulator,
            PETask,
            ProcessingElement,
            ReadJob,
        )

        sim = NocSimulator(Mesh(4, 4))
        mcs = {c: MemoryInterface(c) for c in sim.mesh.corner_ids()}
        for mc in mcs.values():
            sim.attach_node(mc)
        for pe_id, (w, i, o, comp, dec, macs) in sched.pe_work.items():
            pe = ProcessingElement(pe_id)
            pe.assign(PETask(w, i, o, sim.mesh.nearest_corner(pe_id), comp, dec, macs))
            sim.attach_node(pe)
        for job in sched.dram_reads():
            mcs[job.mc].schedule_read(ReadJob(job.dsts, job.nbytes, job.traffic_class))
        stats = sim.run()
        return stats, sim.mesh

    stats, mesh = benchmark.pedantic(run, rounds=1, iterations=1)
    links = link_utilization(stats, mesh)
    save_artifact("noc_link_hotspots", render_link_report(links))
    corners = set(mesh.corner_ids())
    hottest = links[:4]
    assert all(l.src in corners or l.dst in corners for l in hottest)
