"""Benches for the paper's extension/future-work features.

* multi-layer compression with per-layer delta selection (Sec. V
  future work, implemented in ``repro.core.multilayer``);
* stacking on magnitude pruning (Sec. I contribution 2);
* lossless-baseline comparison (Sec. III-B motivation).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.entropy import english_like_text
from repro.analysis.report import render_table
from repro.baselines import huffman_ratio, lz_ratio, rle_ratio
from repro.core import compress_percent
from repro.core.multilayer import optimize_multilayer
from repro.core.pruning import prune_magnitude, pruned_footprint_bytes
from repro.experiments.common import trained_proxy
from repro.nn import zoo


def test_multilayer_optimizer(benchmark, fast_mode, save_artifact):
    """Future work: multi-layer delta assignment under an accuracy budget."""
    model, split = trained_proxy(zoo.lenet5, fast=fast_mode)
    spec = zoo.lenet5.full()

    def run():
        rows = []
        for budget in (0.02, 0.05, 0.10):
            plan = optimize_multilayer(
                model,
                spec,
                split.x_test,
                split.y_test,
                max_accuracy_drop=budget,
            )
            rows.append(
                [
                    f"{budget:.0%}",
                    ", ".join(f"{k}@{v:.0f}%" for k, v in plan.assignments.items())
                    or "(none)",
                    f"{plan.footprint_reduction:.1%}",
                    f"{plan.accuracy_drop:.4f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "extension_multilayer",
        render_table(
            ["accuracy budget", "assignments", "footprint reduction", "measured drop"],
            rows,
            title="Extension — multi-layer compression (paper future work), LeNet-5",
        ),
    )
    # reductions grow with the budget; every measured drop stays within it
    reductions = [float(r[2].rstrip("%")) for r in rows]
    assert reductions == sorted(reductions)
    for r in rows:
        assert float(r[3]) <= float(r[0].rstrip("%")) / 100 + 1e-9


def test_pruning_stacking(benchmark, save_artifact):
    """Contribution 2: the compressor applies on top of pruning."""
    spec = zoo.lenet5.full()
    w = spec.materialize("dense_1").ravel()

    def run():
        rows = []
        for sparsity in (0.0, 0.5, 0.8, 0.9):
            pt = prune_magnitude(w, sparsity)
            stream = compress_percent(pt.values, 15.0)
            rows.append(
                [
                    f"{sparsity:.0%}",
                    f"{pruned_footprint_bytes(pt):,}",
                    f"{stream.compressed_bytes:,}",
                    f"{stream.compression_ratio:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "extension_pruning_stacking",
        render_table(
            ["sparsity", "bitmap+values bytes", "compressed bytes", "CR (delta=15%)"],
            rows,
            title="Extension — compression on top of magnitude pruning (dense_1)",
        ),
    )
    crs = [float(r[3]) for r in rows]
    assert crs == sorted(crs)  # more sparsity, longer zero runs, better CR
    assert crs[-1] > 1.8 * crs[0]


def test_lossless_baselines_fail_on_weights(benchmark, save_artifact):
    """Sec. III-B, quantified: RLE/Huffman/LZ vs the proposed compressor."""
    spec = zoo.lenet5.full()
    w = spec.materialize("dense_1").ravel()
    wbytes = np.ascontiguousarray(w).view(np.uint8).tobytes()
    text = english_like_text(len(wbytes) // 4)

    def run():
        return [
            ["RLE", f"{rle_ratio(wbytes):.3f}", f"{rle_ratio(text):.3f}"],
            ["Huffman", f"{huffman_ratio(wbytes):.3f}", f"{huffman_ratio(text):.3f}"],
            ["LZSS", f"{lz_ratio(wbytes):.3f}", f"{lz_ratio(text):.3f}"],
            [
                "proposed (delta=15%, lossy)",
                f"{compress_percent(w, 15.0).compression_ratio:.3f}",
                "-",
            ],
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "extension_lossless_baselines",
        render_table(
            ["compressor", "CR on weights", "CR on text"],
            rows,
            title="Motivation — traditional compressors vs the weight stream",
        ),
    )
    for name, cr_w, _ in rows[:3]:
        assert float(cr_w) < 1.25, name
    assert float(rows[3][1]) > 2.0


def test_activation_compression(benchmark, fast_mode, save_artifact):
    """Extension: the codec on activation streams — high CRs thanks to
    ReLU zero runs, but real accuracy cost even at delta=0, supporting
    the paper's weights-only design choice."""
    from repro.core.activation_compression import (
        activation_cr_profile,
        evaluate_with_compressed_activations,
    )
    from repro.nn.train import evaluate

    model, split = trained_proxy(zoo.lenet5, fast=fast_mode)
    base = evaluate(model, split.x_test, split.y_test).top1

    def run():
        rows = []
        for delta in (0.0, 1.0, 3.0):
            profiles = activation_cr_profile(
                model, split.x_test[:64], delta_pct=delta
            )
            mean_cr = float(np.mean([p.cr for p in profiles]))
            acc = evaluate_with_compressed_activations(
                model, split.x_test, split.y_test, delta_pct=delta
            )
            rows.append([f"{delta:.0f}%", f"{mean_cr:.2f}", f"{acc:.4f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "extension_activation_compression",
        render_table(
            ["delta", "mean activation CR", "top-1"],
            rows,
            title=f"Extension — activation-stream compression (LeNet-5, "
            f"baseline {base:.4f})",
        ),
    )
    # high compressibility (zero runs) but accuracy already pays at 0%
    assert float(rows[0][1]) > 1.5
    assert float(rows[0][2]) < base
