"""Bench: regenerate Fig. 10 (accuracy vs latency vs energy, 6 models)."""

from __future__ import annotations

from repro.experiments import fig10_tradeoff


def test_fig10_tradeoff(benchmark, fast_mode, save_artifact):
    results = benchmark.pedantic(
        lambda: fig10_tradeoff.run(fast=fast_mode), rounds=1, iterations=1
    )
    save_artifact("fig10_tradeoff", fig10_tradeoff.render(results))
    save_artifact("fig10_breakdowns", fig10_tradeoff.render_detail(results))

    by_model = {r.model: r for r in results}
    for r in results:
        lats = [p.norm_latency for p in r.points]
        ens = [p.norm_energy for p in r.points]
        # latency and energy fall monotonically with delta
        assert lats == sorted(lats, reverse=True), r.model
        assert ens == sorted(ens, reverse=True), r.model
        assert lats[-1] < 1.0 and ens[-1] < 1.0

    # compressing a large-fraction layer buys much more than a small one
    for big in ("LeNet-5", "AlexNet", "VGG-16"):
        for small in ("MobileNet", "Inception-v3", "ResNet50"):
            assert (
                by_model[big].points[-1].norm_latency
                < by_model[small].points[-1].norm_latency
            )

    # accuracy stays near baseline at the smallest delta
    for r in results:
        assert r.points[0].accuracy >= r.baseline_accuracy - 0.05
