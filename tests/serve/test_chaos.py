"""Chaos campaigns (``-m chaos``): the fleet's guarantees under fire.

Excluded from the default tier-1 run (each campaign holds multi-second
load against real subprocesses); CI runs them in a dedicated step with
``pytest -m chaos``.  The assertions here are the PR's acceptance
criteria verbatim: zero silent drops, availability above the floor,
bounded recovery, degraded serving with damage reports.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.resilience.chaos import ChaosEvent, corrupt_archive, run_campaign
from repro.runtime.pool import RunPolicy
from repro.serve.demo import (
    BENCH_INPUT_SHAPE,
    bench_archive_model,
    demo_inputs,
    save_bench_archive,
)
from repro.serve.fleet import FleetConfig, ReplicaFleet, ReplicaSpec

pytestmark = pytest.mark.chaos

AVAILABILITY_FLOOR = 0.90
RECOVERY_BOUND_S = 10.0


def run(coro):
    return asyncio.run(coro)


def fleet_for(tmp_path, replicas=3, **kw):
    path = save_bench_archive(tmp_path / "chaos.npz")
    spec = ReplicaSpec(
        factory=bench_archive_model,
        factory_kwargs={"path": str(path), "on_fault": "zero"},
    )
    kw.setdefault("probe_interval_s", 0.1)
    kw.setdefault("policy", RunPolicy(timeout=1.0))
    kw.setdefault(
        "restart_policy",
        RunPolicy(backoff=0.05, max_backoff=0.5, jitter=True, jitter_seed=0),
    )
    return ReplicaFleet(spec, FleetConfig(replicas=replicas, **kw)), path


class TestKillCampaign:
    def test_kill_one_replica_under_load(self, tmp_path):
        fleet, _ = fleet_for(tmp_path)

        async def go():
            async with fleet:
                return await run_campaign(
                    fleet,
                    demo_inputs(32, BENCH_INPUT_SHAPE),
                    duration_s=5.0,
                    concurrency=8,
                    events=(ChaosEvent(at=1.0, kind="kill", target=0),),
                    deadline=1.0,
                )

        res = run(go())
        assert res.untyped == 0, f"silent drops: {res.by_status}"
        assert res.availability >= AVAILABILITY_FLOOR, res.by_status
        assert res.restarts >= 1
        assert res.recovery_s is not None and res.recovery_s <= RECOVERY_BOUND_S

    def test_repeated_kills_all_recover(self, tmp_path):
        fleet, _ = fleet_for(tmp_path)

        async def go():
            async with fleet:
                return await run_campaign(
                    fleet,
                    demo_inputs(32, BENCH_INPUT_SHAPE),
                    duration_s=6.0,
                    concurrency=8,
                    events=(
                        ChaosEvent(at=1.0, kind="kill", target=0),
                        ChaosEvent(at=2.5, kind="kill", target=1),
                        ChaosEvent(at=4.0, kind="kill", target=2),
                    ),
                    deadline=1.0,
                )

        res = run(go())
        assert res.untyped == 0
        assert res.availability >= AVAILABILITY_FLOOR
        assert res.restarts >= 3
        assert res.recovery_s is not None and res.recovery_s <= RECOVERY_BOUND_S


class TestHangCampaign:
    def test_sigstopped_replica_detected_and_replaced(self, tmp_path):
        fleet, _ = fleet_for(
            tmp_path, probe_timeout_s=0.5, fail_threshold=2
        )

        async def go():
            async with fleet:
                return await run_campaign(
                    fleet,
                    demo_inputs(32, BENCH_INPUT_SHAPE),
                    duration_s=6.0,
                    concurrency=8,
                    events=(ChaosEvent(at=1.0, kind="hang", target=0),),
                    deadline=1.0,
                )

        res = run(go())
        assert res.untyped == 0
        assert res.availability >= AVAILABILITY_FLOOR
        # the hang is invisible to is_alive(); only probing catches it
        assert res.restarts >= 1
        assert res.recovery_s is not None and res.recovery_s <= RECOVERY_BOUND_S


class TestCorruptionCampaign:
    def test_corrupted_archive_serves_degraded_with_report(self, tmp_path):
        fleet, path = fleet_for(tmp_path)

        async def go():
            async with fleet:
                return await run_campaign(
                    fleet,
                    demo_inputs(32, BENCH_INPUT_SHAPE),
                    duration_s=6.0,
                    concurrency=8,
                    events=(
                        ChaosEvent(at=1.0, kind="kill", target=0),
                        ChaosEvent(at=2.0, kind="corrupt", target=1),
                    ),
                    archive_path=path,
                    deadline=1.0,
                )

        res = run(go())
        assert res.untyped == 0
        assert res.availability >= AVAILABILITY_FLOOR
        assert res.restarts >= 2
        # the replica that restarted onto damaged bytes answered Ok
        # with damage metadata attached
        assert res.degraded_ok >= 1
        assert "dense_1" in res.corrupted_digests
        assert res.recovery_s is not None and res.recovery_s <= RECOVERY_BOUND_S

    def test_corruption_is_seeded_and_reproducible(self, tmp_path):
        a = save_bench_archive(tmp_path / "a.npz")
        b = save_bench_archive(tmp_path / "b.npz")
        assert corrupt_archive(a, seed=11) == corrupt_archive(b, seed=11)
        c = save_bench_archive(tmp_path / "c.npz")
        assert corrupt_archive(c, seed=12) != corrupt_archive(a, seed=11)
