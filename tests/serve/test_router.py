"""FleetRouter + CircuitBreaker: retry, hedge, breaker state machine.

The router is deliberately duck-typed over replica handles, so these
tests drive it with in-process fakes — no sockets, no subprocesses, no
real time beyond short deadlines.  The breaker runs on an injected
clock and never sleeps.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.runtime.pool import RunPolicy
from repro.serve.fleet import FleetConfig
from repro.serve.replies import DeadlineExceeded, Failed, Ok, Overloaded
from repro.serve.router import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, FleetRouter


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker(clock=FakeClock())
        assert b.state == CLOSED and b.allow()

    def test_trips_open_at_threshold(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=3, clock=clock)
        for _ in range(2):
            b.record_failure()
        assert b.state == CLOSED
        b.record_failure()
        assert b.state == OPEN and b.trips == 1
        assert not b.allow()

    def test_success_resets_failure_streak(self):
        b = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CLOSED  # streak broken: 1+1 non-consecutive

    def test_half_open_after_reset_window(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, reset_after=5.0, clock=clock)
        b.record_failure()
        assert not b.allow()
        clock.advance(4.9)
        assert not b.allow()
        clock.advance(0.2)
        assert b.allow()  # the transition itself
        assert b.state == HALF_OPEN

    def test_half_open_trial_success_closes(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, reset_after=1.0, clock=clock)
        b.record_failure()
        clock.advance(1.0)
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED and b.failures == 0

    def test_half_open_trial_failure_reopens_with_fresh_clock(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, reset_after=1.0, clock=clock)
        b.record_failure()
        clock.advance(1.0)
        assert b.allow()
        b.record_failure()
        assert b.state == OPEN
        clock.advance(0.5)
        assert not b.allow()  # the cooldown restarted at the trial failure
        clock.advance(0.5)
        assert b.allow()

    def test_reset_restores_pristine_closed(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, clock=clock)
        b.record_failure()
        b.reset()
        assert b.state == CLOSED and b.failures == 0 and b.allow()

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_after"):
            CircuitBreaker(reset_after=0)


class FakeClient:
    """Scripted replica client: pops the next behaviour per request."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    async def request(self, doc, timeout):
        self.calls += 1
        action = self.script.pop(0) if self.script else "ok"
        if action == "ok":
            return {
                "status": "ok",
                "output": [1.0],
                "latency_s": 0.001,
                "batch_size": 1,
            }
        if action == "degraded":
            return {
                "status": "ok",
                "output": [0.0],
                "latency_s": 0.001,
                "batch_size": 1,
                "degraded": {"dense_1": {"action": "zero-fill"}},
            }
        if action == "failed":
            return {"status": "failed", "error": "scripted failure"}
        if action == "overloaded":
            return {"status": "overloaded", "queue_depth": 9}
        if action == "conn":
            raise ConnectionError("scripted transport death")
        if isinstance(action, float):
            await asyncio.sleep(action)
            return {
                "status": "ok",
                "output": [2.0],
                "latency_s": action,
                "batch_size": 1,
            }
        raise AssertionError(f"unknown script action {action!r}")


class FakeReplica:
    def __init__(self, index, script=(), ready=True):
        self.index = index
        self.client = FakeClient(script)
        self.breaker = CircuitBreaker(failure_threshold=5, clock=FakeClock())
        self.ready = ready

    def available(self):
        return self.ready and self.breaker.allow()


def router_for(replicas, **cfg):
    cfg.setdefault("replicas", max(len(replicas), 1))
    cfg.setdefault("policy", RunPolicy(timeout=5.0))
    config = FleetConfig(**cfg)
    return FleetRouter(lambda: replicas, config)


X = np.zeros(4, np.float32)


class TestRouting:
    def test_ok_first_try(self):
        reps = [FakeReplica(0), FakeReplica(1)]
        router = router_for(reps)
        reply = run(router.submit(X))
        assert isinstance(reply, Ok)
        assert router.requests == 1 and router.ok == 1 and router.retries == 0

    def test_round_robin_spreads_load(self):
        reps = [FakeReplica(0), FakeReplica(1)]
        router = router_for(reps)

        async def many():
            for _ in range(10):
                await router.submit(X)

        run(many())
        assert reps[0].client.calls > 0 and reps[1].client.calls > 0

    def test_failed_retries_on_other_replica(self):
        reps = [FakeReplica(0, ["failed"]), FakeReplica(1, ["failed"])]
        # whichever goes first fails; the retry must land on the *other*
        # replica (which also fails once), so both get traffic before
        # the third attempt succeeds
        router = router_for(reps)
        reply = run(router.submit(X))
        assert isinstance(reply, Ok)
        assert router.retries >= 1
        assert reps[0].client.calls >= 1 and reps[1].client.calls >= 1

    def test_transport_error_is_typed_and_retried(self):
        reps = [FakeReplica(0, ["conn"]), FakeReplica(1, ["conn"])]
        router = router_for(reps)
        reply = run(router.submit(X))
        # both replicas die on their first request; the third attempt
        # lands on one of them again and succeeds
        assert isinstance(reply, Ok)
        assert router.transport_errors == 2
        assert router.retries == 2

    def test_all_replicas_failing_returns_last_failure(self):
        reps = [
            FakeReplica(0, ["failed"] * 5),
            FakeReplica(1, ["failed"] * 5),
        ]
        router = router_for(reps, max_attempts=3)
        reply = run(router.submit(X))
        assert isinstance(reply, Failed)
        assert router.exhausted == 1

    def test_overloaded_retries_then_surfaces(self):
        reps = [FakeReplica(0, ["overloaded"] * 5)]
        router = router_for(reps, max_attempts=2)
        reply = run(router.submit(X))
        assert isinstance(reply, Overloaded)

    def test_no_replica_ready_fails_typed(self):
        reps = [FakeReplica(0, ready=False)]
        router = router_for(reps, policy=RunPolicy(timeout=0.3))
        reply = run(router.submit(X))
        assert isinstance(reply, (Failed, DeadlineExceeded))

    def test_open_breaker_sheds_replica(self):
        reps = [FakeReplica(0, ["failed"] * 10), FakeReplica(1)]
        reps[0].breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        router = router_for(reps)

        async def many():
            return [await router.submit(X) for _ in range(6)]

        replies = run(many())
        assert all(isinstance(r, Ok) for r in replies)
        # replica 0 failed at most its breaker budget; the rest never
        # touched it
        assert reps[0].client.calls <= 2

    def test_degraded_ok_counts(self):
        reps = [FakeReplica(0, ["degraded"])]
        router = router_for(reps)
        reply = run(router.submit(X))
        assert isinstance(reply, Ok) and reply.degraded
        assert router.degraded == 1

    def test_zero_deadline_rejected(self):
        router = router_for([FakeReplica(0)])
        with pytest.raises(ValueError, match="deadline"):
            run(router.submit(X, deadline=0))

    def test_deadline_budget_caps_retries(self):
        # every attempt eats ~50 ms; a 120 ms budget cannot fit the
        # configured 10 attempts
        reps = [FakeReplica(0, [0.05] * 20)]
        router = router_for(
            reps, max_attempts=10, policy=RunPolicy(timeout=0.12)
        )

        async def go():
            return await router.submit(X, deadline=0.12)

        reply = run(go())
        # the slow ok (first attempt) wins the race against the budget
        assert isinstance(reply, (Ok, DeadlineExceeded))
        assert reps[0].client.calls <= 3


class TestHedging:
    def test_slow_first_attempt_hedges_and_fast_second_wins(self):
        # round-robin picks replica 1 first (slow: 500 ms); the hedge
        # fires after 50 ms at replica 0, which answers instantly
        reps = [FakeReplica(0, ["ok"]), FakeReplica(1, [0.5])]
        router = router_for(reps, hedge_after_s=0.05)

        async def go():
            t0 = asyncio.get_event_loop().time()
            reply = await router.submit(X)
            return reply, asyncio.get_event_loop().time() - t0

        reply, elapsed = run(go())
        assert isinstance(reply, Ok)
        assert router.hedges == 1
        assert elapsed < 0.45  # did not wait out the slow attempt

    def test_fast_reply_never_hedges(self):
        reps = [FakeReplica(0), FakeReplica(1)]
        router = router_for(reps, hedge_after_s=0.2)
        reply = run(router.submit(X))
        assert isinstance(reply, Ok)
        assert router.hedges == 0
        assert reps[0].client.calls + reps[1].client.calls == 1

    def test_single_replica_cannot_hedge(self):
        reps = [FakeReplica(0, [0.15])]
        router = router_for(reps, hedge_after_s=0.02)
        reply = run(router.submit(X))
        assert isinstance(reply, Ok)
        assert router.hedges == 0
