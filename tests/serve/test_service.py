"""InferenceService concurrency suite: the degradation contract.

The guarantees under test, per ISSUE acceptance criteria:

* a request past its deadline gets a typed ``DeadlineExceeded`` — never
  a silent slow reply;
* shed requests never reach the forward pass;
* batched results are bit-identical to per-request serial execution;
* LRU eviction under memory pressure never interrupts serving;
* every submitted request resolves to exactly one typed reply.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

import repro.obs as obs
from repro.core.model_store import compress_model
from repro.nn.layers import Dense, ReLU, Softmax
from repro.nn.sequential import Sequential
from repro.runtime.pool import RunPolicy
from repro.serve import (
    DeadlineExceeded,
    DecodedWeightCache,
    Failed,
    InferenceService,
    Ok,
    Overloaded,
    ServeConfig,
    ServedModel,
)


def run(coro):
    return asyncio.run(coro)


class RecordingModel:
    """Duck-typed model: doubles its input, records what it saw."""

    input_shape = None

    def __init__(self, delay: float = 0.0, gate: threading.Event | None = None):
        self.delay = delay
        self.gate = gate
        self.batch_sizes: list[int] = []
        self.seen: list[float] = []

    def forward_batch(self, xs):
        if self.gate is not None:
            assert self.gate.wait(timeout=10.0), "test gate never opened"
        if self.delay:
            time.sleep(self.delay)
        self.batch_sizes.append(len(xs))
        self.seen.extend(float(np.ravel(x)[0]) for x in xs)
        return [x * 2.0 for x in xs]


def mark(v: float) -> np.ndarray:
    """A request payload tagged with a recognizable first element."""
    return np.full(3, v, dtype=np.float32)


def mlp(seed: int = 7):
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            ("dense_1", Dense(12, 16, rng=rng)),
            ("relu_1", ReLU()),
            ("dense_2", Dense(16, 5, rng=rng)),
            ("softmax", Softmax()),
        ],
        name="served-mlp",
    )


def served_mlp(cache=None) -> ServedModel:
    archive = compress_model(mlp(), {"dense_1": 5.0})
    return ServedModel(mlp(), archive, cache=cache, input_shape=(12,))


class TestDeadlines:
    def test_slow_batch_returns_typed_error_not_slow_reply(self):
        """A computed-but-late result is discarded (executed=True)."""
        model = RecordingModel(delay=0.2)

        async def go():
            svc = InferenceService(
                model, ServeConfig(policy=RunPolicy(timeout=0.05))
            )
            async with svc:
                return await svc.submit(mark(1.0)), svc

        reply, svc = run(go())
        assert isinstance(reply, DeadlineExceeded)
        assert reply.executed is True
        assert reply.waited_s >= reply.deadline_s == 0.05
        assert svc.deadline_exceeded == 1 and svc.ok == 0

    def test_expired_in_queue_skips_forward(self):
        """Requests whose deadline lapses while queued never execute."""
        gate = threading.Event()
        model = RecordingModel(gate=gate)

        async def go():
            svc = InferenceService(
                model,
                ServeConfig(max_batch=1, policy=RunPolicy(timeout=0.08)),
            )
            async with svc:
                # r0 gets a generous deadline: it spends the gated wait
                # executing, and only r1 should expire
                t0 = asyncio.ensure_future(svc.submit(mark(1.0), deadline=10.0))
                await asyncio.sleep(0.02)  # batcher takes r0, blocks on gate
                t1 = asyncio.ensure_future(svc.submit(mark(2.0)))
                await asyncio.sleep(0.15)  # r1's deadline lapses in queue
                gate.set()
                return await t0, await t1, svc

        r0, r1, svc = run(go())
        assert isinstance(r0, Ok)
        assert isinstance(r1, DeadlineExceeded)
        assert r1.executed is False
        assert r1.waited_s >= r1.deadline_s
        assert 2.0 not in model.seen, "expired request must not execute"
        assert svc.deadline_expired == 1

    def test_per_request_deadline_overrides_policy(self):
        model = RecordingModel(delay=0.1)

        async def go():
            svc = InferenceService(
                model, ServeConfig(policy=RunPolicy(timeout=5.0))
            )
            async with svc:
                return await svc.submit(mark(1.0), deadline=0.02)

        reply = run(go())
        assert isinstance(reply, DeadlineExceeded)

    def test_infinite_deadline_disables_policy_timeout(self):
        model = RecordingModel(delay=0.06)

        async def go():
            svc = InferenceService(
                model, ServeConfig(policy=RunPolicy(timeout=0.01))
            )
            async with svc:
                return await svc.submit(mark(1.0), deadline=float("inf"))

        assert isinstance(run(go()), Ok)


class TestShedding:
    def test_overload_sheds_with_typed_reply_and_no_execution(self):
        gate = threading.Event()
        model = RecordingModel(gate=gate)

        async def go():
            svc = InferenceService(
                model,
                ServeConfig(
                    max_batch=1, max_queue=2, policy=RunPolicy(timeout=None)
                ),
            )
            async with svc:
                running = asyncio.ensure_future(svc.submit(mark(0.0)))
                await asyncio.sleep(0.02)  # r0 now occupies the executor
                queued = [
                    asyncio.ensure_future(svc.submit(mark(float(i))))
                    for i in (1, 2)
                ]
                await asyncio.sleep(0)  # both admitted: queue full
                shed = [await svc.submit(mark(float(i))) for i in (3, 4)]
                gate.set()
                admitted = [await running, *[await t for t in queued]]
                return admitted, shed, svc

        admitted, shed, svc = run(go())
        assert all(isinstance(r, Ok) for r in admitted)
        assert all(isinstance(r, Overloaded) for r in shed)
        assert all(r.queue_depth == 2 for r in shed)
        # the shed payloads (3.0, 4.0) never reached the model
        assert set(model.seen) == {0.0, 1.0, 2.0}
        assert svc.shed == 2 and svc.ok == 3

    def test_shed_reply_is_immediate_while_batch_runs(self):
        gate = threading.Event()
        model = RecordingModel(gate=gate)

        async def go():
            svc = InferenceService(
                model,
                ServeConfig(
                    max_batch=1, max_queue=1, policy=RunPolicy(timeout=None)
                ),
            )
            async with svc:
                running = asyncio.ensure_future(svc.submit(mark(0.0)))
                await asyncio.sleep(0.02)
                blocker = asyncio.ensure_future(svc.submit(mark(1.0)))
                await asyncio.sleep(0)
                t0 = time.perf_counter()
                reply = await svc.submit(mark(2.0))
                shed_latency = time.perf_counter() - t0
                gate.set()
                await running, await blocker
                return reply, shed_latency

        reply, shed_latency = run(go())
        assert isinstance(reply, Overloaded)
        assert shed_latency < 0.05, "shedding must not wait for the batch"


class TestBitIdentity:
    def test_batched_replies_equal_serial_execution(self):
        """Concurrent batched serving == one-at-a-time serving, bitwise."""
        sm = served_mlp()
        rng = np.random.default_rng(0)
        xs = [rng.standard_normal(12).astype(np.float32) for _ in range(24)]

        async def go():
            svc = InferenceService(
                sm, ServeConfig(max_batch=8, policy=RunPolicy(timeout=None))
            )
            async with svc:
                return await asyncio.gather(*(svc.submit(x) for x in xs)), svc

        replies, svc = run(go())
        assert all(isinstance(r, Ok) for r in replies)
        assert max(r.batch_size for r in replies) > 1, "no batching happened"
        serial = [sm.forward(x) for x in xs]
        for r, s in zip(replies, serial):
            assert np.array_equal(r.output, s), (
                "batched output must be bit-identical to serial"
            )

    def test_eviction_under_pressure_keeps_serving(self):
        """A cache far smaller than the weights still serves correctly."""
        tight = DecodedWeightCache(max_bytes=8)
        sm = served_mlp(cache=tight)
        reference = served_mlp()
        rng = np.random.default_rng(1)
        xs = [rng.standard_normal(12).astype(np.float32) for _ in range(12)]

        async def go():
            svc = InferenceService(
                sm, ServeConfig(max_batch=4, policy=RunPolicy(timeout=None))
            )
            async with svc:
                return await asyncio.gather(*(svc.submit(x) for x in xs))

        replies = run(go())
        assert all(isinstance(r, Ok) for r in replies)
        for r, x in zip(replies, xs):
            assert np.array_equal(r.output, reference.forward(x))


class TestReplies:
    def test_every_request_gets_exactly_one_reply(self):
        """Mixed load: ok + shed + expired all resolve, none silently."""
        gate = threading.Event()
        model = RecordingModel(gate=gate)

        async def go():
            svc = InferenceService(
                model,
                ServeConfig(
                    max_batch=2, max_queue=3, policy=RunPolicy(timeout=0.2)
                ),
            )
            async with svc:
                tasks = [
                    asyncio.ensure_future(svc.submit(mark(float(i))))
                    for i in range(10)
                ]
                await asyncio.sleep(0.05)
                gate.set()
                return await asyncio.gather(*tasks), svc

        replies, svc = run(go())
        assert len(replies) == 10
        assert all(
            isinstance(r, (Ok, Overloaded, DeadlineExceeded, Failed))
            for r in replies
        )
        c = svc.counters()
        assert c["requests"] == 10
        assert (
            c["ok"]
            + c["shed"]
            + c["deadline_expired"]
            + c["deadline_exceeded"]
            + c["failed"]
            == 10
        )

    def test_forward_exception_becomes_failed_reply(self):
        class Exploding:
            input_shape = None

            def forward_batch(self, xs):
                raise RuntimeError("boom")

        async def go():
            svc = InferenceService(
                Exploding(), ServeConfig(policy=RunPolicy(timeout=None))
            )
            async with svc:
                return await svc.submit(mark(1.0))

        reply = run(go())
        assert isinstance(reply, Failed)
        assert "boom" in reply.error

    def test_bad_input_shape_fails_at_admission(self):
        model = RecordingModel()
        model.input_shape = (12,)

        async def go():
            svc = InferenceService(model, ServeConfig())
            async with svc:
                return await svc.submit(np.zeros(5, dtype=np.float32))

        reply = run(go())
        assert isinstance(reply, Failed)
        assert "shape" in reply.error
        assert model.batch_sizes == []

    def test_nonpositive_deadline_rejected(self):
        async def go():
            svc = InferenceService(RecordingModel(), ServeConfig())
            async with svc:
                with pytest.raises(ValueError, match="deadline"):
                    await svc.submit(mark(1.0), deadline=-1.0)

        run(go())


class TestBatching:
    def test_batch_window_coalesces_stragglers(self):
        model = RecordingModel()

        async def go():
            svc = InferenceService(
                model,
                ServeConfig(
                    max_batch=8,
                    batch_window=0.08,
                    policy=RunPolicy(timeout=None),
                ),
            )
            async with svc:
                tasks = []
                for i in range(4):
                    tasks.append(asyncio.ensure_future(svc.submit(mark(float(i)))))
                    await asyncio.sleep(0.005)
                return await asyncio.gather(*tasks)

        replies = run(go())
        assert all(isinstance(r, Ok) for r in replies)
        assert model.batch_sizes == [4], "window should coalesce one batch"

    def test_max_batch_splits_oversized_load(self):
        model = RecordingModel()

        async def go():
            svc = InferenceService(
                model, ServeConfig(max_batch=4, policy=RunPolicy(timeout=None))
            )
            async with svc:
                return await asyncio.gather(
                    *(svc.submit(mark(float(i))) for i in range(10))
                )

        replies = run(go())
        assert all(isinstance(r, Ok) for r in replies)
        assert max(model.batch_sizes) <= 4
        assert sum(model.batch_sizes) == 10

    def test_stop_settles_queued_requests(self):
        model = RecordingModel()

        async def go():
            svc = InferenceService(
                model, ServeConfig(policy=RunPolicy(timeout=None))
            )
            svc.start()
            tasks = [
                asyncio.ensure_future(svc.submit(mark(float(i))))
                for i in range(5)
            ]
            await asyncio.sleep(0)
            await svc.stop()
            return [await t for t in tasks]

        replies = run(go())
        assert all(isinstance(r, Ok) for r in replies)


class TestStopRaces:
    """Regressions: stop()/cancellation must never strand a future."""

    def test_stop_during_batch_window_settles_popped_request(self):
        """The request the batcher popped before its window sleep was
        invisible to stop()'s queue drain and hung its client forever."""
        model = RecordingModel()

        async def go():
            svc = InferenceService(
                model,
                ServeConfig(batch_window=0.5, policy=RunPolicy(timeout=None)),
            )
            svc.start()
            t = asyncio.ensure_future(svc.submit(mark(1.0)))
            await asyncio.sleep(0.05)  # batcher popped it, sleeps in window
            await svc.stop()
            return await asyncio.wait_for(t, timeout=5.0)

        reply = run(go())
        assert isinstance(reply, Ok)
        assert model.seen == [1.0]

    def test_stop_mid_forward_delivers_computed_result(self):
        """Cancellation during the executor forward used to settle the
        batch with Failed(CancelledError) instead of its real outputs."""
        model = RecordingModel(delay=0.15)

        async def go():
            svc = InferenceService(
                model, ServeConfig(policy=RunPolicy(timeout=None))
            )
            svc.start()
            t = asyncio.ensure_future(svc.submit(mark(3.0)))
            await asyncio.sleep(0.05)  # forward in flight on the executor
            await svc.stop()
            return await asyncio.wait_for(t, timeout=5.0)

        reply = run(go())
        assert isinstance(reply, Ok)
        assert np.array_equal(reply.output, mark(3.0) * 2.0)

    def test_submit_after_stop_fails_fast_instead_of_hanging(self):
        model = RecordingModel()

        async def go():
            svc = InferenceService(
                model, ServeConfig(policy=RunPolicy(timeout=None))
            )
            svc.start()
            await svc.stop()
            return await asyncio.wait_for(svc.submit(mark(1.0)), timeout=5.0)

        reply = run(go())
        assert isinstance(reply, Failed)
        assert "not running" in reply.error
        assert model.seen == []

    def test_submit_before_start_fails_fast(self):
        async def go():
            svc = InferenceService(
                RecordingModel(), ServeConfig(policy=RunPolicy(timeout=None))
            )
            return await asyncio.wait_for(svc.submit(mark(1.0)), timeout=5.0)

        assert isinstance(run(go()), Failed)


class TestModelContract:
    def test_short_forward_output_fails_whole_batch_not_hang(self):
        """A model returning fewer outputs than inputs used to
        zip-truncate, stranding the tail futures forever."""
        gate = threading.Event()

        class Truncating:
            input_shape = None

            def forward_batch(self, xs):
                assert gate.wait(timeout=10.0), "test gate never opened"
                return [x * 2.0 for x in xs][:-1]

        async def go():
            svc = InferenceService(
                Truncating(), ServeConfig(policy=RunPolicy(timeout=None))
            )
            async with svc:
                tasks = [
                    asyncio.ensure_future(svc.submit(mark(float(i))))
                    for i in range(3)
                ]
                await asyncio.sleep(0.02)
                gate.set()
                return await asyncio.wait_for(
                    asyncio.gather(*tasks), timeout=5.0
                )

        replies = run(go())
        assert all(isinstance(r, Failed) for r in replies)
        assert all("forward_batch returned" in r.error for r in replies)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_queue": 0},
            {"batch_window": -0.1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_double_start_rejected(self):
        async def go():
            svc = InferenceService(RecordingModel(), ServeConfig())
            async with svc:
                with pytest.raises(RuntimeError, match="already started"):
                    svc.start()

        run(go())


class TestObs:
    def test_service_metrics_recorded(self):
        sm = served_mlp()
        rng = np.random.default_rng(2)
        xs = [rng.standard_normal(12).astype(np.float32) for _ in range(8)]

        async def go():
            svc = InferenceService(
                sm, ServeConfig(policy=RunPolicy(timeout=None))
            )
            async with svc:
                await asyncio.gather(*(svc.submit(x) for x in xs))

        with obs.use(obs.Obs()) as o:
            run(go())
        assert o.metrics.value("serve.requests") == 8
        assert o.metrics.value("serve.ok") == 8
        rows = {r["name"]: r for r in o.metrics.snapshot()}
        assert rows["serve.latency_seconds"]["count"] == 8
        assert rows["serve.batch_size"]["count"] >= 1
        # cache counts recorded from the forward thread (context copy)
        assert o.metrics.value("serve.cache.misses") >= 1
