"""ServedModel: archive wiring, cache keys, bit-identity, degradation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import CodecError, IntegrityError
from repro.core.model_store import compress_model
from repro.nn.layers import Dense, ReLU, Softmax
from repro.nn.sequential import Sequential
from repro.resilience.inject import BitFlipInjector
from repro.serve.cache import DecodedWeightCache
from repro.serve.model import ServedModel, decoded_weight_key


def mlp(seed: int = 7):
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            ("dense_1", Dense(12, 16, rng=rng)),
            ("relu_1", ReLU()),
            ("dense_2", Dense(16, 5, rng=rng)),
            ("softmax", Softmax()),
        ],
        name="served-mlp",
    )


def served(cache=None, assignments=None, codec="linefit"):
    archive = compress_model(
        mlp(), assignments if assignments is not None else {"dense_1": 5.0},
        codec=codec,
    )
    return ServedModel(mlp(), archive, cache=cache, input_shape=(12,))


def inputs(n, shape=(12,), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape).astype(np.float32) for _ in range(n)]


class TestWiring:
    def test_matches_archive_apply(self):
        """Serving == the established archive restore path."""
        archive = compress_model(mlp(), {"dense_1": 5.0})
        sm = ServedModel(mlp(), archive, input_shape=(12,))
        reference = mlp()
        archive.apply(reference)
        for x in inputs(4):
            assert np.array_equal(sm.forward(x), reference.forward(x[None])[0])

    def test_compressed_layers_resolve_through_cache(self):
        cache = DecodedWeightCache()
        sm = served(cache)
        assert sm.compressed_layers == ["dense_1"]
        sm.forward(inputs(1)[0])
        assert cache.misses == 1
        sm.forward(inputs(1)[0])
        assert cache.hits == 1

    def test_unknown_archive_layer_rejected(self):
        archive = compress_model(mlp(), {"dense_1": 5.0})
        small = Sequential(
            [("other", Dense(12, 5)), ("softmax", Softmax())], name="wrong"
        )
        with pytest.raises(ValueError, match="unknown to model"):
            ServedModel(small, archive)

    def test_lossless_codec_roundtrip_exact(self):
        # huffman stores the exact weights: serving equals the original
        original = mlp()
        archive = compress_model(original, {"dense_1": 0.0}, codec="huffman")
        sm = ServedModel(mlp(), archive, input_shape=(12,))
        for x in inputs(3):
            assert np.array_equal(sm.forward(x), original.forward(x[None])[0])


class TestBitIdentity:
    def test_batched_equals_serial_bitwise(self):
        sm = served()
        xs = inputs(16)
        batched = sm.forward_batch(xs)
        serial = [sm.forward(x) for x in xs]
        for b, s in zip(batched, serial):
            assert b.dtype == s.dtype and b.shape == s.shape
            assert np.array_equal(b, s), "batched forward must be bit-identical"

    def test_identity_survives_eviction(self):
        # a cache too small for the layer: every batch re-decodes, the
        # outputs must not care
        sm_tight = served(cache=DecodedWeightCache(max_bytes=8))
        sm_roomy = served(cache=DecodedWeightCache())
        xs = inputs(6)
        for a, b in zip(sm_tight.forward_batch(xs), sm_roomy.forward_batch(xs)):
            assert np.array_equal(a, b)


def damaged_archive(raw_fallback: bool = False, seed: int = 3):
    """Compress the mlp, then bit-flip dense_1's payload in place."""
    archive = compress_model(
        mlp(), {"dense_1": 5.0}, codec="linefit", raw_fallback=raw_fallback
    )
    payload, shape = archive.compressed["dense_1"]
    archive.compressed["dense_1"] = (
        BitFlipInjector(seed=seed, ber=1e-3).corrupt_bytes(payload),
        shape,
    )
    return archive


class TestDegradedMode:
    def test_default_policy_raises_on_damage(self):
        sm = ServedModel(mlp(), damaged_archive(), input_shape=(12,))
        with pytest.raises(CodecError):
            sm.forward(inputs(1)[0])
        assert sm.damage == {}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="degradation policy"):
            ServedModel(mlp(), damaged_archive(), on_fault="explode")

    def test_zero_policy_serves_with_damage_report(self):
        sm = ServedModel(
            mlp(), damaged_archive(), input_shape=(12,), on_fault="zero"
        )
        out = sm.forward(inputs(1)[0])
        assert out.shape == (5,) and np.all(np.isfinite(out))
        assert "dense_1" in sm.damage
        report = sm.damage["dense_1"]
        assert report["action"].startswith("zero-fill")
        assert "error" in report
        # the salvage path carries the structured DamageReport fields
        if "salvaged" in report["action"]:
            assert report["damaged_segments"] >= 1
            assert report["num_segments"] > report["damaged_segments"]

    def test_zero_policy_output_matches_archive_apply(self):
        """ServedModel degradation == the established archive restore
        degradation: same damaged bytes, same salvaged weights."""
        archive = damaged_archive()
        sm = ServedModel(mlp(), archive, input_shape=(12,), on_fault="zero")
        reference = mlp()
        archive.apply(reference, on_fault="zero")
        for x in inputs(3):
            assert np.array_equal(sm.forward(x), reference.forward(x[None])[0])

    def test_raw_policy_restores_fallback_exactly(self):
        pristine = mlp()
        sm = ServedModel(
            mlp(),
            damaged_archive(raw_fallback=True),
            input_shape=(12,),
            on_fault="raw",
        )
        for x in inputs(3):
            assert np.array_equal(sm.forward(x), pristine.forward(x[None])[0])
        assert sm.damage["dense_1"]["action"] == "raw-fallback"

    def test_raw_policy_without_fallback_raises(self):
        sm = ServedModel(
            mlp(),
            damaged_archive(raw_fallback=False),
            input_shape=(12,),
            on_fault="raw",
        )
        with pytest.raises(IntegrityError, match="no.*raw fallback"):
            sm.forward(inputs(1)[0])

    def test_damage_recorded_once_across_forwards(self):
        sm = ServedModel(
            mlp(),
            damaged_archive(),
            cache=DecodedWeightCache(max_bytes=8),  # force re-decode each time
            input_shape=(12,),
            on_fault="zero",
        )
        a = sm.forward(inputs(1)[0])
        b = sm.forward(inputs(1)[0])
        assert np.array_equal(a, b)
        assert list(sm.damage) == ["dense_1"]

    def test_pristine_archive_reports_no_damage(self):
        sm = served()
        sm.forward(inputs(1)[0])
        assert sm.damage == {}


class TestKeys:
    def test_key_is_content_addressed(self):
        spec = {"name": "linefit", "params": {"delta_pct": 5.0}}
        k1 = decoded_weight_key(b"payload", spec, (4, 5))
        assert k1 == decoded_weight_key(b"payload", spec, (4, 5))
        assert k1 != decoded_weight_key(b"other", spec, (4, 5))
        assert k1 != decoded_weight_key(b"payload", spec, (5, 4))
        assert k1 != decoded_weight_key(
            b"payload", {"name": "linefit", "params": {"delta_pct": 10.0}}, (4, 5)
        )

    def test_legacy_spec_none_has_distinct_namespace(self):
        spec = {"name": "linefit", "params": {}}
        assert decoded_weight_key(b"p", None, (2,)) != decoded_weight_key(
            b"p", spec, (2,)
        )

    def test_identical_blobs_share_one_entry(self):
        # two served models built from the same deterministic weights
        # produce identical payloads -> one cache entry serves both
        cache = DecodedWeightCache()
        sm1 = served(cache)
        sm2 = served(cache)
        sm1.forward(inputs(1)[0])
        sm2.forward(inputs(1)[0])
        assert len(cache) == 1
        assert cache.misses == 1 and cache.hits == 1
