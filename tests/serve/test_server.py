"""JSON-lines TCP transport: roundtrips, typed wire errors, pipelining."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.runtime.pool import RunPolicy
from repro.serve.demo import BENCH_INPUT_SHAPE, bench_model, demo_inputs
from repro.serve.replies import DeadlineExceeded, Failed, Ok, Overloaded
from repro.serve.server import doc_to_reply, reply_to_doc, request_many, serve_tcp
from repro.serve.service import InferenceService, ServeConfig


def run(coro):
    return asyncio.run(coro)


async def with_server(config, body, **serve_kwargs):
    """Start service + TCP server, run ``body(port)``, tear down."""
    svc = InferenceService(bench_model(), config)
    async with svc:
        server = await serve_tcp(svc, **serve_kwargs)
        port = server.sockets[0].getsockname()[1]
        try:
            return await body(port)
        finally:
            server.close()
            await server.wait_closed()


class TestRoundtrip:
    def test_pipelined_requests_all_answered_in_order(self):
        xs = demo_inputs(12, BENCH_INPUT_SHAPE)

        async def body(port):
            return await request_many("127.0.0.1", port, xs)

        docs = run(with_server(ServeConfig(policy=RunPolicy(timeout=None)), body))
        assert [d["id"] for d in docs] == list(range(12))
        assert all(d["status"] == "ok" for d in docs)
        assert all(len(d["output"]) == 10 for d in docs)
        assert all(d["batch_size"] >= 1 for d in docs)

    def test_wire_output_matches_in_process_forward(self):
        sm = bench_model()
        xs = demo_inputs(3, BENCH_INPUT_SHAPE)

        async def body(port):
            return await request_many("127.0.0.1", port, xs)

        docs = run(with_server(ServeConfig(policy=RunPolicy(timeout=None)), body))
        for d, x in zip(docs, xs):
            wire = np.asarray(d["output"], dtype=np.float32)
            assert np.allclose(wire, sm.forward(x), atol=0, rtol=1e-6)


class TestWireErrors:
    def test_malformed_json_gets_failed_reply(self):
        async def body(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return json.loads(line)

        doc = run(with_server(ServeConfig(), body))
        assert doc["status"] == "failed"

    def test_missing_input_field_gets_failed_reply(self):
        async def body(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(json.dumps({"id": 1}).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return json.loads(line)

        doc = run(with_server(ServeConfig(), body))
        assert doc["status"] == "failed" and doc["id"] == 1

    def test_non_object_json_line_gets_failed_reply(self):
        """Valid JSON that is not an object ('[1,2]', '5') used to crash
        the handler task before any reply was written, hanging pipelined
        clients."""

        async def body(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"[1, 2]\n5\n")
            await writer.drain()
            lines = [
                await asyncio.wait_for(reader.readline(), timeout=5.0)
                for _ in range(2)
            ]
            writer.close()
            await writer.wait_closed()
            return [json.loads(line) for line in lines]

        docs = run(with_server(ServeConfig(), body))
        for doc in docs:
            assert doc["status"] == "failed"
            assert doc["id"] is None

    def test_deadline_propagates_over_wire(self):
        async def body(port):
            return await request_many(
                "127.0.0.1",
                port,
                demo_inputs(1, BENCH_INPUT_SHAPE),
                deadline=1e-9,
            )

        # a nanosecond deadline expires in the queue: typed reply on the
        # wire, not a slow ok and not a dropped connection
        docs = run(with_server(ServeConfig(), body))
        assert docs[0]["status"] == "deadline_exceeded"
        assert docs[0]["executed"] is False


class TestLineLimits:
    def test_large_request_line_within_default_limit_succeeds(self):
        """A >64 KiB request line — past asyncio's 64 KiB default stream
        limit, which used to kill the connection with LimitOverrunError —
        roundtrips fine under the service's 1 MiB default."""
        # 8192 float32 values JSON-encode to ~100 KiB
        big = np.zeros(BENCH_INPUT_SHAPE, np.float32)
        filler = [0.123456] * 8192

        async def body(port):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port, limit=1 << 20
            )
            doc = {"id": 7, "input": big.tolist(), "padding": filler}
            payload = json.dumps(doc).encode() + b"\n"
            assert len(payload) > 64 * 1024  # past the asyncio default
            writer.write(payload)
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            writer.close()
            await writer.wait_closed()
            return json.loads(line)

        doc = run(with_server(ServeConfig(policy=RunPolicy(timeout=None)), body))
        assert doc["status"] == "ok" and doc["id"] == 7

    def test_oversized_line_failed_reply_connection_survives(self):
        """A line past max_line_bytes is dropped with a typed ``failed``
        (id null — the id was inside the bytes we refused to buffer) and
        the *same connection* keeps serving."""
        x = np.zeros(BENCH_INPUT_SHAPE, np.float32)

        async def body(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            huge = json.dumps(
                {"id": 1, "input": x.tolist(), "padding": "x" * 8192}
            ).encode()
            writer.write(huge + b"\n")
            writer.write(json.dumps({"id": 2, "input": x.tolist()}).encode() + b"\n")
            await writer.drain()
            lines = [
                json.loads(await asyncio.wait_for(reader.readline(), timeout=10.0))
                for _ in range(2)
            ]
            writer.close()
            await writer.wait_closed()
            return lines

        first, second = run(
            with_server(
                ServeConfig(policy=RunPolicy(timeout=None)),
                body,
                max_line_bytes=4096,
            )
        )
        assert first["status"] == "failed" and first["id"] is None
        assert "max_line_bytes" in first["error"]
        assert second["status"] == "ok" and second["id"] == 2

    def test_oversized_line_at_eof_still_answered(self):
        """Client sends an oversized line and half-closes: the discard
        loop must not spin on EOF, and the typed reply still goes out."""

        async def body(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"x" * 8192 + b"\n")
            writer.write_eof()
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            writer.close()
            await writer.wait_closed()
            return json.loads(line)

        doc = run(with_server(ServeConfig(), body, max_line_bytes=1024))
        assert doc["status"] == "failed" and doc["id"] is None


class TestClientResilience:
    def test_request_many_server_closes_mid_stream_raises_typed(self):
        """The server vanishing mid-conversation must surface as a
        ConnectionError from request_many — not a hang, not a partial
        silent return (zero silent drops holds client-side too)."""

        async def scenario():
            async def handler(reader, writer):
                # answer exactly one request, then slam the connection
                line = await reader.readline()
                doc = json.loads(line)
                writer.write(
                    json.dumps(
                        {"id": doc["id"], "status": "ok", "output": [0.0],
                         "latency_s": 0.0, "batch_size": 1}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            xs = demo_inputs(5, BENCH_INPUT_SHAPE)
            try:
                with pytest.raises(ConnectionError, match="[0-9]+/5"):
                    await asyncio.wait_for(
                        request_many("127.0.0.1", port, xs), timeout=10.0
                    )
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_request_many_refuses_connection_to_nothing(self):
        async def scenario():
            # bind-and-release to find a port with nothing listening
            server = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            with pytest.raises(OSError):
                await request_many(
                    "127.0.0.1", port, demo_inputs(1, BENCH_INPUT_SHAPE)
                )

        run(scenario())


class TestReplyDocs:
    def test_every_reply_type_serializes(self):
        docs = [
            reply_to_doc(Ok(np.ones(2, np.float32), latency_s=0.1, batch_size=2)),
            reply_to_doc(Overloaded(queue_depth=9)),
            reply_to_doc(DeadlineExceeded(deadline_s=1.0, waited_s=1.5, executed=True)),
            reply_to_doc(Failed(error="nope")),
        ]
        assert [d["status"] for d in docs] == [
            "ok",
            "overloaded",
            "deadline_exceeded",
            "failed",
        ]
        for d in docs:
            json.dumps(d)  # wire-serializable

    def test_unknown_reply_type_rejected(self):
        with pytest.raises(TypeError):
            reply_to_doc("not a reply")

    def test_doc_to_reply_inverts_reply_to_doc(self):
        replies = [
            Ok(np.ones(2, np.float32), latency_s=0.1, batch_size=2),
            Ok(
                np.ones(2, np.float32),
                latency_s=0.1,
                batch_size=2,
                degraded={"dense_1": {"action": "zero-fill"}},
            ),
            Overloaded(queue_depth=9),
            DeadlineExceeded(deadline_s=1.0, waited_s=1.5, executed=True),
            Failed(error="nope"),
        ]
        for r in replies:
            back = doc_to_reply(json.loads(json.dumps(reply_to_doc(r))))
            assert back.status == r.status
            if isinstance(r, Ok):
                assert np.allclose(back.output, r.output)
                assert back.degraded == r.degraded

    def test_doc_to_reply_rejects_unknown_status(self):
        with pytest.raises(ValueError):
            doc_to_reply({"status": "weird"})
