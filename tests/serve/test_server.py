"""JSON-lines TCP transport: roundtrips, typed wire errors, pipelining."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.runtime.pool import RunPolicy
from repro.serve.demo import BENCH_INPUT_SHAPE, bench_model, demo_inputs
from repro.serve.replies import DeadlineExceeded, Failed, Ok, Overloaded
from repro.serve.server import reply_to_doc, request_many, serve_tcp
from repro.serve.service import InferenceService, ServeConfig


def run(coro):
    return asyncio.run(coro)


async def with_server(config, body):
    """Start service + TCP server, run ``body(port)``, tear down."""
    svc = InferenceService(bench_model(), config)
    async with svc:
        server = await serve_tcp(svc)
        port = server.sockets[0].getsockname()[1]
        try:
            return await body(port)
        finally:
            server.close()
            await server.wait_closed()


class TestRoundtrip:
    def test_pipelined_requests_all_answered_in_order(self):
        xs = demo_inputs(12, BENCH_INPUT_SHAPE)

        async def body(port):
            return await request_many("127.0.0.1", port, xs)

        docs = run(with_server(ServeConfig(policy=RunPolicy(timeout=None)), body))
        assert [d["id"] for d in docs] == list(range(12))
        assert all(d["status"] == "ok" for d in docs)
        assert all(len(d["output"]) == 10 for d in docs)
        assert all(d["batch_size"] >= 1 for d in docs)

    def test_wire_output_matches_in_process_forward(self):
        sm = bench_model()
        xs = demo_inputs(3, BENCH_INPUT_SHAPE)

        async def body(port):
            return await request_many("127.0.0.1", port, xs)

        docs = run(with_server(ServeConfig(policy=RunPolicy(timeout=None)), body))
        for d, x in zip(docs, xs):
            wire = np.asarray(d["output"], dtype=np.float32)
            assert np.allclose(wire, sm.forward(x), atol=0, rtol=1e-6)


class TestWireErrors:
    def test_malformed_json_gets_failed_reply(self):
        async def body(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return json.loads(line)

        doc = run(with_server(ServeConfig(), body))
        assert doc["status"] == "failed"

    def test_missing_input_field_gets_failed_reply(self):
        async def body(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(json.dumps({"id": 1}).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return json.loads(line)

        doc = run(with_server(ServeConfig(), body))
        assert doc["status"] == "failed" and doc["id"] == 1

    def test_non_object_json_line_gets_failed_reply(self):
        """Valid JSON that is not an object ('[1,2]', '5') used to crash
        the handler task before any reply was written, hanging pipelined
        clients."""

        async def body(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"[1, 2]\n5\n")
            await writer.drain()
            lines = [
                await asyncio.wait_for(reader.readline(), timeout=5.0)
                for _ in range(2)
            ]
            writer.close()
            await writer.wait_closed()
            return [json.loads(line) for line in lines]

        docs = run(with_server(ServeConfig(), body))
        for doc in docs:
            assert doc["status"] == "failed"
            assert doc["id"] is None

    def test_deadline_propagates_over_wire(self):
        async def body(port):
            return await request_many(
                "127.0.0.1",
                port,
                demo_inputs(1, BENCH_INPUT_SHAPE),
                deadline=1e-9,
            )

        # a nanosecond deadline expires in the queue: typed reply on the
        # wire, not a slow ok and not a dropped connection
        docs = run(with_server(ServeConfig(), body))
        assert docs[0]["status"] == "deadline_exceeded"
        assert docs[0]["executed"] is False


class TestReplyDocs:
    def test_every_reply_type_serializes(self):
        docs = [
            reply_to_doc(Ok(np.ones(2, np.float32), latency_s=0.1, batch_size=2)),
            reply_to_doc(Overloaded(queue_depth=9)),
            reply_to_doc(DeadlineExceeded(deadline_s=1.0, waited_s=1.5, executed=True)),
            reply_to_doc(Failed(error="nope")),
        ]
        assert [d["status"] for d in docs] == [
            "ok",
            "overloaded",
            "deadline_exceeded",
            "failed",
        ]
        for d in docs:
            json.dumps(d)  # wire-serializable

    def test_unknown_reply_type_rejected(self):
        with pytest.raises(TypeError):
            reply_to_doc("not a reply")
