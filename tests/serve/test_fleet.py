"""ReplicaFleet integration: real worker processes, fast settings.

Each test spawns genuine subprocesses, so the settings are tuned hard
(tiny model, 100 ms probes, sub-second backoff) to keep the suite in
tier-1 time.  The long-running chaos campaigns live in
``test_chaos.py`` behind the ``chaos`` marker.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro.runtime.pool import RunPolicy
from repro.serve.demo import (
    BENCH_INPUT_SHAPE,
    bench_archive_model,
    demo_inputs,
    save_bench_archive,
)
from repro.serve.fleet import FleetConfig, ReplicaFleet, ReplicaSpec
from repro.serve.replies import Ok
from repro.serve.supervisor import READY


def run(coro):
    return asyncio.run(coro)


def fast_config(replicas=2, **kw):
    kw.setdefault("probe_interval_s", 0.1)
    kw.setdefault("probe_timeout_s", 1.0)
    kw.setdefault("policy", RunPolicy(timeout=2.0))
    kw.setdefault(
        "restart_policy",
        RunPolicy(backoff=0.05, max_backoff=0.2, jitter=True, jitter_seed=0),
    )
    return FleetConfig(replicas=replicas, **kw)


def spec_for(tmp_path, on_fault="zero"):
    path = save_bench_archive(tmp_path / "fleet.npz")
    return ReplicaSpec(
        factory=bench_archive_model,
        factory_kwargs={"path": str(path), "on_fault": on_fault},
    )


class TestFleetServing:
    def test_serves_and_balances(self, tmp_path):
        spec = spec_for(tmp_path)

        async def go():
            async with ReplicaFleet(spec, fast_config(replicas=2)) as fleet:
                assert fleet.ready_count == 2
                replies = [
                    await fleet.submit(x)
                    for x in demo_inputs(8, BENCH_INPUT_SHAPE)
                ]
                counters = fleet.counters()
            return replies, counters

        replies, counters = run(go())
        assert all(isinstance(r, Ok) for r in replies)
        assert counters["router_ok"] == 8
        assert counters["supervisor_restarts"] == 0

    def test_fleet_output_matches_in_process_model(self, tmp_path):
        spec = spec_for(tmp_path)
        sm = bench_archive_model(tmp_path / "fleet.npz")
        xs = demo_inputs(3, BENCH_INPUT_SHAPE)

        async def go():
            async with ReplicaFleet(spec, fast_config(replicas=1)) as fleet:
                return [await fleet.submit(x) for x in xs]

        for reply, x in zip(run(go()), xs):
            assert isinstance(reply, Ok)
            assert np.allclose(
                np.asarray(reply.output, np.float32), sm.forward(x), rtol=1e-6
            )

    def test_start_failure_raises_not_hangs(self, tmp_path):
        # a factory pointing at a nonexistent archive can never come up
        spec = ReplicaSpec(
            factory=bench_archive_model,
            factory_kwargs={"path": str(tmp_path / "missing.npz")},
        )

        async def go():
            fleet = ReplicaFleet(
                spec, fast_config(replicas=1, start_timeout_s=5.0)
            )
            with pytest.raises(RuntimeError, match="failed to start"):
                await fleet.start()

        run(go())


class TestRestart:
    def test_killed_replica_restarts_and_serves(self, tmp_path):
        spec = spec_for(tmp_path)

        async def go():
            async with ReplicaFleet(spec, fast_config(replicas=2)) as fleet:
                victim = fleet.replicas[0]
                first_pid = victim.pid
                os.kill(first_pid, signal.SIGKILL)
                # supervision notices, respawns, and the fleet is whole
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    if (
                        victim.state == READY
                        and victim.pid != first_pid
                        and fleet.ready_count == 2
                    ):
                        break
                    await asyncio.sleep(0.05)
                assert victim.state == READY and victim.pid != first_pid
                assert fleet.supervisor.restarts >= 1
                assert victim.generation == 2
                # and requests still resolve Ok on the new process
                reply = await fleet.submit(
                    demo_inputs(1, BENCH_INPUT_SHAPE)[0]
                )
                assert isinstance(reply, Ok)

        run(go())

    def test_requests_survive_kill_under_load(self, tmp_path):
        """Kill a replica while requests stream: every submit resolves
        typed, and the overall ok-rate stays high (the survivor absorbs
        the traffic, retries cover the in-flight casualties)."""
        spec = spec_for(tmp_path)

        async def go():
            async with ReplicaFleet(spec, fast_config(replicas=2)) as fleet:
                xs = demo_inputs(16, BENCH_INPUT_SHAPE)
                statuses = []

                async def load():
                    for i in range(60):
                        reply = await fleet.submit(xs[i % len(xs)])
                        statuses.append(reply.status)

                task = asyncio.ensure_future(load())
                await asyncio.sleep(0.1)
                os.kill(fleet.replicas[1].pid, signal.SIGKILL)
                await task
                return statuses

        statuses = run(go())
        assert len(statuses) == 60  # zero silent drops
        ok = statuses.count("ok")
        assert ok / len(statuses) >= 0.9


class TestDegradedFleet:
    def test_replica_on_damaged_archive_serves_with_report(self, tmp_path):
        from repro.resilience.chaos import corrupt_archive

        path = save_bench_archive(tmp_path / "fleet.npz")
        corrupt_archive(path, seed=3)
        spec = ReplicaSpec(
            factory=bench_archive_model,
            factory_kwargs={"path": str(path), "on_fault": "zero"},
        )

        async def go():
            async with ReplicaFleet(spec, fast_config(replicas=1)) as fleet:
                return await fleet.submit(demo_inputs(1, BENCH_INPUT_SHAPE)[0])

        reply = run(go())
        assert isinstance(reply, Ok)
        assert reply.degraded and "dense_1" in reply.degraded
        assert reply.degraded["dense_1"]["action"].startswith("zero-fill")

    def test_raise_policy_on_damaged_archive_fails_typed(self, tmp_path):
        from repro.resilience.chaos import corrupt_archive

        path = save_bench_archive(tmp_path / "fleet.npz")
        corrupt_archive(path, seed=3)
        spec = ReplicaSpec(
            factory=bench_archive_model,
            factory_kwargs={"path": str(path), "on_fault": "raise"},
        )

        async def go():
            async with ReplicaFleet(
                spec, fast_config(replicas=1, max_attempts=2)
            ) as fleet:
                return await fleet.submit(demo_inputs(1, BENCH_INPUT_SHAPE)[0])

        reply = run(go())
        # the decode raises in the worker: typed Failed, not a hang
        assert reply.status == "failed"
