"""DecodedWeightCache: LRU byte-budget semantics and thread safety."""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.obs as obs
from repro.serve.cache import DecodedWeightCache


def arr(n: int, fill: float) -> np.ndarray:
    return np.full(n, fill, dtype=np.float32)


class TestBasics:
    def test_miss_decodes_then_hit_serves_cached(self):
        cache = DecodedWeightCache()
        calls = []

        def decode():
            calls.append(1)
            return arr(10, 3.0)

        p1 = cache.provider("k", decode)
        p2 = cache.provider("k", decode)
        assert len(calls) == 1
        assert np.array_equal(p1.materialize(), arr(10, 3.0))
        assert np.array_equal(p2.materialize(), arr(10, 3.0))
        assert cache.hits == 1 and cache.misses == 1

    def test_provider_is_zero_copy_view(self):
        cache = DecodedWeightCache()
        cache.provider("k", lambda: arr(8, 1.0))
        p = cache.provider("k", lambda: arr(8, 9.0))  # hit: decode unused
        view = p.materialize()
        assert np.array_equal(view, arr(8, 1.0))

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="max_bytes"):
            DecodedWeightCache(max_bytes=0)

    def test_contains_and_len(self):
        cache = DecodedWeightCache()
        assert "k" not in cache and len(cache) == 0
        cache.provider("k", lambda: arr(4, 0.0))
        assert "k" in cache and len(cache) == 1
        cache.clear()
        assert len(cache) == 0 and cache.bytes == 0


class TestEviction:
    def test_lru_evicts_oldest_first(self):
        # 3 x 40B entries under a 100B budget: inserting the third
        # evicts the least recently used
        cache = DecodedWeightCache(max_bytes=100)
        cache.provider("a", lambda: arr(10, 1.0))
        cache.provider("b", lambda: arr(10, 2.0))
        cache.provider("a", lambda: arr(10, 1.0))  # touch a: b becomes LRU
        cache.provider("c", lambda: arr(10, 3.0))
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1
        assert cache.bytes == 80

    def test_over_budget_singleton_is_admitted(self):
        cache = DecodedWeightCache(max_bytes=16)
        p = cache.provider("big", lambda: arr(100, 5.0))
        assert "big" in cache  # never evicts itself on admission
        assert np.array_equal(p.materialize(), arr(100, 5.0))
        # the next entry evicts the oversized one
        cache.provider("small", lambda: arr(2, 1.0))
        assert "big" not in cache and "small" in cache

    def test_evicted_entry_redecodes_on_next_request(self):
        cache = DecodedWeightCache(max_bytes=50)
        calls = []

        def decode_a():
            calls.append(1)
            return arr(10, 1.0)

        cache.provider("a", decode_a)
        cache.provider("b", lambda: arr(10, 2.0))  # evicts a
        assert "a" not in cache
        p = cache.provider("a", decode_a)
        assert len(calls) == 2
        assert np.array_equal(p.materialize(), arr(10, 1.0))

    def test_eviction_keeps_serving_in_flight_views(self):
        cache = DecodedWeightCache(max_bytes=50)
        p_a = cache.provider("a", lambda: arr(10, 1.0))
        cache.provider("b", lambda: arr(10, 2.0))  # evicts a
        # the evicted array stays alive through the provider's reference
        assert np.array_equal(p_a.materialize(), arr(10, 1.0))


class TestConcurrency:
    def test_racing_misses_converge_to_one_entry(self):
        cache = DecodedWeightCache()
        n = 8
        barrier = threading.Barrier(n)
        decodes = []
        lock = threading.Lock()
        results = [None] * n

        def decode():
            with lock:
                decodes.append(1)
            return arr(16, 7.0)

        def worker(i):
            barrier.wait()
            results[i] = cache.provider("k", decode).materialize()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # every thread read the correct values, whatever the race outcome
        for r in results:
            assert np.array_equal(r, arr(16, 7.0))
        assert len(cache) == 1
        assert cache.bytes == 64  # one entry's bytes, however many decodes ran
        assert 1 <= len(decodes) <= n


    def test_concurrent_eviction_pressure_stays_consistent(self):
        """Many threads hammering distinct keys through a budget that
        holds only a couple of entries: every read returns the right
        values, the counters balance (hits + misses == provider calls),
        and the byte gauge equals the surviving entries' true footprint."""
        cache = DecodedWeightCache(max_bytes=200)  # ~3 x 64-byte entries
        n_threads, n_keys, rounds = 8, 12, 25
        barrier = threading.Barrier(n_threads)
        calls = [0] * n_threads
        bad = []

        def worker(t):
            rng = np.random.default_rng(t)
            barrier.wait()
            for _ in range(rounds):
                k = int(rng.integers(n_keys))
                got = cache.provider(
                    f"k{k}", lambda k=k: arr(16, float(k))
                ).materialize()
                calls[t] += 1
                if not np.array_equal(got, arr(16, float(k))):
                    bad.append((t, k))

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert bad == [], f"wrong values under eviction pressure: {bad}"
        assert cache.hits + cache.misses == sum(calls)
        # misses >= distinct keys (cold start); every insert either
        # survived or was evicted, and a benign double-decode race may
        # count extra misses that never inserted
        assert cache.misses >= n_keys
        assert cache.evictions + len(cache) <= cache.misses
        assert cache.bytes <= 200
        # the gauge is the truth: recompute from surviving entries
        assert cache.bytes == sum(
            v.nbytes for v in (cache._entries[k] for k in list(cache._entries))
        )


class TestObs:
    def test_counts_flow_to_ambient_scope(self):
        cache = DecodedWeightCache(max_bytes=50)
        with obs.use(obs.Obs()) as o:
            cache.provider("a", lambda: arr(10, 1.0))
            cache.provider("a", lambda: arr(10, 1.0))
            cache.provider("b", lambda: arr(10, 2.0))  # evicts a
        assert o.metrics.value("serve.cache.misses") == 2
        assert o.metrics.value("serve.cache.hits") == 1
        assert o.metrics.value("serve.cache.evictions") == 1
        assert o.metrics.value("serve.cache.bytes") == 40
