"""Streamed decode == materialized decode, bit for bit.

The regression contract of the fused decode+MAC path
(:mod:`repro.core.provider` / :class:`repro.core.decompressor.
WeightStream`): streaming only changes *when* decoded weights exist,
never what they are.  Property-tested here across accumulation dtypes,
arbitrary read-chunk patterns, and every registered codec.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codecs import get_codec
from repro.core.compression import compress
from repro.core.decompressor import WeightStream, decompress_accumulate
from repro.core.provider import (
    ArrayProvider,
    BlobProvider,
    StreamProvider,
    provider_for,
)

from .test_fuzz_codecs import ALL_CODECS

ACC_DTYPES = [np.float32, np.float64]


def _weights(seed: int, size: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(size).astype(np.float32)


class TestWeightStreamBitIdentical:
    @pytest.mark.parametrize("acc_dtype", ACC_DTYPES)
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=31),
        size=st.integers(min_value=1, max_value=4000),
        chunk_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_arbitrary_chunk_pattern(self, acc_dtype, seed, size, chunk_seed):
        stream = compress(_weights(seed, size), delta=0.05)
        ref = decompress_accumulate(stream, acc_dtype=acc_dtype)

        ws = WeightStream(stream, acc_dtype=acc_dtype)
        rng = np.random.default_rng(chunk_seed)
        parts = []
        while ws.remaining:
            parts.append(ws.read(int(rng.integers(1, size + 1))))
        out = np.concatenate(parts)
        assert out.dtype == ref.dtype
        np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("acc_dtype", ACC_DTYPES)
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=31),
        tile=st.integers(min_value=1, max_value=997),
    )
    def test_tile_iteration(self, acc_dtype, seed, tile):
        stream = compress(_weights(seed, 3000), delta=0.05)
        ref = decompress_accumulate(stream, acc_dtype=acc_dtype)
        ws = WeightStream(stream, acc_dtype=acc_dtype)
        out = np.concatenate(list(ws.tiles(tile)))
        np.testing.assert_array_equal(out, ref)

    def test_reset_restarts_the_pass(self):
        stream = compress(_weights(3, 2000), delta=0.05)
        ws = WeightStream(stream)
        first = ws.read(777).copy()
        ws.reset()
        np.testing.assert_array_equal(ws.read(777), first)


class TestProvidersBitIdentical:
    @pytest.mark.parametrize("name", ALL_CODECS)
    @pytest.mark.parametrize("acc_dtype", ACC_DTYPES)
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=15),
        chunk=st.integers(min_value=1, max_value=1500),
    )
    def test_every_codec_streamed_equals_materialized(
        self, name, acc_dtype, seed, chunk
    ):
        blob = get_codec(name, delta_pct=10.0).encode(_weights(seed, 1200))
        provider = provider_for(blob)
        assert isinstance(provider, BlobProvider)
        ref = provider.materialize(dtype=acc_dtype)

        cur = provider.cursor(dtype=acc_dtype)
        parts = []
        while cur.remaining:
            parts.append(cur.read(chunk))
        out = np.concatenate(parts)
        assert out.dtype == ref.dtype
        np.testing.assert_array_equal(out, ref)

    def test_linefit_blob_streams_without_materializing(self):
        blob = get_codec("linefit", delta_pct=10.0).encode(_weights(0, 1000))
        provider = provider_for(blob)
        assert provider.streaming
        # streamed values equal the codec's own whole-payload decode
        codec = get_codec("linefit", delta_pct=10.0)
        np.testing.assert_array_equal(
            provider.materialize(dtype=np.float32),
            np.asarray(codec.decode(blob), dtype=np.float32),
        )

    def test_non_linefit_blobs_fall_back_to_materialization(self):
        blob = get_codec("rle").encode(_weights(1, 500))
        provider = provider_for(blob)
        assert not provider.streaming

    @pytest.mark.parametrize("acc_dtype", ACC_DTYPES)
    def test_stream_provider_equals_decompress_accumulate(self, acc_dtype):
        stream = compress(_weights(5, 4096), delta=0.05)
        provider = provider_for(stream)
        assert isinstance(provider, StreamProvider)
        assert provider.streaming
        np.testing.assert_array_equal(
            provider.materialize(dtype=acc_dtype),
            decompress_accumulate(stream, acc_dtype=acc_dtype),
        )

    def test_array_provider_round_trip(self):
        w = _weights(7, 321)
        provider = provider_for(w)
        assert isinstance(provider, ArrayProvider)
        np.testing.assert_array_equal(provider.materialize(), w)
        cur = provider.cursor()
        np.testing.assert_array_equal(
            np.concatenate([cur.read(100), cur.read(1000)]), w
        )

    def test_provider_for_rejects_garbage(self):
        with pytest.raises(TypeError):
            provider_for(object())

    def test_cursors_are_independent_passes(self):
        stream = compress(_weights(9, 2048), delta=0.05)
        provider = provider_for(stream)
        a, b = provider.cursor(), provider.cursor()
        first = a.read(512)
        np.testing.assert_array_equal(b.read(512), first)


class TestBlobProviderConcurrency:
    """The materialize-once fallback must hold under concurrent readers.

    The async service shares one provider across in-flight requests, so
    two interleaved ``cursor()`` consumers must never double-decode the
    blob or observe a partially-populated cache.
    """

    def test_concurrent_cursors_decode_exactly_once(self, monkeypatch):
        import threading

        from repro.core.codecs.lossless import HuffmanCodec

        w = _weights(21, 8192)
        blob = get_codec("huffman").encode(w)
        provider = BlobProvider(blob)
        assert not provider.streaming  # huffman takes the materialize path

        decodes = []
        barrier = threading.Barrier(8)
        real_decode = HuffmanCodec.decode

        def counted_decode(self, b):
            decodes.append(threading.get_ident())
            # widen the race window: a second reader arriving mid-decode
            # must wait on the lock, not start its own decode
            import time

            time.sleep(0.02)
            return real_decode(self, b)

        monkeypatch.setattr(HuffmanCodec, "decode", counted_decode)

        results: list[np.ndarray] = [None] * 8
        errors: list[BaseException] = []

        def reader(i: int) -> None:
            try:
                barrier.wait(timeout=5)
                cur = provider.cursor()
                chunks = [cur.read(1000) for _ in range(9)]
                results[i] = np.concatenate(chunks)
            except BaseException as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        assert len(decodes) == 1, f"blob decoded {len(decodes)} times"
        for out in results:
            np.testing.assert_array_equal(out, w)

    def test_concurrent_cursors_are_independent(self):
        import threading

        blob = get_codec("rle").encode(_weights(23, 4096))
        provider = BlobProvider(blob)
        expected = provider.materialize().copy()

        mismatches = []

        def reader() -> None:
            cur = provider.cursor()
            got = np.concatenate([cur.read(123) for _ in range((4096 // 123) + 1)])
            if not np.array_equal(got, expected):
                mismatches.append(got)

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not mismatches
