"""Per-segment least squares: optimality and vectorization checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.linefit import evaluate_lines, fit_segments
from repro.core.segmentation import segment_boundaries


def _polyfit_reference(w, boundaries):
    """Slow reference: np.polyfit per segment."""
    ms, qs = [], []
    for i in range(len(boundaries) - 1):
        seg = w[boundaries[i] : boundaries[i + 1]]
        if len(seg) == 1:
            ms.append(0.0)
            qs.append(float(seg[0]))
        else:
            m, q = np.polyfit(np.arange(len(seg)), seg, 1)
            ms.append(float(m))
            qs.append(float(q))
    return np.array(ms), np.array(qs)


class TestFitSegments:
    def test_matches_polyfit(self, rng):
        w = rng.normal(size=400)
        b = segment_boundaries(w, 0.1)
        m, q = fit_segments(w, b)
        m_ref, q_ref = _polyfit_reference(w, b)
        np.testing.assert_allclose(m, m_ref, atol=1e-9)
        np.testing.assert_allclose(q, q_ref, atol=1e-9)

    def test_exact_line_recovered(self):
        w = 0.5 * np.arange(20) - 3.0
        m, q = fit_segments(w, np.array([0, 20]))
        assert m[0] == pytest.approx(0.5)
        assert q[0] == pytest.approx(-3.0)

    def test_length_one_segments(self):
        w = np.array([5.0, -2.0, 7.0])
        m, q = fit_segments(w, np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(m, 0.0)
        np.testing.assert_allclose(q, w)

    def test_empty(self):
        m, q = fit_segments(np.array([]), np.array([0]))
        assert m.size == 0 and q.size == 0

    @given(
        w=hnp.arrays(
            np.float64,
            st.integers(2, 80),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        delta=st.floats(0, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_least_squares_optimality(self, w, delta):
        """Perturbing (m, q) must not reduce the segment's SSE."""
        b = segment_boundaries(w, delta)
        m, q = fit_segments(w, b)
        for i in range(len(b) - 1):
            seg = w[b[i] : b[i + 1]]
            x = np.arange(len(seg))
            sse = ((m[i] * x + q[i] - seg) ** 2).sum()
            for dm, dq in ((1e-3, 0), (-1e-3, 0), (0, 1e-3), (0, -1e-3)):
                sse_p = (((m[i] + dm) * x + (q[i] + dq) - seg) ** 2).sum()
                assert sse <= sse_p + 1e-9


class TestEvaluateLines:
    def test_roundtrip_with_fit(self, rng):
        w = rng.normal(size=100)
        b = segment_boundaries(w, 50.0)  # one big segment? no: maybe; use any
        m, q = fit_segments(w, b)
        approx = evaluate_lines(m, q, np.diff(b))
        assert approx.shape == w.shape

    def test_explicit_lines(self):
        out = evaluate_lines(
            np.array([1.0, -2.0]), np.array([0.0, 10.0]), np.array([3, 2])
        )
        np.testing.assert_allclose(out, [0.0, 1.0, 2.0, 10.0, 8.0])

    def test_dtype(self):
        out = evaluate_lines(np.array([1.0]), np.array([0.0]), np.array([4]), dtype=np.float32)
        assert out.dtype == np.float32

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            evaluate_lines(np.array([1.0]), np.array([0.0, 1.0]), np.array([2]))

    def test_empty(self):
        assert evaluate_lines(np.array([]), np.array([]), np.array([], dtype=int)).size == 0
