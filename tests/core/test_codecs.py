"""The codec registry: round-trip properties, lookup, composition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import decode as wire_decode
from repro.core.codec import encode as wire_encode
from repro.core.codecs import (
    Codec,
    CodecError,
    ComposedCodec,
    CompressedBlob,
    LineFitCodec,
    codec_names,
    get_codec,
    register_codec,
)
from repro.core.compression import StorageFormat, compress_percent
from repro.core.quantization import quantize_tensor

LOSSLESS = ["rle", "huffman", "lz"]
ALL_CODECS = LOSSLESS + ["linefit", "quantize-int8"]


def _streams(rng):
    """The stress cases every codec must survive."""
    return {
        "random": rng.standard_normal(4096).astype(np.float32),
        "constant": np.full(512, 0.375, dtype=np.float32),
        "empty": np.zeros(0, dtype=np.float32),
        "single": np.asarray([-2.5], dtype=np.float32),
    }


class TestRegistry:
    def test_all_expected_names_registered(self):
        assert set(ALL_CODECS) <= set(codec_names())

    def test_unknown_name_lists_known_codecs(self):
        with pytest.raises(CodecError, match="unknown codec") as exc:
            get_codec("zstd")
        for name in codec_names():
            assert name in str(exc.value)

    def test_unknown_name_is_a_value_error(self):
        with pytest.raises(ValueError):
            get_codec("zstd")

    def test_instance_passthrough(self):
        codec = LineFitCodec(delta_pct=5.0)
        assert get_codec(codec) is codec

    def test_instance_passthrough_rejects_params(self):
        with pytest.raises(CodecError, match="re-parameterize"):
            get_codec(LineFitCodec(), delta_pct=5.0)

    def test_bad_constructor_params_wrapped(self):
        with pytest.raises(CodecError, match="rle"):
            get_codec("rle", bogus_knob=3)

    def test_every_codec_accepts_delta_pct(self):
        for name in ALL_CODECS:
            codec = get_codec(name, delta_pct=10.0)
            assert isinstance(codec, Codec)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_codec("linefit")
            class Clash(Codec):  # pragma: no cover - never instantiated
                pass

    def test_pipe_in_name_rejected(self):
        with pytest.raises(ValueError, match="must not contain"):

            @register_codec("a|b")
            class Piped(Codec):  # pragma: no cover - never instantiated
                pass


class TestLosslessRoundTrip:
    @pytest.mark.parametrize("name", LOSSLESS)
    @pytest.mark.parametrize("case", ["random", "constant", "empty", "single"])
    def test_exact_roundtrip(self, name, case):
        rng = np.random.default_rng(11)
        w = _streams(rng)[case]
        codec = get_codec(name, delta_pct=15.0)  # delta must be ignored
        assert codec.lossless
        blob = codec.encode(w)
        out = codec.decode(blob)
        assert out.dtype == w.dtype
        np.testing.assert_array_equal(out, w)
        assert blob.num_weights == w.size
        assert blob.original_bytes == w.nbytes
        assert codec.reconstruction_mse(blob, w) == 0.0

    @pytest.mark.parametrize("name", LOSSLESS)
    def test_integer_stream_roundtrip(self, name):
        rng = np.random.default_rng(5)
        w = rng.integers(-128, 128, 2048).astype(np.int8)
        codec = get_codec(name)
        np.testing.assert_array_equal(codec.decode(codec.encode(w)), w)

    @pytest.mark.parametrize("name", LOSSLESS)
    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(
            st.floats(width=32, allow_nan=False), min_size=0, max_size=300
        ),
        seed=st.integers(0, 2**16),
    )
    def test_property_exact_roundtrip(self, name, values, seed):
        # arbitrary float32 payloads, plus a low-entropy repetition of
        # them (the case RLE/LZ were built for) — both must be exact
        w = np.asarray(values, dtype=np.float32)
        rep = np.repeat(w, 1 + seed % 4)
        codec = get_codec(name)
        for stream in (w, rep):
            np.testing.assert_array_equal(
                codec.decode(codec.encode(stream)), stream
            )


class TestLineFitRoundTrip:
    @pytest.mark.parametrize("case", ["random", "constant", "empty", "single"])
    def test_stress_cases_roundtrip_shape(self, case):
        rng = np.random.default_rng(3)
        w = _streams(rng)[case]
        codec = get_codec("linefit", delta_pct=10.0)
        assert not codec.lossless
        out = codec.decode(codec.encode(w))
        assert out.shape == w.shape

    @pytest.mark.parametrize("delta", [0.05, 0.2, 1.0])
    def test_noisy_linear_within_delta(self, delta):
        # on segments that genuinely fit a line to within delta/4, the
        # reconstruction stays within delta (coefficient truncation adds
        # a small quantization term, hence the 2x headroom)
        rng = np.random.default_rng(7)
        base = np.linspace(-1.0, 1.0, 2000, dtype=np.float32)
        w = (base + rng.uniform(-delta / 4, delta / 4, base.size)).astype(np.float32)
        codec = LineFitCodec(delta=float(delta))
        out = codec.decode(codec.encode(w))
        assert np.max(np.abs(out - w)) <= 2 * delta

    def test_constant_stream_reconstructs_exactly_one_segment(self):
        w = np.full(1000, 2.25, dtype=np.float32)
        blob = LineFitCodec(delta_pct=0.0).encode(w)
        assert blob.num_segments == 1
        np.testing.assert_allclose(
            LineFitCodec().decode(blob), w, atol=1e-2
        )

    def test_payload_byte_identical_to_reference_impl(self):
        rng = np.random.default_rng(19)
        w = rng.standard_normal(3000).astype(np.float32)
        for pct in (0.0, 5.0, 15.0):
            blob = get_codec("linefit", delta_pct=pct).encode(w)
            ref = compress_percent(w, pct)
            assert blob.payload == wire_encode(ref)
            assert blob.compression_ratio == pytest.approx(ref.compression_ratio)
            assert blob.num_segments == ref.num_segments

    def test_int8_format_matches_reference_accounting(self):
        rng = np.random.default_rng(23)
        w = quantize_tensor(rng.standard_normal(2000)).values.astype(np.float32)
        blob = get_codec("linefit", delta_pct=5.0, fmt="int8").encode(w)
        ref = compress_percent(w, 5.0, fmt=StorageFormat.int8())
        assert blob.compression_ratio == pytest.approx(ref.compression_ratio)

    def test_wire_payload_decodable_by_core_codec(self):
        w = np.linspace(0, 1, 500, dtype=np.float32)
        blob = LineFitCodec(delta_pct=5.0).encode(w)
        stream = wire_decode(blob.payload)
        assert stream.num_weights == w.size


class TestQuantizeCodec:
    def test_standalone_roundtrip_within_scale(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal(1024).astype(np.float32)
        codec = get_codec("quantize-int8")
        blob = codec.encode(w)
        qt = quantize_tensor(w)
        assert np.max(np.abs(codec.decode(blob) - w)) <= qt.scale
        assert blob.compression_ratio == pytest.approx(
            w.nbytes / qt.footprint_bytes
        )

    def test_empty_stream(self):
        codec = get_codec("quantize-int8")
        out = codec.decode(codec.encode(np.zeros(0, dtype=np.float32)))
        assert out.size == 0


class TestComposition:
    def test_chain_matches_manual_staging(self):
        rng = np.random.default_rng(13)
        w = rng.standard_normal(2048).astype(np.float32)
        chain = get_codec("quantize-int8|linefit", delta_pct=5.0, fmt="int8")
        assert isinstance(chain, ComposedCodec)
        blob = chain.encode(w)

        qt = quantize_tensor(w)
        manual = compress_percent(
            qt.values.astype(np.float32).ravel(), 5.0, fmt=StorageFormat.int8()
        )
        assert blob.payload == wire_encode(manual)
        assert blob.compression_ratio == pytest.approx(manual.compression_ratio)

        # decode de-quantizes through the recorded side-info
        out = chain.decode(blob)
        assert out.shape == w.shape
        assert np.max(np.abs(out - w)) <= qt.scale * 260  # delta on int8 range

    def test_chain_of_lossless_is_lossless(self):
        chain = get_codec("rle|huffman")
        # rle cannot act as a transform stage -> encode must fail loudly
        with pytest.raises(CodecError, match="non-terminal"):
            chain.encode(np.zeros(16, dtype=np.float32))

    def test_composed_name_and_params_follow_terminal(self):
        chain = get_codec("quantize-int8|linefit", delta_pct=10.0)
        assert chain.name == "quantize-int8|linefit"
        assert chain.params()["delta_pct"] == 10.0

    def test_spec_rebuild_roundtrip(self):
        rng = np.random.default_rng(29)
        w = rng.standard_normal(512).astype(np.float32)
        chain = get_codec("quantize-int8|linefit", delta_pct=5.0)
        blob = chain.encode(w)
        rebuilt = CompressedBlob.rebuild(blob.spec(), blob.payload)
        decoder = get_codec(rebuilt.codec, **rebuilt.params)
        np.testing.assert_array_equal(decoder.decode(rebuilt), chain.decode(blob))
