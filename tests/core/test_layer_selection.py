"""Layer selection: Tab. I reproduction and the multi-layer extension."""

from __future__ import annotations

import pytest

from repro.core.layer_selection import select_layer, select_layer_model, select_multi
from repro.nn import zoo
from repro.nn.layers import Conv2D, Dense, Flatten, ReLU
from repro.nn.sequential import Sequential


class TestPaperSelection:
    @pytest.mark.parametrize("module", zoo.ALL_MODELS, ids=lambda m: m.NAME)
    def test_reproduces_table1(self, module):
        spec = module.full()
        assert select_layer(spec).name == module.SELECTED_LAYER

    def test_deepest_wins_near_tie(self):
        """ResNet-50: the stage-5 3x3 convs are slightly larger than
        fc1000 but shallower; the tolerance window lets depth win."""
        spec = zoo.resnet50.full()
        conv = spec.layer("conv5_block1_conv2")
        fc = spec.layer("fc1000")
        assert conv.weight_params > fc.weight_params  # the conflict is real
        assert select_layer(spec).name == "fc1000"

    def test_zero_tolerance_picks_absolute_max(self):
        spec = zoo.resnet50.full()
        sel = select_layer(spec, tolerance=0.0)
        assert sel.weight_params == max(
            l.weight_params for l in spec.parametric_layers()
        )


class TestModelSelection:
    def test_proxy_selection_matches_policy(self, rng):
        m = Sequential(
            [
                ("conv_1", Conv2D(1, 4, 3, rng=rng)),
                ("relu", ReLU()),
                ("flat", Flatten()),
                ("dense_1", Dense(4 * 6 * 6, 32, rng=rng)),
                ("dense_2", Dense(32, 10, rng=rng)),
            ]
        )
        assert select_layer_model(m) == "dense_1"

    def test_no_parametric_layers(self):
        m = Sequential([("relu", ReLU())])
        with pytest.raises(ValueError):
            select_layer_model(m)


class TestMultiSelection:
    def test_returns_in_network_order(self):
        spec = zoo.vgg16.full()
        chosen = select_multi(spec, max_layers=3)
        names = [l.name for l in chosen]
        order = [l.name for l in spec.layers]
        assert names == sorted(names, key=order.index)

    def test_respects_depth_constraint(self):
        spec = zoo.vgg16.full()
        chosen = select_multi(spec, max_layers=2, min_depth_fraction=0.5)
        max_depth = max(l.depth for l in spec.parametric_layers())
        assert all(l.depth >= 0.5 * max_depth for l in chosen)

    def test_single_layer_matches_largest_deep(self):
        spec = zoo.vgg16.full()
        chosen = select_multi(spec, max_layers=1)
        assert chosen[0].name == "dense_1"

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            select_multi(zoo.lenet5.full(), max_layers=0)
