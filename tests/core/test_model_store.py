"""Whole-model compressed archives: round trips, footprint, errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model_store import compress_model, load_archive
from repro.datasets import train_test
from repro.nn import TrainConfig, evaluate, train
from repro.nn.zoo import lenet5


@pytest.fixture(scope="module")
def trained():
    split = train_test("digits", 1500, 300, seed=21)
    model = lenet5.proxy(np.random.default_rng(21))
    train(model, split.x_train, split.y_train, TrainConfig(epochs=5, lr=0.05))
    return model, split


class TestCompressModel:
    def test_partition_of_layers(self, trained):
        model, _ = trained
        archive = compress_model(model, {"dense_1": 10.0})
        assert set(archive.compressed) == {"dense_1"}
        assert set(archive.raw) == {"conv2d_1", "conv2d_2", "dense_2", "dense_3"}

    def test_footprint_smaller_than_raw(self, trained):
        model, _ = trained
        plain = compress_model(model, {})
        squeezed = compress_model(model, {"dense_1": 15.0})
        assert squeezed.weights_footprint() < plain.weights_footprint()

    def test_unknown_layer_rejected(self, trained):
        model, _ = trained
        with pytest.raises(ValueError, match="unknown layers"):
            compress_model(model, {"nope": 5.0})

    def test_state_rides_along(self, trained):
        model, _ = trained
        archive = compress_model(model, {"dense_1": 5.0})
        # biases are state (param1 of dense layers)
        assert any(k.endswith("param1") for k in archive.state)


class TestApplyAndRoundTrip:
    def test_apply_reproduces_compressed_inference(self, trained):
        model, split = trained
        archive = compress_model(model, {"dense_1": 10.0})
        fresh = lenet5.proxy(np.random.default_rng(99))
        archive.apply(fresh)
        # the fresh model behaves like the compressed original
        from repro.core.pipeline import apply_compression

        stream, original = apply_compression(model, "dense_1", 10.0)
        np.testing.assert_allclose(
            fresh.predict(split.x_test[:64]),
            model.predict(split.x_test[:64]),
            rtol=1e-5,
        )
        model.set_weights("dense_1", original)

    def test_file_roundtrip(self, trained, tmp_path):
        model, split = trained
        archive = compress_model(model, {"dense_1": 10.0, "dense_2": 15.0})
        path = tmp_path / "model.npz"
        archive.to_file(path)
        loaded = load_archive(path)
        assert loaded.assignments == archive.assignments
        assert set(loaded.compressed) == set(archive.compressed)

        a, b = lenet5.proxy(np.random.default_rng(1)), lenet5.proxy(
            np.random.default_rng(2)
        )
        archive.apply(a)
        loaded.apply(b)
        np.testing.assert_allclose(
            a.predict(split.x_test[:32]), b.predict(split.x_test[:32]), rtol=1e-6
        )

    def test_applied_model_accuracy_reasonable(self, trained):
        model, split = trained
        base = evaluate(model, split.x_test, split.y_test).top1
        archive = compress_model(model, {"dense_1": 10.0})
        fresh = lenet5.proxy(np.random.default_rng(3))
        archive.apply(fresh)
        acc = evaluate(fresh, split.x_test, split.y_test).top1
        assert acc > base - 0.10

    def test_unknown_state_key_rejected(self, trained):
        model, _ = trained
        archive = compress_model(model, {})
        archive.state["bogus.key"] = np.zeros(3, dtype=np.float32)
        fresh = lenet5.proxy(np.random.default_rng(4))
        with pytest.raises(ValueError, match="unknown to model"):
            archive.apply(fresh)
